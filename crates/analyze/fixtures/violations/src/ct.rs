//! Seeded L3 violations (constant-time discipline). Parsed, never compiled.

pub fn verify_tag(tag: &[u8], expected: &[u8]) -> bool {
    if tag.len() != expected.len() {
        return false;
    }
    tag == expected
}

pub fn ct_select(table: &[u8], idx: usize) -> u8 {
    if idx >= table.len() {
        return 0;
    }
    table[idx]
}

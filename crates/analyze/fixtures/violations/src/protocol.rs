//! Seeded L1 violations (panic-freedom). Parsed, never compiled.

pub fn drive(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("second element");
    if *first == 0 {
        panic!("zero first element");
    }
    first + second + xs[2]
}

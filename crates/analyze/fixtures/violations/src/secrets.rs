//! Seeded L2 violations (secret hygiene). Parsed, never compiled.

pub struct Keys {
    pub group_key: Vec<u8>,
}

#[derive(Debug)]
pub struct Material {
    pub secret: u64,
}

pub fn leak(secret: u64) {
    println!("secret is {secret}");
}

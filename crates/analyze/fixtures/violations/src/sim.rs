//! Seeded L4 violations (sim determinism). Parsed, never compiled.

use std::collections::HashMap;

pub fn order_events(ids: &[u64]) -> HashMap<u64, u64> {
    let started = std::time::Instant::now();
    let _ = started;
    let jitter = thread_rng();
    let _ = jitter;
    ids.iter().map(|&i| (i, i)).collect()
}

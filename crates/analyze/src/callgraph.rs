//! Per-function call graph plus a lightweight dataflow over function
//! signatures.
//!
//! The graph is name-based (no type resolution): each function body is
//! scanned for `ident(` free-function calls and `.ident(` method
//! calls, each with the token span of its argument list. That is
//! enough for the two analyses built on top:
//!
//! * **sink reachability** — which functions' parameters eventually
//!   flow into a formatting / serialization sink (rule `L2-FLOW`), and
//! * **call-site argument mapping** — which identifiers appear in
//!   which argument position, so taint can be propagated one signature
//!   at a time rather than through full expressions.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::parse::{FnItem, ParsedFile};

/// A call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee simple name (last path segment / method name).
    pub callee: String,
    /// Whether it was a method call (`recv.name(..)`).
    pub is_method: bool,
    /// Token span of the argument list (inside the parens).
    pub args: std::ops::Range<usize>,
    /// Line of the callee token.
    pub line: u32,
}

/// The call graph over every parsed file.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `(file index, fn index)` → call sites.
    pub calls: BTreeMap<(usize, usize), Vec<CallSite>>,
    /// fn simple name → list of `(file index, fn index)` definitions.
    pub defs: BTreeMap<String, Vec<(usize, usize)>>,
}

/// Formatting / output macros considered leak sinks.
pub const SINK_MACROS: &[&str] = &[
    "format", "println", "print", "eprintln", "eprint", "write", "writeln", "panic", "log",
];

/// Method / function names considered serialization or telemetry
/// sinks.
pub const SINK_CALLS: &[&str] = &["serialize", "to_json", "record", "emit"];

impl CallGraph {
    /// Builds the graph from parsed files.
    pub fn build(files: &[(String, ParsedFile)]) -> Self {
        let mut g = CallGraph::default();
        for (fi, (_, pf)) in files.iter().enumerate() {
            for (fj, f) in pf.fns.iter().enumerate() {
                g.defs.entry(f.name.clone()).or_default().push((fi, fj));
                g.calls.insert((fi, fj), scan_calls(&pf.tokens, f));
            }
        }
        g
    }

    /// Computes, for every function, the set of parameter names that
    /// can reach a sink: directly (the parameter appears inside a sink
    /// macro / call argument span) or transitively (it is passed in an
    /// argument position whose callee parameter reaches a sink).
    ///
    /// This is the "lightweight dataflow over function signatures":
    /// names, positions and a fixpoint — no expression semantics.
    pub fn sink_reaching_params(
        &self,
        files: &[(String, ParsedFile)],
    ) -> BTreeMap<(usize, usize), BTreeSet<String>> {
        let mut reach: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();

        // Seed: parameters that appear directly inside a sink span.
        for ((fi, fj), sites) in &self.calls {
            let f = &files[*fi].1.fns[*fj];
            let tokens = &files[*fi].1.tokens;
            let mut set = BTreeSet::new();
            for site in sites {
                let is_sink = SINK_CALLS.contains(&site.callee.as_str())
                    || SINK_MACROS.contains(&site.callee.as_str());
                if !is_sink {
                    continue;
                }
                for p in &f.params {
                    if p.name != "self" && span_mentions(tokens, &site.args, &p.name) {
                        set.insert(p.name.clone());
                    }
                }
            }
            if !set.is_empty() {
                reach.insert((*fi, *fj), set);
            }
        }

        // Fixpoint: propagate through call argument positions.
        for _ in 0..8 {
            let mut changed = false;
            for ((fi, fj), sites) in &self.calls {
                let f = &files[*fi].1.fns[*fj];
                let tokens = &files[*fi].1.tokens;
                for site in sites {
                    let Some(defs) = self.defs.get(&site.callee) else {
                        continue;
                    };
                    for &(di, dj) in defs {
                        let callee = &files[di].1.fns[dj];
                        let callee_reach = reach.get(&(di, dj)).cloned().unwrap_or_default();
                        if callee_reach.is_empty() {
                            continue;
                        }
                        // Map argument positions to callee params
                        // (method receivers shift positions by one).
                        let arg_spans = split_args(tokens, &site.args);
                        let skip = usize::from(
                            site.is_method
                                && callee.params.first().is_some_and(|p| p.name == "self"),
                        );
                        for (pos, span) in arg_spans.iter().enumerate() {
                            let Some(cp) = callee.params.get(pos + skip) else {
                                continue;
                            };
                            if !callee_reach.contains(&cp.name) {
                                continue;
                            }
                            for p in &f.params {
                                if p.name == "self" {
                                    continue;
                                }
                                if span_mentions_range(tokens, span, &p.name) {
                                    let e = reach.entry((*fi, *fj)).or_default();
                                    if e.insert(p.name.clone()) {
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        reach
    }
}

/// Scans one function body for call sites.
fn scan_calls(tokens: &[Token], f: &FnItem) -> Vec<CallSite> {
    let mut out = Vec::new();
    let body = f.body.clone();
    let mut i = body.start;
    while i < body.end {
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !matches!(
                t.text.as_str(),
                "fn" | "if" | "while" | "for" | "match" | "return" | "loop"
            )
        {
            let is_method = i > 0 && tokens[i - 1].is_punct(".");
            // Find the matching close paren.
            let open = i + 1;
            let mut depth = 0usize;
            let mut j = open;
            while j < body.end {
                if tokens[j].is_punct("(") {
                    depth += 1;
                } else if tokens[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            out.push(CallSite {
                callee: t.text.clone(),
                is_method,
                args: open + 1..j,
                line: t.line,
            });
        }
        // Macro sinks: `ident !( … )` or `ident ![…]` / `ident !{…}`.
        if t.kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && tokens
                .get(i + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
        {
            let (open_s, close_s) = match tokens[i + 2].text.as_str() {
                "(" => ("(", ")"),
                "[" => ("[", "]"),
                _ => ("{", "}"),
            };
            let open = i + 2;
            let mut depth = 0usize;
            let mut j = open;
            while j < body.end {
                if tokens[j].is_punct(open_s) {
                    depth += 1;
                } else if tokens[j].is_punct(close_s) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            out.push(CallSite {
                callee: t.text.clone(),
                is_method: false,
                args: open + 1..j,
                line: t.line,
            });
        }
        i += 1;
    }
    out
}

/// Whether one token "mentions" `name`: an identifier match, or an
/// inline format capture (`"{name}"` / `"{name:?}"`) inside a string
/// literal.
pub fn token_mentions(t: &Token, name: &str) -> bool {
    if t.is_ident(name) {
        return true;
    }
    if t.kind == TokKind::Lit {
        let open = format!("{{{name}");
        for (pos, _) in t.text.match_indices(&open) {
            let rest = &t.text[pos + open.len()..];
            if rest.starts_with('}') || rest.starts_with(':') {
                return true;
            }
        }
    }
    false
}

/// Whether `name` occurs (as identifier or inline capture) inside the span.
fn span_mentions(tokens: &[Token], span: &std::ops::Range<usize>, name: &str) -> bool {
    tokens[span.start.min(tokens.len())..span.end.min(tokens.len())]
        .iter()
        .any(|t| token_mentions(t, name))
}

fn span_mentions_range(tokens: &[Token], span: &std::ops::Range<usize>, name: &str) -> bool {
    span_mentions(tokens, span, name)
}

/// Splits an argument span on top-level commas.
fn split_args(tokens: &[Token], span: &std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = span.start;
    for i in span.clone() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < span.end {
        out.push(start..span.end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn one(src: &str) -> Vec<(String, ParsedFile)> {
        vec![("test.rs".to_string(), parse(src))]
    }

    #[test]
    fn collects_calls_and_macros() {
        let files = one("fn f(x: u8) { g(x); h.m(x); println!(\"{}\", x); }");
        let g = CallGraph::build(&files);
        let sites = &g.calls[&(0, 0)];
        let names: Vec<&str> = sites.iter().map(|s| s.callee.as_str()).collect();
        assert!(names.contains(&"g"));
        assert!(names.contains(&"m"));
        assert!(names.contains(&"println"));
    }

    #[test]
    fn direct_sink_reachability() {
        let files = one("fn leak(secret_exp: &Secret<Ubig>) { println!(\"{:?}\", secret_exp); }");
        let g = CallGraph::build(&files);
        let reach = g.sink_reaching_params(&files);
        assert!(reach[&(0, 0)].contains("secret_exp"));
    }

    #[test]
    fn transitive_sink_reachability() {
        let files = one(
            "fn inner(v: &Ubig) { format!(\"{v}\"); }\nfn outer(k: &Secret<Ubig>) { inner(k.expose()); }",
        );
        let g = CallGraph::build(&files);
        let reach = g.sink_reaching_params(&files);
        // inner's param v reaches a sink; outer's k is passed into it.
        let outer_idx = files[0]
            .1
            .fns
            .iter()
            .position(|f| f.name == "outer")
            .unwrap();
        assert!(reach[&(0, outer_idx)].contains("k"));
    }

    #[test]
    fn non_sink_is_clean() {
        let files = one("fn fine(secret: &Secret<Ubig>) -> u64 { secret.expose().bits() }");
        let g = CallGraph::build(&files);
        let reach = g.sink_reaching_params(&files);
        assert!(!reach.contains_key(&(0, 0)));
    }
}

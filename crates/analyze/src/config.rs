//! Analyzer configuration: rule scopes (which files each rule family
//! inspects), the allowlist, and the embedded workspace defaults.
//!
//! # Scope file format
//!
//! A config file is line-based; `#` starts a comment. Each scope line:
//!
//! ```text
//! scope <RULE-PREFIX> <glob> [<glob>…]
//! ```
//!
//! A rule applies to a file when any glob for a prefix of its id
//! matches the file's root-relative path (`/`-separated). Globs
//! support `*` (within one path segment) and `**` (any number of
//! segments).
//!
//! # Allowlist format (`analyze.allow`)
//!
//! ```text
//! <RULE-ID> <glob> # reason (required)
//! ```
//!
//! Allowlist entries suppress findings of exactly that rule id in
//! matching files. Every entry must carry a reason after `#` — an
//! entry without one is itself reported as a configuration error.

use std::path::Path;

/// One scope entry: rule-id prefix plus path glob.
#[derive(Clone, Debug)]
pub struct Scope {
    /// Rule id prefix (`"L1"` covers `L1-PANIC` and `L1-INDEX`).
    pub rule_prefix: String,
    /// Root-relative glob.
    pub glob: String,
}

/// One allowlist entry.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Exact rule id (or prefix) to suppress.
    pub rule: String,
    /// Root-relative glob of files it applies to.
    pub glob: String,
    /// Mandatory justification.
    pub reason: String,
}

/// Full analyzer configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Rule scopes.
    pub scopes: Vec<Scope>,
    /// Allowlist entries.
    pub allows: Vec<Allow>,
}

impl Config {
    /// The embedded default scopes for this workspace (see DESIGN.md
    /// §11 for the rationale behind each scope).
    pub fn workspace_default() -> Self {
        let mut cfg = Config::default();
        let scopes: &[(&str, &[&str])] = &[
            // L1 panic-freedom: protocol drivers, the secure session
            // layer and the GCS engine. Harness/experiment code and
            // shared data structures (tree.rs documents its arena
            // invariants with `# Panics`) are out of scope.
            (
                "L1",
                &[
                    "crates/core/src/protocols/**",
                    "crates/core/src/session.rs",
                    "crates/core/src/member.rs",
                    "crates/core/src/envelope.rs",
                    "crates/gcs/src/engine.rs",
                ],
            ),
            // The FEC codec sits on the engine's delivery path: decode
            // runs on every parity-repaired gap, so it must degrade to
            // `None`, never panic. Indexing stays out — the GF(256)
            // tables are fixed-size and the shard loops are
            // length-checked (same rationale as the figure builders).
            ("L1-PANIC", &["crates/gcs/src/fec.rs"]),
            // The repro surface must degrade to error returns, never
            // panic — so the panic rule (and only it: indexing over
            // static tables is idiomatic in figure builders, so
            // L1-INDEX stays out) extends to the whole bench crate,
            // including `bin/repro.rs` and the manifest writer/parser
            // (`manifest.rs` must survive arbitrary JSON input), plus
            // the typed metrics layer that every workload records into.
            (
                "L1-PANIC",
                &["crates/bench/src/**", "crates/telemetry/src/metrics*.rs"],
            ),
            // L2 secret hygiene: everywhere secrets or telemetry live.
            (
                "L2",
                &[
                    "crates/crypto/src/**",
                    "crates/core/src/**",
                    "crates/telemetry/src/**",
                ],
            ),
            // L3 constant-time discipline: the bignum substrate and the
            // crypto crate's verification paths.
            ("L3", &["crates/bignum/src/**", "crates/crypto/src/**"]),
            // L4 determinism: the simulator and the GCS engine — every
            // path that can influence event or message ordering — plus
            // the metrics registry and the run-manifest writer, whose
            // rendered bytes must be a pure function of the run
            // (bit-identical across `--jobs`; no wall-clock, no
            // unordered maps, no platform-dependent float formatting).
            (
                "L4",
                &[
                    "crates/sim/src/**",
                    "crates/gcs/src/**",
                    "crates/telemetry/src/metrics*.rs",
                    "crates/bench/src/manifest.rs",
                ],
            ),
        ];
        for (prefix, globs) in scopes {
            for g in *globs {
                cfg.scopes.push(Scope {
                    rule_prefix: prefix.to_string(),
                    glob: g.to_string(),
                });
            }
        }
        cfg
    }

    /// Parses a config file (scope lines). Returns `Err` with a
    /// message on malformed lines.
    pub fn parse_conf(text: &str) -> Result<Self, String> {
        let mut cfg = Config::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("scope") => {
                    let prefix = parts
                        .next()
                        .ok_or_else(|| format!("line {}: scope needs a rule prefix", lineno + 1))?;
                    let globs: Vec<&str> = parts.collect();
                    if globs.is_empty() {
                        return Err(format!(
                            "line {}: scope needs at least one glob",
                            lineno + 1
                        ));
                    }
                    for g in globs {
                        cfg.scopes.push(Scope {
                            rule_prefix: prefix.to_string(),
                            glob: g.to_string(),
                        });
                    }
                }
                Some(other) => {
                    return Err(format!("line {}: unknown directive `{other}`", lineno + 1))
                }
                None => {}
            }
        }
        Ok(cfg)
    }

    /// Parses an allowlist file. Entries without a reason are errors.
    pub fn parse_allowlist(&mut self, text: &str) -> Result<(), String> {
        for (lineno, raw) in text.lines().enumerate() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (entry, reason) = match trimmed.split_once('#') {
                Some((e, r)) if !r.trim().is_empty() => (e.trim(), r.trim().to_string()),
                _ => {
                    return Err(format!(
                        "analyze.allow line {}: every entry needs a `# reason`",
                        lineno + 1
                    ))
                }
            };
            let mut parts = entry.split_whitespace();
            let (rule, glob) = match (parts.next(), parts.next()) {
                (Some(r), Some(g)) => (r, g),
                _ => {
                    return Err(format!(
                        "analyze.allow line {}: expected `<RULE> <glob> # reason`",
                        lineno + 1
                    ))
                }
            };
            self.allows.push(Allow {
                rule: rule.to_string(),
                glob: glob.to_string(),
                reason,
            });
        }
        Ok(())
    }

    /// Whether `rule` applies to `rel_path` under the configured scopes.
    pub fn in_scope(&self, rule: &str, rel_path: &str) -> bool {
        self.scopes
            .iter()
            .any(|s| rule.starts_with(s.rule_prefix.as_str()) && glob_match(&s.glob, rel_path))
    }

    /// Whether a finding of `rule` in `rel_path` is allowlisted.
    pub fn allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| rule.starts_with(a.rule.as_str()) && glob_match(&a.glob, rel_path))
    }

    /// Every path prefix mentioned by any scope — used to prune the
    /// file walk.
    pub fn is_interesting(&self, rel_path: &str) -> bool {
        self.scopes.iter().any(|s| glob_match(&s.glob, rel_path))
    }
}

/// Matches `path` (`/`-separated, relative) against `glob` with `*`
/// (one segment) and `**` (any depth) support.
pub fn glob_match(glob: &str, path: &str) -> bool {
    let g: Vec<&str> = glob.split('/').collect();
    let p: Vec<&str> = path.split('/').collect();
    seg_match(&g, &p)
}

fn seg_match(g: &[&str], p: &[&str]) -> bool {
    match (g.first(), p.first()) {
        (None, None) => true,
        (Some(&"**"), _) => {
            // `**` matches zero or more segments.
            if seg_match(&g[1..], p) {
                return true;
            }
            match p.first() {
                Some(_) => seg_match(g, &p[1..]),
                None => false,
            }
        }
        (Some(gs), Some(ps)) => segment_match(gs, ps) && seg_match(&g[1..], &p[1..]),
        _ => false,
    }
}

/// One-segment match with `*` wildcards.
fn segment_match(pat: &str, s: &str) -> bool {
    let pats: Vec<&str> = pat.split('*').collect();
    if pats.len() == 1 {
        return pat == s;
    }
    let mut rest = s;
    for (i, piece) in pats.iter().enumerate() {
        if piece.is_empty() {
            continue;
        }
        match rest.find(piece) {
            Some(at) => {
                // First piece must anchor at the start.
                if i == 0 && at != 0 {
                    return false;
                }
                rest = &rest[at + piece.len()..];
            }
            None => return false,
        }
    }
    // Last piece must anchor at the end unless the pattern ends with *.
    if let Some(last) = pats.last() {
        if !last.is_empty() && !s.ends_with(last) {
            return false;
        }
    }
    true
}

/// Normalizes a path to `/`-separated relative form.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match(
            "crates/core/src/protocols/**",
            "crates/core/src/protocols/gdh.rs"
        ));
        assert!(glob_match(
            "crates/core/src/protocols/**",
            "crates/core/src/protocols/sub/deep.rs"
        ));
        assert!(!glob_match(
            "crates/core/src/protocols/**",
            "crates/core/src/tree.rs"
        ));
        assert!(glob_match("crates/*/src/**", "crates/gcs/src/engine.rs"));
        assert!(glob_match("src/l1_*.rs", "src/l1_panics.rs"));
        assert!(!glob_match("src/l1_*.rs", "src/l2_panics.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
    }

    #[test]
    fn scope_lookup() {
        let cfg = Config::workspace_default();
        assert!(cfg.in_scope("L1-PANIC", "crates/core/src/protocols/gdh.rs"));
        assert!(cfg.in_scope("L1-INDEX", "crates/gcs/src/engine.rs"));
        assert!(!cfg.in_scope("L1-PANIC", "crates/core/src/tree.rs"));
        assert!(cfg.in_scope("L4-HASH", "crates/sim/src/queue.rs"));
        assert!(!cfg.in_scope("L4-HASH", "crates/core/src/session.rs"));
        // The FEC codec: panic-free (it feeds the delivery path) and
        // deterministic, but not under the indexing rule.
        assert!(cfg.in_scope("L1-PANIC", "crates/gcs/src/fec.rs"));
        assert!(!cfg.in_scope("L1-INDEX", "crates/gcs/src/fec.rs"));
        assert!(cfg.in_scope("L4-HASH", "crates/gcs/src/fec.rs"));
        // The bench crate is in scope for the panic rule only.
        assert!(cfg.in_scope("L1-PANIC", "crates/bench/src/bin/repro.rs"));
        assert!(cfg.in_scope("L1-PANIC", "crates/bench/src/figures.rs"));
        assert!(!cfg.in_scope("L1-INDEX", "crates/bench/src/figures.rs"));
        // The metrics registry: panic-free and deterministic, but not
        // under the indexing rule (its bucket tables are static).
        assert!(cfg.in_scope("L1-PANIC", "crates/telemetry/src/metrics.rs"));
        assert!(!cfg.in_scope("L1-INDEX", "crates/telemetry/src/metrics.rs"));
        assert!(cfg.in_scope("L4-HASH", "crates/telemetry/src/metrics.rs"));
        // The manifest writer renders bytes that must not depend on
        // wall time or map iteration order.
        assert!(cfg.in_scope("L4-TIME", "crates/bench/src/manifest.rs"));
        assert!(!cfg.in_scope("L4-TIME", "crates/bench/src/figures.rs"));
        assert!(!cfg.in_scope("L2", "crates/bench/src/manifest.rs"));
    }

    #[test]
    fn config_parse_roundtrip() {
        let cfg = Config::parse_conf(
            "# comment\nscope L1 src/l1_*.rs src/other/**\nscope L4 src/sim.rs\n",
        )
        .unwrap();
        assert_eq!(cfg.scopes.len(), 3);
        assert!(cfg.in_scope("L1-PANIC", "src/l1_driver.rs"));
        assert!(cfg.in_scope("L4-TIME", "src/sim.rs"));
        assert!(Config::parse_conf("bogus L1 x").is_err());
        assert!(Config::parse_conf("scope L1").is_err());
    }

    #[test]
    fn allowlist_requires_reason() {
        let mut cfg = Config::default();
        assert!(cfg.parse_allowlist("L1-INDEX src/x.rs").is_err());
        cfg.parse_allowlist("L1-INDEX src/x.rs # audited 2026-08-07\n")
            .unwrap();
        assert!(cfg.allowed("L1-INDEX", "src/x.rs"));
        assert!(!cfg.allowed("L1-PANIC", "src/x.rs"));
    }
}

//! A minimal Rust lexer.
//!
//! The analyzer cannot depend on `syn` (the build environment is fully
//! offline and the vendored dependency set is deliberately tiny), so it
//! carries its own tokenizer. It handles exactly the lexical features
//! the rule engines need:
//!
//! * line (`//`) and nested block (`/* */`) comments — stripped,
//! * string, raw-string, byte-string and char literals — collapsed to
//!   single tokens so their contents can never fake a match,
//! * lifetimes vs. char literals (`'a` the lifetime vs. `'a'` the char),
//! * multi-character operators the rules care about (`==`, `!=`, `::`,
//!   `->`, `=>`, `..`, `<=`, `>=`, `&&`, `||`),
//! * line numbers on every token, for `file:line` diagnostics.
//!
//! Everything else (identifiers, numbers, single punctuation) passes
//! through unchanged. The output is a flat `Vec<Token>` the item parser
//! and rule engines walk with plain indices.

/// The coarse classification the rules dispatch on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer / float literal.
    Num,
    /// String, raw string, byte string or char literal.
    Lit,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation / operator (possibly multi-character).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The token text (`"=="`, `"unwrap"`, …). Literals keep their full
    /// source slice (quotes included) — but rule engines only match via
    /// [`Token::is_ident`] / [`Token::is_punct`], which check `kind`,
    /// so nothing inside a literal can fake an identifier match. The
    /// raw text is kept so the dataflow can spot inline format captures
    /// like `"{secret:?}"`.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes `src` into a token stream. Comments are dropped; everything
/// else becomes a [`Token`].
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(&b[start..i]);
            }
            '"' => {
                let (end, newlines) = scan_string(&b, i);
                out.push(Token {
                    kind: TokKind::Lit,
                    text: b[i..end].iter().collect(),
                    line,
                });
                line += newlines;
                i = end;
            }
            'r' | 'b' if starts_special_literal(&b, i) => {
                let (end, newlines, kind) = scan_special_literal(&b, i);
                out.push(Token {
                    kind,
                    text: b[i..end].iter().collect(),
                    line,
                });
                line += newlines;
                i = end;
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes with a
                // quote within a few chars (`'x'`, `'\n'`, `'\u{1F600}'`);
                // a lifetime is `'` followed by an identifier and no
                // closing quote.
                if let Some(end) = scan_char_literal(&b, i) {
                    out.push(Token {
                        kind: TokKind::Lit,
                        text: b[i..end].iter().collect(),
                        line,
                    });
                    i = end;
                } else {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.push(Token {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                    // Stop `0..10` from swallowing the range operator.
                    if b[j] == '.' && j + 1 < n && b[j + 1] == '.' {
                        break;
                    }
                    j += 1;
                }
                out.push(Token {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                // Multi-char operators first.
                let two: String = b[i..(i + 2).min(n)].iter().collect();
                let op = match two.as_str() {
                    "==" | "!=" | "::" | "->" | "=>" | ".." | "<=" | ">=" | "&&" | "||" => {
                        Some(two)
                    }
                    _ => None,
                };
                match op {
                    Some(t) => {
                        out.push(Token {
                            kind: TokKind::Punct,
                            text: t,
                            line,
                        });
                        i += 2;
                    }
                    None => {
                        out.push(Token {
                            kind: TokKind::Punct,
                            text: c.to_string(),
                            line,
                        });
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

/// Scans a `"…"` string starting at the opening quote; returns
/// (index past the closing quote, newline count inside).
fn scan_string(b: &[char], start: usize) -> (usize, u32) {
    let n = b.len();
    let mut i = start + 1;
    let mut newlines = 0;
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '"' => return (i + 1, newlines),
            '\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (n, newlines)
}

/// Whether `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` starts at `i`.
fn starts_special_literal(b: &[char], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        'r' => {
            let mut j = i + 1;
            while j < n && b[j] == '#' {
                j += 1;
            }
            j < n && b[j] == '"'
        }
        'b' => {
            if i + 1 >= n {
                return false;
            }
            match b[i + 1] {
                '"' | '\'' => true,
                'r' => {
                    let mut j = i + 2;
                    while j < n && b[j] == '#' {
                        j += 1;
                    }
                    j < n && b[j] == '"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Scans raw/byte string or byte-char literals; returns
/// (index past end, newline count, token kind).
fn scan_special_literal(b: &[char], start: usize) -> (usize, u32, TokKind) {
    let n = b.len();
    let mut i = start;
    if b[i] == 'b' {
        i += 1;
        if i < n && b[i] == '\'' {
            // b'x' byte char.
            let end = scan_char_literal(b, i).unwrap_or(n);
            return (end, 0, TokKind::Lit);
        }
    }
    if i < n && b[i] == 'r' {
        i += 1;
    }
    let mut hashes = 0;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != '"' {
        return (start + 1, 0, TokKind::Punct);
    }
    if hashes == 0 && b[start] != 'r' && !(b[start] == 'b' && b[start + 1] != 'r') {
        // plain b"…": delegate to scan_string semantics (escapes apply)
        let (end, nl) = scan_string(b, i);
        return (end, nl, TokKind::Lit);
    }
    if hashes == 0 && (b[start] == 'b' && b[start + 1] == '"') {
        let (end, nl) = scan_string(b, i);
        return (end, nl, TokKind::Lit);
    }
    // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
    i += 1;
    let mut newlines = 0;
    while i < n {
        if b[i] == '\n' {
            newlines += 1;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut h = 0;
            while j < n && b[j] == '#' && h < hashes {
                j += 1;
                h += 1;
            }
            if h == hashes {
                return (j, newlines, TokKind::Lit);
            }
        }
        i += 1;
    }
    (n, newlines, TokKind::Lit)
}

/// If a char literal starts at `i` (the `'`), returns the index past its
/// closing quote; `None` if this is a lifetime.
fn scan_char_literal(b: &[char], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 1 >= n {
        return None;
    }
    if b[i + 1] == '\\' {
        // Escaped char: scan to closing quote.
        let mut j = i + 2;
        while j < n && b[j] != '\'' {
            j += 1;
        }
        return Some((j + 1).min(n));
    }
    // `'x'`: exactly one char then a quote.
    if i + 2 < n && b[i + 2] == '\'' {
        return Some(i + 3);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(
            texts("a // unwrap()\nb /* panic! /* nested */ */ c"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn strings_are_opaque_to_ident_matching() {
        let toks = lex(r#"let x = "call .unwrap() here";"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 1);
        // Nothing inside the literal can match as an identifier.
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings_and_bytes() {
        let toks = lex(r##"let x = r#"no "escape" panic!"#; let y = b"bytes"; let z = b'q';"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 3);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = lex("fn f<'a>(x: &'a u8) { let c = 'x'; }");
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(t.iter().any(|t| t.kind == TokKind::Lit && t.text == "'x'"));
    }

    #[test]
    fn multichar_operators() {
        let t = texts("a == b != c :: d -> e .. f");
        for op in ["==", "!=", "::", "->", ".."] {
            assert!(t.contains(&op.to_string()), "{op}");
        }
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn range_after_number() {
        let t = texts("for i in 0..10 {}");
        assert!(t.contains(&"0".to_string()));
        assert!(t.contains(&"..".to_string()));
        assert!(t.contains(&"10".to_string()));
    }
}

//! `gkap-analyze` — the workspace static analyzer.
//!
//! Parses every in-scope Rust source file in the workspace (own lexer +
//! item parser; the build environment is offline so there is no `syn`),
//! builds a per-function call graph with a lightweight signature-level
//! dataflow, and enforces four rule families:
//!
//! * **L1 panic-freedom** — no `unwrap`/`expect`/`panic!`/raw indexing
//!   in protocol drivers, the secure session layer or the GCS engine.
//! * **L2 secret hygiene** — DH exponents, RSA private keys and group
//!   keys live in `Secret<T>`, never derive `Debug`, and never flow
//!   into formatting / serialization sinks.
//! * **L3 constant-time discipline** — verification paths compare with
//!   `ct_eq`; `ct_*` kernels have no early exits or data-dependent
//!   indexing.
//! * **L4 sim determinism** — no wall-clock time, ambient RNG or
//!   hash-order iteration in event-ordering paths.
//!
//! Diagnostics are rustc-style `file:line: error[RULE]: message`; the
//! CLI exits non-zero when any finding survives the allowlist. See
//! `DESIGN.md` §11 for scope rationale and the allowlist policy.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use config::Config;

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id (`"L1-PANIC"`, …).
    pub rule: String,
    /// Root-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Directories never descended into during discovery.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Recursively collects `.rs` files under `root` whose root-relative
/// path is matched by at least one scope glob. Paths come back sorted
/// so runs are deterministic.
pub fn discover_files(root: &Path, cfg: &Config) -> Result<Vec<(String, String)>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let rel = config::rel_path(root, &p);
        if !cfg.is_interesting(&rel) {
            continue;
        }
        let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
        out.push((rel, text));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every in-scope file under `root` and returns the surviving
/// findings, sorted by `(file, line, rule)`.
pub fn analyze_root(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let sources = discover_files(root, cfg)?;
    Ok(analyze_sources(&sources, cfg))
}

/// Analyzes pre-loaded `(rel_path, contents)` pairs. Split out so the
/// fixture tests can drive the analyzer without touching the real
/// filesystem layout.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let files: Vec<(String, parse::ParsedFile)> = sources
        .iter()
        .map(|(rel, text)| (rel.clone(), parse::parse(text)))
        .collect();
    let graph = callgraph::CallGraph::build(&files);
    rules::check_all(&files, cfg, &graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_is_rustc_style() {
        let f = Finding {
            rule: "L1-PANIC".to_string(),
            file: "crates/core/src/session.rs".to_string(),
            line: 83,
            msg: "`.expect()` in protocol path".to_string(),
        };
        assert_eq!(
            f.to_string(),
            "crates/core/src/session.rs:83: error[L1-PANIC]: `.expect()` in protocol path"
        );
    }

    #[test]
    fn analyze_sources_end_to_end() {
        let cfg = Config::parse_conf("scope L1 src/**").unwrap();
        let sources = vec![(
            "src/driver.rs".to_string(),
            "fn step(v: Option<u8>) -> u8 { v.unwrap() }".to_string(),
        )];
        let findings = analyze_sources(&sources, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "L1-PANIC");
        assert_eq!(findings[0].file, "src/driver.rs");
    }
}

//! CLI for the workspace static analyzer.
//!
//! ```text
//! gkap-analyze --workspace [--deny-all] [--rule PREFIX]
//! gkap-analyze --root DIR [--config FILE] [--allow FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use gkap_analyze::{analyze_root, Config};

struct Args {
    root: Option<PathBuf>,
    workspace: bool,
    config: Option<PathBuf>,
    allow: Option<PathBuf>,
    rule: Option<String>,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: gkap-analyze (--workspace | --root DIR) [--config FILE] [--allow FILE] \
     [--rule PREFIX] [--deny-all] [--quiet]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        workspace: false,
        config: None,
        allow: None,
        rule: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?))
            }
            "--allow" => args.allow = Some(PathBuf::from(it.next().ok_or("--allow needs a file")?)),
            "--rule" => args.rule = Some(it.next().ok_or("--rule needs a prefix")?),
            // Findings always fail the run; the flag is accepted so CI
            // invocations read explicitly.
            "--deny-all" => {}
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if !args.workspace && args.root.is_none() {
        return Err(usage().to_string());
    }
    Ok(args)
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_string());
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match (&args.root, args.workspace) {
        (Some(r), _) => r.clone(),
        (None, true) => find_workspace_root()?,
        _ => unreachable!(),
    };

    let mut cfg = match &args.config {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            Config::parse_conf(&text)?
        }
        None => {
            // `--root DIR` with an `analyze.conf` in DIR picks it up;
            // otherwise the embedded workspace scopes apply.
            let default = root.join("analyze.conf");
            if args.root.is_some() && default.is_file() {
                let text = std::fs::read_to_string(&default)
                    .map_err(|e| format!("{}: {e}", default.display()))?;
                Config::parse_conf(&text)?
            } else {
                Config::workspace_default()
            }
        }
    };

    let allow_path = args
        .allow
        .clone()
        .unwrap_or_else(|| root.join("analyze.allow"));
    if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        cfg.parse_allowlist(&text)?;
    }

    let mut findings = analyze_root(&root, &cfg)?;
    if let Some(prefix) = &args.rule {
        findings.retain(|f| f.rule.starts_with(prefix.as_str()));
    }

    if !args.quiet {
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        if !args.quiet {
            println!("gkap-analyze: clean (root {})", root.display());
        }
        Ok(true)
    } else {
        println!("gkap-analyze: {} finding(s)", findings.len());
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("gkap-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

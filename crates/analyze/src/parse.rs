//! Item-level parsing on top of the token stream: functions (with
//! signatures), structs (with fields and derives), and `#[cfg(test)]`
//! regions. This is deliberately *not* a full Rust parser — it
//! recovers exactly the structure the rule engines and the call graph
//! need, using brace matching and a handful of keyword anchors.

use crate::lexer::{lex, TokKind, Token};

/// A parsed function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`x` in `mut x: &Secret<Ubig>`); `self` for
    /// receivers.
    pub name: String,
    /// The type, as flattened token text (`"& Secret < Ubig >"`).
    pub ty: String,
}

/// A parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameters in order (receiver included as `self`).
    pub params: Vec<Param>,
    /// Flattened return type text (empty for `()`).
    pub ret: String,
    /// Token index range of the body (inside the braces).
    pub body: std::ops::Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region or annotated `#[test]`.
    pub is_test: bool,
}

/// A parsed `struct` item with named fields.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// `(field, flattened type)` pairs.
    pub fields: Vec<(String, String)>,
    /// Traits listed in `#[derive(..)]` attributes on this struct.
    pub derives: Vec<String>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// The full token stream (comments stripped).
    pub tokens: Vec<Token>,
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All structs with named fields.
    pub structs: Vec<StructItem>,
    /// Token index ranges that belong to `#[cfg(test)]` items.
    pub test_regions: Vec<std::ops::Range<usize>>,
}

impl ParsedFile {
    /// Whether token index `i` falls inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&i))
    }
}

/// Parses one file's source text.
pub fn parse(src: &str) -> ParsedFile {
    let tokens = lex(src);
    let mut out = ParsedFile {
        tokens: Vec::new(),
        fns: Vec::new(),
        structs: Vec::new(),
        test_regions: Vec::new(),
    };

    // First pass: find `#[cfg(test)]` / `#[test]` attributes and mark
    // the token range of the item that follows (up to its matching
    // closing brace or semicolon).
    let n = tokens.len();
    let mut i = 0;
    while i < n {
        if is_attr_start(&tokens, i) {
            let (attr_end, is_test_attr) = scan_attr(&tokens, i);
            if is_test_attr {
                let item_end = scan_item_end(&tokens, attr_end);
                out.test_regions.push(i..item_end);
                i = attr_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }

    // Second pass: items.
    let mut i = 0;
    let mut pending_derives: Vec<String> = Vec::new();
    let mut has_test_attr = false;
    while i < n {
        let t = &tokens[i];
        if is_attr_start(&tokens, i) {
            let (attr_end, is_test_attr) = scan_attr(&tokens, i);
            pending_derives.extend(derives_in_attr(&tokens, i, attr_end));
            has_test_attr |= is_test_attr;
            i = attr_end;
            continue;
        }
        if t.is_ident("fn") {
            let (f, next) = parse_fn(&tokens, i, &out);
            let mut f = f;
            f.is_test |= has_test_attr;
            i = next;
            out.fns.push(f);
            pending_derives.clear();
            has_test_attr = false;
            continue;
        }
        if t.is_ident("struct") {
            if let Some((s, next)) =
                parse_struct(&tokens, i, &out, std::mem::take(&mut pending_derives))
            {
                i = next;
                out.structs.push(s);
                has_test_attr = false;
                continue;
            }
        }
        if t.kind == TokKind::Ident || t.is_punct(";") || t.is_punct("{") {
            // Any other item boundary clears pending attributes.
            if t.is_punct(";") || t.is_punct("{") {
                pending_derives.clear();
                has_test_attr = false;
            }
        }
        i += 1;
    }

    out.tokens = tokens;
    out
}

/// `#` followed by `[` (an outer attribute) or `#` `!` `[` (inner).
fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    tokens[i].is_punct("#")
        && (tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
            || (tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct("["))))
}

/// Scans an attribute starting at `#`; returns (index past `]`,
/// whether it is `#[cfg(test)]` or `#[test]`).
fn scan_attr(tokens: &[Token], start: usize) -> (usize, bool) {
    let mut i = start + 1;
    if tokens.get(i).is_some_and(|t| t.is_punct("!")) {
        i += 1;
    }
    // tokens[i] == '['
    let mut depth = 0usize;
    let body_start = i;
    while i < tokens.len() {
        if tokens[i].is_punct("[") {
            depth += 1;
        } else if tokens[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        }
        i += 1;
    }
    let body: Vec<&str> = tokens[body_start..i]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    let is_test = matches!(body.as_slice(), ["[", "test", "]"])
        || (body.contains(&"cfg") && body.contains(&"test"));
    (i, is_test)
}

/// Trait names inside `#[derive(A, B)]`, if this attribute is a derive.
fn derives_in_attr(tokens: &[Token], start: usize, end: usize) -> Vec<String> {
    let body = &tokens[start..end];
    if !body.iter().any(|t| t.is_ident("derive")) {
        return Vec::new();
    }
    body.iter()
        .filter(|t| t.kind == TokKind::Ident && t.text != "derive")
        .map(|t| t.text.clone())
        .collect()
}

/// From just past an attribute, scans to the end of the following item
/// (matching `{}` braces, or the first `;` before any brace).
fn scan_item_end(tokens: &[Token], mut i: usize) -> usize {
    let n = tokens.len();
    // Skip further attributes.
    while i < n && is_attr_start(tokens, i) {
        i = scan_attr(tokens, i).0;
    }
    let mut depth = 0usize;
    while i < n {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    n
}

/// Parses a `fn` item starting at the `fn` keyword. Returns the item
/// and the index to continue scanning from (just past the signature —
/// the caller walks *into* bodies so nested fns are found too).
fn parse_fn(tokens: &[Token], start: usize, file: &ParsedFile) -> (FnItem, usize) {
    let n = tokens.len();
    let line = tokens[start].line;
    let name = tokens
        .get(start + 1)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();

    // Skip generics between name and `(` (angle-bracket matching; fine
    // in signature position where `<` is never a comparison).
    let mut i = start + 2;
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0isize;
        while i < n {
            match tokens[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
        }
    }

    // Parameter list.
    let mut params = Vec::new();
    if tokens.get(i).is_some_and(|t| t.is_punct("(")) {
        let open = i;
        let mut depth = 0usize;
        while i < n {
            if tokens[i].is_punct("(") {
                depth += 1;
            } else if tokens[i].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i += 1;
        }
        params = split_params(&tokens[open + 1..i]);
        i += 1; // past ')'
    }

    // Return type: tokens between `->` and `{` / `;` / `where`.
    let mut ret = String::new();
    if tokens.get(i).is_some_and(|t| t.is_punct("->")) {
        i += 1;
        let mut parts = Vec::new();
        while i < n {
            let t = &tokens[i];
            if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                break;
            }
            parts.push(t.text.clone());
            i += 1;
        }
        ret = parts.join(" ");
    }
    // Skip a where clause.
    while i < n && !tokens[i].is_punct("{") && !tokens[i].is_punct(";") {
        i += 1;
    }

    // Body.
    let mut body = 0..0;
    if tokens.get(i).is_some_and(|t| t.is_punct("{")) {
        let open = i;
        let mut depth = 0usize;
        while i < n {
            if tokens[i].is_punct("{") {
                depth += 1;
            } else if tokens[i].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i += 1;
        }
        body = open + 1..i.min(n);
    }

    let is_test = file.in_test_region(start);
    (
        FnItem {
            name,
            params,
            ret,
            body,
            line,
            is_test,
        },
        // Continue just past the signature so nested fns inside the
        // body are discovered by the main loop.
        start + 1,
    )
}

/// Splits a parameter token slice on top-level commas into params.
fn split_params(tokens: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0isize;
    let mut cur: Vec<&Token> = Vec::new();
    let flush = |cur: &mut Vec<&Token>, params: &mut Vec<Param>| {
        if cur.is_empty() {
            return;
        }
        // Receiver?
        if cur.iter().any(|t| t.is_ident("self")) && !cur.iter().any(|t| t.is_punct(":")) {
            params.push(Param {
                name: "self".to_string(),
                ty: "Self".to_string(),
            });
            cur.clear();
            return;
        }
        let colon = cur.iter().position(|t| t.is_punct(":"));
        if let Some(c) = colon {
            let name = cur[..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let ty: Vec<String> = cur[c + 1..].iter().map(|t| t.text.clone()).collect();
            params.push(Param {
                name,
                ty: ty.join(" "),
            });
        }
        cur.clear();
    };
    for t in tokens {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => {
                flush(&mut cur, &mut params);
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    flush(&mut cur, &mut params);
    params
}

/// Parses a brace struct starting at the `struct` keyword. Tuple
/// structs and unit structs are skipped (returns `None` → caller
/// advances by one token).
fn parse_struct(
    tokens: &[Token],
    start: usize,
    file: &ParsedFile,
    derives: Vec<String>,
) -> Option<(StructItem, usize)> {
    let n = tokens.len();
    let line = tokens[start].line;
    let name = tokens
        .get(start + 1)
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    let mut i = start + 2;
    // Skip generics.
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0isize;
        while i < n {
            match tokens[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
        }
    }
    // Skip where clause.
    while i < n && !tokens[i].is_punct("{") && !tokens[i].is_punct(";") && !tokens[i].is_punct("(")
    {
        i += 1;
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct("{")) {
        return None; // tuple / unit struct
    }
    let open = i;
    let mut depth = 0usize;
    while i < n {
        if tokens[i].is_punct("{") {
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        i += 1;
    }
    let fields = split_fields(&tokens[open + 1..i.min(n)]);
    Some((
        StructItem {
            name,
            fields,
            derives,
            line,
            is_test: file.in_test_region(start),
        },
        i + 1,
    ))
}

/// Splits struct-body tokens into `(field, type)` pairs.
fn split_fields(tokens: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut cur: Vec<&Token> = Vec::new();
    let mut flush = |cur: &mut Vec<&Token>| {
        // Strip attributes at the front.
        let mut s = 0usize;
        while s < cur.len() && cur[s].is_punct("#") {
            // skip to matching ]
            let mut d = 0usize;
            let mut j = s + 1;
            while j < cur.len() {
                if cur[j].is_punct("[") {
                    d += 1;
                } else if cur[j].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            s = j + 1;
        }
        let rest = &cur[s.min(cur.len())..];
        if let Some(c) = rest.iter().position(|t| t.is_punct(":")) {
            let name = rest[..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "pub" && t.text != "crate")
                .map(|t| t.text.clone());
            if let Some(name) = name {
                let ty: Vec<String> = rest[c + 1..].iter().map(|t| t.text.clone()).collect();
                out.push((name, ty.join(" ")));
            }
        }
        cur.clear();
    };
    for t in tokens {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => {
                flush(&mut cur);
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    flush(&mut cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_signatures() {
        let p = parse("pub fn add(a: u64, mut b: u64) -> u64 { a + b }\nfn g<T: Clone>(x: &T) {}");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "add");
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[1].name, "b");
        assert_eq!(p.fns[0].ret, "u64");
        assert_eq!(p.fns[1].name, "g");
        assert_eq!(p.fns[1].params[0].ty, "& T");
    }

    #[test]
    fn finds_nested_fns() {
        let p = parse("fn outer() { fn inner(q: u8) {} inner(1); }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }

    #[test]
    fn struct_fields_and_derives() {
        let p =
            parse("#[derive(Clone, Debug)]\npub struct Key { pub secret: Secret<Ubig>, id: u64 }");
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Key");
        assert!(s.derives.contains(&"Debug".to_string()));
        assert_eq!(s.fields[0].0, "secret");
        assert!(s.fields[0].1.contains("Secret"));
    }

    #[test]
    fn cfg_test_region_marks_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n";
        let p = parse(src);
        let live = p.fns.iter().find(|f| f.name == "live").unwrap();
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(!live.is_test);
        assert!(helper.is_test);
    }

    #[test]
    fn test_attr_marks_fn() {
        let p = parse("#[test]\nfn t() { assert!(true); }\nfn f() {}");
        assert!(p.fns.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!p.fns.iter().find(|f| f.name == "f").unwrap().is_test);
    }

    #[test]
    fn receiver_param() {
        let p = parse("impl X { fn m(&mut self, v: u8) {} }");
        let m = &p.fns[0];
        assert_eq!(m.params[0].name, "self");
        assert_eq!(m.params[1].name, "v");
    }
}

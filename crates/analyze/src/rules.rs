//! The four rule families.
//!
//! | id        | family                  | what it flags                                     |
//! |-----------|-------------------------|---------------------------------------------------|
//! | L1-PANIC  | panic-freedom           | `.unwrap()` / `.expect()` / `panic!`-class macros |
//! | L1-INDEX  | panic-freedom           | postfix slice / array indexing                    |
//! | L2-DERIVE | secret hygiene          | secret-bearing structs deriving Debug/Serialize   |
//! | L2-RAW    | secret hygiene          | secret-named fields stored outside `Secret<T>`    |
//! | L2-FLOW   | secret hygiene          | secret values flowing into format/serialize sinks |
//! | L3-EQ     | constant-time           | `==` / `!=` in verification / confirmation paths  |
//! | L3-CT     | constant-time           | early exit / data indexing inside `ct_*` fns      |
//! | L4-HASH   | sim determinism         | `HashMap` / `HashSet` in event-ordering paths     |
//! | L4-TIME   | sim determinism         | wall-clock time (`Instant`, `SystemTime`, …)      |
//! | L4-RNG    | sim determinism         | ambient RNG (`thread_rng`, `OsRng`, …)            |
//!
//! All token-level checks skip `#[cfg(test)]` regions; findings are
//! deduplicated per `(rule, file, line)` so one offending line yields
//! one diagnostic.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, SINK_CALLS, SINK_MACROS};
use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::parse::ParsedFile;
use crate::Finding;

/// Field / binding names treated as secret material for L2.
pub const SECRET_NAMES: &[&str] = &[
    "secret",
    "group_secret",
    "enc_key",
    "mac_key",
    "group_key",
    "private_key",
    "secret_exponent",
    "priv_exp",
];

/// Macros that panic at runtime.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers that, immediately before `[`, mean the bracket is not a
/// postfix index expression.
const NON_INDEX_PREV: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move", "as",
    "dyn", "impl", "for", "where", "const", "static", "type", "fn", "pub", "crate", "super", "use",
    "struct", "enum", "trait", "mod", "unsafe", "while", "loop", "await", "async", "yield", "box",
];

/// Runs every rule family over the parsed files.
pub fn check_all(files: &[(String, ParsedFile)], cfg: &Config, graph: &CallGraph) -> Vec<Finding> {
    let mut raw = Vec::new();
    for (fi, (path, pf)) in files.iter().enumerate() {
        check_l1(path, pf, cfg, &mut raw);
        check_l2_structs(path, pf, cfg, &mut raw);
        check_l2_flow(fi, files, graph, cfg, &mut raw);
        check_l3(path, pf, cfg, &mut raw);
        check_l4(path, pf, cfg, &mut raw);
    }

    // Dedup per (rule, file, line), drop allowlisted, sort.
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for f in raw {
        if cfg.allowed(&f.rule, &f.file) {
            continue;
        }
        if seen.insert((f.rule.clone(), f.file.clone(), f.line)) {
            out.push(f);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

fn finding(rule: &str, file: &str, line: u32, msg: impl Into<String>) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: file.to_string(),
        line,
        msg: msg.into(),
    }
}

/// Whether the `[` at token index `i` is a postfix index expression.
fn is_postfix_index(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct("[") {
        return false;
    }
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !NON_INDEX_PREV.contains(&prev.text.as_str()),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

// ---------------------------------------------------------------- L1

fn check_l1(path: &str, pf: &ParsedFile, cfg: &Config, out: &mut Vec<Finding>) {
    let panic_scoped = cfg.in_scope("L1-PANIC", path);
    let index_scoped = cfg.in_scope("L1-INDEX", path);
    if !panic_scoped && !index_scoped {
        return;
    }
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        if pf.in_test_region(i) {
            continue;
        }
        let t = &toks[i];
        if panic_scoped {
            // `.unwrap(` / `.expect(`
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                out.push(finding(
                    "L1-PANIC",
                    path,
                    t.line,
                    format!(
                        "`.{}()` in protocol path — return a GkaError instead",
                        t.text
                    ),
                ));
            }
            // `panic!` class macros.
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                out.push(finding(
                    "L1-PANIC",
                    path,
                    t.line,
                    format!("`{}!` in protocol path — return a GkaError instead", t.text),
                ));
            }
        }
        if index_scoped && is_postfix_index(toks, i) {
            out.push(finding(
                "L1-INDEX",
                path,
                t.line,
                "slice/array indexing can panic — use `.get()` and handle the miss",
            ));
        }
    }
}

// ---------------------------------------------------------------- L2

/// Whether a struct field holds secret material.
fn field_is_secret(name: &str, ty: &str) -> bool {
    SECRET_NAMES.contains(&name) || ty.contains("Secret <") || ty.contains("Secret<")
}

fn check_l2_structs(path: &str, pf: &ParsedFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.in_scope("L2-DERIVE", path) {
        return;
    }
    for s in &pf.structs {
        if s.is_test {
            continue;
        }
        let secret_fields: Vec<&(String, String)> = s
            .fields
            .iter()
            .filter(|(n, t)| field_is_secret(n, t))
            .collect();
        if secret_fields.is_empty() {
            continue;
        }
        for bad in ["Debug", "Serialize"] {
            if s.derives.iter().any(|d| d == bad) {
                out.push(finding(
                    "L2-DERIVE",
                    path,
                    s.line,
                    format!(
                        "struct `{}` holds secret material but derives {bad} — implement it manually and redact",
                        s.name
                    ),
                ));
            }
        }
        for (fname, fty) in &s.fields {
            if SECRET_NAMES.contains(&fname.as_str())
                && !fty.contains("Secret <")
                && !fty.contains("Secret<")
            {
                out.push(finding(
                    "L2-RAW",
                    path,
                    s.line,
                    format!(
                        "field `{}.{}` stores secret material outside the zeroizing `Secret<T>` wrapper",
                        s.name, fname
                    ),
                ));
            }
        }
    }
}

fn check_l2_flow(
    fi: usize,
    files: &[(String, ParsedFile)],
    graph: &CallGraph,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let (path, pf) = &files[fi];
    if !cfg.in_scope("L2-FLOW", path) {
        return;
    }
    let reach = graph.sink_reaching_params(files);
    for (fj, f) in pf.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        // Secret-typed parameters that reach a sink (directly or via
        // callees).
        if let Some(params) = reach.get(&(fi, fj)) {
            for p in &f.params {
                if params.contains(&p.name)
                    && (p.ty.contains("Secret") || SECRET_NAMES.contains(&p.name.as_str()))
                {
                    out.push(finding(
                        "L2-FLOW",
                        path,
                        f.line,
                        format!(
                            "secret parameter `{}` of `{}` flows into a formatting/serialization sink",
                            p.name, f.name
                        ),
                    ));
                }
            }
        }
        // Direct: a secret-named identifier (or an `.expose()` call)
        // inside a sink's argument span.
        if let Some(sites) = graph.calls.get(&(fi, fj)) {
            for site in sites {
                let is_sink = SINK_MACROS.contains(&site.callee.as_str())
                    || SINK_CALLS.contains(&site.callee.as_str());
                if !is_sink {
                    continue;
                }
                let span = site.args.clone();
                let toks =
                    &pf.tokens[span.start.min(pf.tokens.len())..span.end.min(pf.tokens.len())];
                let mention = SECRET_NAMES
                    .iter()
                    .find(|name| {
                        toks.iter()
                            .any(|t| crate::callgraph::token_mentions(t, name))
                    })
                    .copied()
                    .or_else(|| {
                        toks.iter()
                            .any(|t| t.is_ident("expose"))
                            .then_some("expose")
                    });
                if let Some(m) = mention {
                    out.push(finding(
                        "L2-FLOW",
                        path,
                        site.line,
                        format!("secret value `{m}` passed to sink `{}`", site.callee),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L3

/// Whether a function name marks a verification / key-confirmation path.
fn is_verify_fn(name: &str) -> bool {
    name.starts_with("verify") || name.starts_with("confirm") || name.ends_with("_verify")
}

fn check_l3(path: &str, pf: &ParsedFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.in_scope("L3-EQ", path) {
        return;
    }
    let toks = &pf.tokens;
    for f in &pf.fns {
        if f.is_test {
            continue;
        }
        if is_verify_fn(&f.name) {
            for i in f.body.clone() {
                let t = &toks[i];
                if t.is_punct("==") || t.is_punct("!=") {
                    // Length comparisons are public information.
                    let lo = i.saturating_sub(4);
                    let hi = (i + 5).min(toks.len());
                    let near_len = toks[lo..hi]
                        .iter()
                        .any(|t| t.is_ident("len") || t.is_ident("is_empty"));
                    if !near_len {
                        out.push(finding(
                            "L3-EQ",
                            path,
                            t.line,
                            format!(
                                "variable-time `{}` in verification path `{}` — use `ct_eq`",
                                t.text, f.name
                            ),
                        ));
                    }
                }
            }
        }
        if f.name.starts_with("ct_") {
            let loops = loop_ranges(toks, &f.body);
            for i in f.body.clone() {
                let t = &toks[i];
                let bad = if t.is_ident("return") || t.is_ident("break") || t.is_ident("continue") {
                    Some(format!("early exit `{}`", t.text))
                } else if t.is_punct("?") {
                    Some("early exit `?`".to_string())
                } else if is_postfix_index(toks, i) {
                    Some("data-dependent table/slice indexing".to_string())
                } else if (t.is_punct("==") || t.is_punct("!="))
                    && loops.iter().any(|r| r.contains(&i))
                {
                    Some(format!("branching comparison `{}` inside loop", t.text))
                } else {
                    None
                };
                if let Some(what) = bad {
                    out.push(finding(
                        "L3-CT",
                        path,
                        t.line,
                        format!("{what} in constant-time fn `{}`", f.name),
                    ));
                }
            }
        }
    }
}

/// Token ranges of loop bodies (`for` / `while` / `loop`) inside `body`.
fn loop_ranges(toks: &[Token], body: &std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    for i in body.clone() {
        let t = &toks[i];
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        // Find the loop's opening brace, then match it.
        let mut j = i + 1;
        while j < body.end && !toks[j].is_punct("{") {
            j += 1;
        }
        let open = j;
        let mut depth = 0usize;
        while j < body.end {
            if toks[j].is_punct("{") {
                depth += 1;
            } else if toks[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        out.push(open + 1..j);
    }
    out
}

// ---------------------------------------------------------------- L4

fn check_l4(path: &str, pf: &ParsedFile, cfg: &Config, out: &mut Vec<Finding>) {
    let hash = cfg.in_scope("L4-HASH", path);
    let time = cfg.in_scope("L4-TIME", path);
    let rng = cfg.in_scope("L4-RNG", path);
    if !hash && !time && !rng {
        return;
    }
    let toks = &pf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if pf.in_test_region(i) {
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if hash => out.push(finding(
                "L4-HASH",
                path,
                t.line,
                format!(
                    "`{}` in event-ordering path — iteration order is nondeterministic; use BTreeMap/BTreeSet",
                    t.text
                ),
            )),
            "Instant" | "SystemTime" if time => out.push(finding(
                "L4-TIME",
                path,
                t.line,
                format!("wall-clock `{}` in simulation path — use the virtual clock", t.text),
            )),
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" if rng => out.push(finding(
                "L4-RNG",
                path,
                t.line,
                format!("ambient RNG `{}` in simulation path — use the seeded simulator RNG", t.text),
            )),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parse::parse;

    fn run(src: &str, scope: &str) -> Vec<Finding> {
        let cfg = Config::parse_conf(scope).unwrap();
        let files = vec![("src/x.rs".to_string(), parse(src))];
        let graph = CallGraph::build(&files);
        check_all(&files, &cfg, &graph)
    }

    #[test]
    fn l1_flags_unwrap_and_macros() {
        let f = run(
            "fn f(v: Option<u8>) -> u8 {\n    let x = v.unwrap();\n    if x > 9 { panic!(\"no\") }\n    x\n}",
            "scope L1 src/**",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "L1-PANIC").count(), 2);
    }

    #[test]
    fn l1_flags_indexing_but_not_attrs_or_macros() {
        let f = run(
            "#[derive(Clone)]\nstruct S { a: [u8; 4] }\nfn g(s: &S, i: usize) -> u8 { let v = vec![1]; s.a[i] }",
            "scope L1 src/**",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "L1-INDEX").count(), 1);
    }

    #[test]
    fn l1_skips_tests() {
        let f = run(
            "#[cfg(test)]\nmod t { fn h(v: Option<u8>) { v.unwrap(); } }",
            "scope L1 src/**",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn l2_derive_and_raw() {
        let f = run(
            "#[derive(Clone, Debug)]\nstruct K { secret: Ubig }\nstruct Ok2 { secret: Secret<Ubig> }",
            "scope L2 src/**",
        );
        assert!(f.iter().any(|f| f.rule == "L2-DERIVE"));
        assert!(f.iter().any(|f| f.rule == "L2-RAW"));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn l2_flow_direct_and_param() {
        let f = run(
            "fn leak(mac_key: &Secret<[u8; 32]>) { println!(\"{:?}\", mac_key); }",
            "scope L2 src/**",
        );
        assert!(f.iter().any(|f| f.rule == "L2-FLOW"));
    }

    #[test]
    fn l3_eq_in_verify() {
        let f = run(
            "fn verify_tag(a: &[u8], b: &[u8]) -> bool { if a.len() != b.len() { return false; } a == b }",
            "scope L3 src/**",
        );
        // len compare exempt; `a == b` flagged once.
        assert_eq!(f.iter().filter(|f| f.rule == "L3-EQ").count(), 1);
    }

    #[test]
    fn l3_ct_discipline() {
        let bad = run(
            "fn ct_bad(a: &[u8], b: &[u8]) -> bool { for i in 0..a.len() { if a[i] != b[i] { return false; } } true }",
            "scope L3 src/**",
        );
        assert!(bad.iter().any(|f| f.rule == "L3-CT"));
        let good = run(
            "fn ct_eq(a: &[u8], b: &[u8]) -> bool { let mut acc = a.len() ^ b.len(); for i in 0..a.len().max(b.len()) { let x = a.get(i).copied().unwrap_or(0); let y = b.get(i).copied().unwrap_or(0); acc |= usize::from(x ^ y); } acc == 0 }",
            "scope L3 src/**",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn l4_flags_nondeterminism() {
        let f = run(
            "use std::collections::HashMap;\nfn f() { let t = Instant::now(); let r = thread_rng(); }",
            "scope L4 src/**",
        );
        assert!(f.iter().any(|f| f.rule == "L4-HASH"));
        assert!(f.iter().any(|f| f.rule == "L4-TIME"));
        assert!(f.iter().any(|f| f.rule == "L4-RNG"));
    }

    #[test]
    fn allowlist_suppresses() {
        let mut cfg = Config::parse_conf("scope L1 src/**").unwrap();
        cfg.parse_allowlist("L1-PANIC src/x.rs # audited\n")
            .unwrap();
        let files = vec![(
            "src/x.rs".to_string(),
            parse("fn f(v: Option<u8>) { v.unwrap(); }"),
        )];
        let graph = CallGraph::build(&files);
        assert!(check_all(&files, &cfg, &graph).is_empty());
    }
}

//! End-to-end analyzer tests: the seeded-violations fixture must
//! produce exactly the pinned finding set (every rule family fires at
//! the expected `file:line`), and the real workspace must analyze
//! clean under the embedded default scopes plus the checked-in
//! allowlist.

use std::path::{Path, PathBuf};

use gkap_analyze::{analyze_root, Config};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace two levels up")
        .to_path_buf()
}

/// The complete expected finding set for the fixture, sorted the way
/// the analyzer reports: by (file, line, rule). A missing entry means
/// a rule stopped firing; an extra entry means a false positive crept
/// in. Either way the diff in the assertion message is the fix list.
const EXPECTED: &[(&str, &str, u32)] = &[
    ("L3-EQ", "src/ct.rs", 7),
    ("L3-CT", "src/ct.rs", 12),
    ("L3-CT", "src/ct.rs", 14),
    ("L1-PANIC", "src/protocol.rs", 4),
    ("L1-PANIC", "src/protocol.rs", 5),
    ("L1-PANIC", "src/protocol.rs", 7),
    ("L1-INDEX", "src/protocol.rs", 9),
    ("L2-RAW", "src/secrets.rs", 3),
    ("L2-DERIVE", "src/secrets.rs", 8),
    ("L2-RAW", "src/secrets.rs", 8),
    ("L2-FLOW", "src/secrets.rs", 12),
    ("L2-FLOW", "src/secrets.rs", 13),
    ("L4-HASH", "src/sim.rs", 3),
    ("L4-HASH", "src/sim.rs", 5),
    ("L4-TIME", "src/sim.rs", 6),
    ("L4-RNG", "src/sim.rs", 8),
];

#[test]
fn fixture_produces_exactly_the_seeded_findings() {
    let root = fixture_root();
    let conf = std::fs::read_to_string(root.join("analyze.conf")).expect("fixture analyze.conf");
    let cfg = Config::parse_conf(&conf).expect("fixture config parses");
    let findings = analyze_root(&root, &cfg).expect("fixture analyzes");
    let got: Vec<(String, String, u32)> = findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect();
    let want: Vec<(String, String, u32)> = EXPECTED
        .iter()
        .map(|&(r, f, l)| (r.to_string(), f.to_string(), l))
        .collect();
    assert_eq!(
        got,
        want,
        "fixture findings drifted; full report:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_family_fires_on_the_fixture() {
    // Redundant with the exact pin above, but fails with a clearer
    // message if a whole family is disabled by a scope regression.
    let rules: std::collections::BTreeSet<&str> = EXPECTED.iter().map(|&(r, _, _)| r).collect();
    for family in [
        "L1-PANIC",
        "L1-INDEX",
        "L2-DERIVE",
        "L2-RAW",
        "L2-FLOW",
        "L3-EQ",
        "L3-CT",
        "L4-HASH",
        "L4-TIME",
        "L4-RNG",
    ] {
        assert!(rules.contains(family), "fixture does not seed {family}");
    }
}

#[test]
fn workspace_analyzes_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root resolution broke: {}",
        root.display()
    );
    let mut cfg = Config::workspace_default();
    let allow = std::fs::read_to_string(root.join("analyze.allow")).expect("analyze.allow");
    cfg.parse_allowlist(&allow).expect("allowlist parses");
    let findings = analyze_root(&root, &cfg).expect("workspace analyzes");
    assert!(
        findings.is_empty(),
        "the workspace must stay analyzer-clean; burn these down or allowlist with a reason:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

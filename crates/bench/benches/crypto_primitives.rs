//! Criterion benchmarks of the real cryptographic primitives — the
//! host-machine analogue of the paper's platform calibration (§6.1.1:
//! per-exponentiation and RSA sign/verify costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gkap_bignum::{prime, Montgomery, RandomSource, SplitMix64, Ubig};
use gkap_crypto::aes::ctr_xor;
use gkap_crypto::dh::DhGroup;
use gkap_crypto::hmac::hmac_sha256;
use gkap_crypto::rsa::RsaPrivateKey;
use gkap_crypto::sha::{Digest, Sha1, Sha256};

fn bench_modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("modexp");
    for (label, dh) in [
        ("512", DhGroup::modp_512()),
        ("768", DhGroup::modp_768()),
        ("1024", DhGroup::modp_1024()),
        ("2048", DhGroup::modp_2048()),
    ] {
        let mut rng = SplitMix64::new(42);
        let e = dh.random_exponent(&mut rng);
        group.bench_function(BenchmarkId::new("g^x mod p", label), |b| {
            b.iter(|| std::hint::black_box(dh.exp_g(&e)))
        });
    }
    group.finish();
}

/// The dedicated squaring kernel against general multiplication: the
/// ~n²/2 partial-product saving should show as a 1.2–1.5× win.
fn bench_mont_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("mont_kernel");
    for bits in [512usize, 1024, 2048] {
        let mut rng = SplitMix64::new(11);
        let mut m = rng.next_ubig_exact_bits(bits);
        m.set_bit(0, true); // Montgomery needs an odd modulus
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let a = ctx.to_mont(&rng.next_ubig_exact_bits(bits - 1));
        let b_elem = ctx.to_mont(&rng.next_ubig_exact_bits(bits - 1));
        let mut out = a.clone();
        let mut scratch = ctx.scratch();
        group.bench_function(BenchmarkId::new("mont_mul", bits), |b| {
            b.iter(|| ctx.mont_mul(&a, &b_elem, &mut out, &mut scratch))
        });
        group.bench_function(BenchmarkId::new("mont_sqr", bits), |b| {
            b.iter(|| ctx.mont_sqr(&a, &mut out, &mut scratch))
        });
    }
    group.finish();
}

/// Fixed-base `g^x` (precomputed window table, no squarings) against
/// the variable-base sliding-window ladder.
fn bench_fixed_base(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_g");
    for (label, dh) in [
        ("512", DhGroup::modp_512()),
        ("1024", DhGroup::modp_1024()),
        ("2048", DhGroup::modp_2048()),
    ] {
        let mut rng = SplitMix64::new(42);
        let e = dh.random_exponent(&mut rng);
        group.bench_function(BenchmarkId::new("variable_base", label), |b| {
            b.iter(|| std::hint::black_box(dh.exp(dh.generator(), &e)))
        });
        group.bench_function(BenchmarkId::new("fixed_base", label), |b| {
            b.iter(|| std::hint::black_box(dh.exp_g(&e)))
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = SplitMix64::new(7);
    let key = RsaPrivateKey::generate(1024, 3, &mut rng);
    let msg = b"group key agreement protocol message";
    let sig = key.sign(msg);
    c.bench_function("rsa1024_sign_crt", |b| {
        b.iter(|| std::hint::black_box(key.sign(msg)))
    });
    c.bench_function("rsa1024_verify_e3", |b| {
        b.iter(|| key.public_key().verify(msg, &sig).expect("verifies"))
    });
}

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    c.bench_function("sha256_4k", |b| {
        b.iter(|| std::hint::black_box(Sha256::digest(&data)))
    });
    c.bench_function("sha1_4k", |b| {
        b.iter(|| std::hint::black_box(Sha1::digest(&data)))
    });
    c.bench_function("hmac_sha256_4k", |b| {
        b.iter(|| std::hint::black_box(hmac_sha256(b"key", &data)))
    });
}

fn bench_aes(c: &mut Criterion) {
    let key = [7u8; 16];
    let nonce = [9u8; 12];
    let data = vec![0x5au8; 4096];
    c.bench_function("aes128_ctr_4k", |b| {
        b.iter(|| std::hint::black_box(ctr_xor(&key, &nonce, 0, data.clone())))
    });
}

fn bench_primality(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let p256 = prime::random_prime(256, &mut rng);
    c.bench_function("miller_rabin_256bit_prime", |b| {
        let mut r = SplitMix64::new(4);
        b.iter(|| assert!(prime::is_prime(&p256, &mut r)))
    });
}

fn bench_bignum(c: &mut Criterion) {
    let mut rng = SplitMix64::new(5);
    let a = rng.next_ubig_exact_bits(2048);
    let b_ = rng.next_ubig_exact_bits(2048);
    let m = rng.next_ubig_exact_bits(1024);
    c.bench_function("ubig_mul_2048x2048", |bch| {
        bch.iter(|| std::hint::black_box(&a * &b_))
    });
    c.bench_function("ubig_divrem_4096/1024", |bch| {
        let prod = &a * &b_;
        bch.iter(|| std::hint::black_box(prod.div_rem(&m)))
    });
    let _ = Ubig::zero();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_modexp, bench_mont_kernels, bench_fixed_base, bench_rsa, bench_hashes,
        bench_aes, bench_primality, bench_bignum
}
criterion_main!(benches);

//! Criterion benchmarks of the protocol engines themselves (loopback
//! harness, real small-group cryptography): host-time cost of a join
//! and a leave per protocol — a sanity check that the engines scale as
//! Table 1 predicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_event");
    for kind in ProtocolKind::all() {
        for n in [8usize, 32] {
            group.bench_function(BenchmarkId::new(kind.name(), n), |b| {
                b.iter_with_setup(
                    || {
                        let ids: Vec<usize> = (0..n + 1).collect();
                        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
                        lb.bootstrap(&ids[..n], 42);
                        (lb, ids)
                    },
                    |(mut lb, ids)| {
                        lb.install_view(ids.clone(), vec![n], vec![]);
                        std::hint::black_box(lb.common_secret());
                    },
                )
            });
        }
    }
    group.finish();
}

fn bench_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("leave_event");
    for kind in ProtocolKind::all() {
        for n in [8usize, 32] {
            group.bench_function(BenchmarkId::new(kind.name(), n), |b| {
                b.iter_with_setup(
                    || {
                        let ids: Vec<usize> = (0..n).collect();
                        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
                        lb.bootstrap(&ids, 42);
                        lb
                    },
                    |mut lb| {
                        let leaver = n / 2;
                        let members: Vec<usize> = (0..n).filter(|&c| c != leaver).collect();
                        lb.install_view(members, vec![], vec![leaver]);
                        std::hint::black_box(lb.common_secret());
                    },
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join, bench_leave
}
criterion_main!(benches);

//! Criterion benchmarks of the simulation engine itself: host time to
//! run one full virtual experiment (formation + join) — keeps the
//! reproduction harness honest about its own cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gkap_core::experiment::{run_join, ExperimentConfig, SuiteKind};
use gkap_core::protocols::ProtocolKind;

fn bench_sim_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_join");
    for kind in [ProtocolKind::Tgdh, ProtocolKind::Bd] {
        for n in [10usize, 30] {
            group.bench_function(BenchmarkId::new(kind.name(), n), |b| {
                b.iter(|| {
                    let cfg = ExperimentConfig::lan(kind, SuiteKind::Sim512);
                    let outcome = run_join(&cfg, n);
                    assert!(outcome.ok);
                    std::hint::black_box(outcome.elapsed_ms)
                })
            });
        }
    }
    group.finish();
}

fn bench_sim_wan(c: &mut Criterion) {
    c.bench_function("simulated_wan_join_tgdh_20", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::wan(ProtocolKind::Tgdh, SuiteKind::Sim512);
            let outcome = run_join(&cfg, 20);
            assert!(outcome.ok);
            std::hint::black_box(outcome.elapsed_ms)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_join, bench_sim_wan
}
criterion_main!(benches);

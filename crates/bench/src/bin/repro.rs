//! `repro` — regenerates every table and figure of the paper (plus the
//! extension studies) from the simulation.
//!
//! ```text
//! cargo run --release -p gkap-bench --bin repro -- all
//! cargo run --release -p gkap-bench --bin repro -- fig11 --jobs 8
//! cargo run --release -p gkap-bench --bin repro -- trace-summary fig14
//! cargo run --release -p gkap-bench --bin repro -- trace fig14 --folded
//! cargo run --release -p gkap-bench --bin repro -- scale --groups 1000 --churn 0.05
//! cargo run --release -p gkap-bench --bin repro -- bench-diff base.json candidate.json
//! ```
//!
//! Output: aligned tables on stdout and CSV files under `results/`;
//! `--quiet` silences the tables (files are still written). `--jobs N`
//! fans the experiment grids across N worker threads (default: all
//! cores) — figure output is bit-identical to a serial run.
//!
//! Every command additionally writes a versioned **run manifest**
//! `results/RUN_<cmd>_<tag>.json` — git revision, full configuration,
//! wall vs virtual time, deterministic op counts and per-phase latency
//! histograms — and every invocation refreshes
//! `results/BENCH_perf.json` (now a v1 manifest that keeps the legacy
//! `jobs`/`reps`/`total_wall_s`/`steps` keys). `bench-diff` compares
//! two manifests with per-class thresholds and exits non-zero on
//! regression; `trace --folded` adds collapsed-stack (flamegraph)
//! output.
//!
//! Failures (an unwritable `results/` directory, a malformed flag, an
//! unknown protocol) exit non-zero with a one-line diagnostic — never
//! a panic.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use gkap_bench::{
    chaos, cli, diff, emit, figure_sizes, figures, loss_sweep, manifest::Manifest, micro, scale,
    trace, wan_sizes, write_output, Console,
};
use gkap_core::costs_table::render_table1;
use gkap_core::experiment::SuiteKind;
use gkap_gcs::testbed;
use gkap_telemetry::metrics::LogHistogram;

fn out_dir() -> PathBuf {
    PathBuf::from("results")
}

fn cmd_table1(con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    for (n, m, p) in [(20usize, 5usize, 5usize), (50, 10, 10)] {
        con.say(render_table1(n, m, p));
        man.add_count("harness/table1/tables", 1);
    }
    write_output(&out_dir(), "table1.txt", &render_table1(50, 10, 10))?;
    con.say("[written: results/table1.txt]");
    Ok(())
}

fn cmd_testbed(con: &mut Console) {
    let wan = testbed::wan();
    con.say("# Figure 13 — WAN testbed");
    for s in 0..wan.topology.site_count() {
        let machines = (0..wan.topology.machine_count())
            .filter(|&m| wan.topology.machine(m).site == s)
            .count();
        con.say(format!(
            "site {} = {:>4}: {machines} machines",
            s,
            wan.topology.site_name(s)
        ));
    }
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
        con.say(format!(
            "RTT {} – {}: {:.0} ms",
            wan.topology.site_name(a),
            wan.topology.site_name(b),
            wan.topology.site_latency(a, b).as_millis_f64() * 2.0
        ));
    }
}

fn cmd_microlan(con: &mut Console) {
    con.say("# §6.1.1 micro-parameters (LAN)");
    con.say(micro::render(&micro::lan_micro()));
}

fn cmd_microwan(con: &mut Console) {
    con.say("# §6.2.1 micro-parameters (WAN)");
    con.say(micro::render(&micro::wan_micro()));
}

fn cmd_fig11(reps: u32, jobs: usize, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let sizes = figure_sizes();
    for suite in [SuiteKind::Sim512, SuiteKind::Sim1024] {
        let fig = figures::fig11_join_lan(suite, &sizes, reps, jobs);
        let stem = match suite {
            SuiteKind::Sim512 => "fig11_join_lan_512",
            _ => "fig11_join_lan_1024",
        };
        emit(&fig, &out_dir(), stem, con, man)?;
    }
    Ok(())
}

fn cmd_fig12(reps: u32, jobs: usize, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let sizes = figure_sizes();
    for suite in [SuiteKind::Sim512, SuiteKind::Sim1024] {
        let fig = figures::fig12_leave_lan(suite, &sizes, reps, jobs);
        let stem = match suite {
            SuiteKind::Sim512 => "fig12_leave_lan_512",
            _ => "fig12_leave_lan_1024",
        };
        emit(&fig, &out_dir(), stem, con, man)?;
    }
    Ok(())
}

fn cmd_fig14(reps: u32, jobs: usize, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let sizes = wan_sizes();
    emit(
        &figures::fig14_join_wan(&sizes, reps, jobs),
        &out_dir(),
        "fig14_join_wan_512",
        con,
        man,
    )?;
    emit(
        &figures::fig14_leave_wan(&sizes, reps, jobs),
        &out_dir(),
        "fig14_leave_wan_512",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_partition_merge(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    let sizes: Vec<usize> = vec![4, 8, 12, 20, 30, 40, 50];
    emit(
        &figures::partition_figure(
            &testbed::lan(),
            "Extension — Partition (half the group), LAN, DH 512",
            &sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_partition_lan_512",
        con,
        man,
    )?;
    emit(
        &figures::merge_figure(
            &testbed::lan(),
            "Extension — Merge (two halves), LAN, DH 512",
            &sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_merge_lan_512",
        con,
        man,
    )?;
    let wan_sizes: Vec<usize> = vec![4, 8, 14, 26, 40];
    emit(
        &figures::partition_figure(
            &testbed::wan(),
            "Extension — Partition (half the group), WAN, DH 512",
            &wan_sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_partition_wan_512",
        con,
        man,
    )?;
    emit(
        &figures::merge_figure(
            &testbed::wan(),
            "Extension — Merge (two halves), WAN, DH 512",
            &wan_sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_merge_wan_512",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_crossover(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    let delays: Vec<u64> = vec![0, 5, 10, 20, 35, 50, 75, 100, 150, 200];
    emit(
        &figures::crossover_figure(20, &delays, reps, jobs),
        &out_dir(),
        "ext_crossover_join_n20",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_flow(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    let budgets: Vec<usize> = vec![1, 2, 5, 10, 20, 50];
    emit(
        &figures::flow_control_ablation(50, &budgets, reps, jobs),
        &out_dir(),
        "ablate_flow_bd_wan_n50",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_sponsor(con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    emit(
        &figures::sponsor_location_ablation(26),
        &out_dir(),
        "ablate_sponsor_wan_n26",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_tree(con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    emit(
        &figures::tree_shape_ablation(24, 30),
        &out_dir(),
        "ablate_tree_shape_n24",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_sig(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    emit(
        &figures::signature_scheme_ablation(26, reps, jobs),
        &out_dir(),
        "ablate_sig_join_n26",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_confirm(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    emit(
        &figures::key_confirmation_ablation(20, reps, jobs),
        &out_dir(),
        "ablate_confirm_join_n20",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_avl(con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    emit(
        &figures::avl_policy_ablation(20, 25),
        &out_dir(),
        "ablate_avl_policy_n20",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ablate_hetero(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    emit(
        &figures::hetero_machine_ablation(26, reps, jobs),
        &out_dir(),
        "ablate_hetero_join_n26",
        con,
        man,
    )?;
    Ok(())
}

fn cmd_ika(reps: u32, jobs: usize, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let sizes: Vec<usize> = vec![2, 4, 8, 13, 20, 30, 40, 50];
    emit(
        &figures::ika_figure(
            &testbed::lan(),
            "Extension — real initial key agreement, LAN, DH 512",
            &sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_ika_lan_512",
        con,
        man,
    )?;
    let wan_sizes: Vec<usize> = vec![2, 4, 8, 14, 26];
    emit(
        &figures::ika_figure(
            &testbed::wan(),
            "Extension — real initial key agreement, WAN, DH 512",
            &wan_sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_ika_wan_512",
        con,
        man,
    )?;
    Ok(())
}

/// `ext-scale`: the single-group size sweep (one group of up to 100
/// members). The multi-group workload lives under `scale`.
fn cmd_ext_scale(
    reps: u32,
    jobs: usize,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    let sizes: Vec<usize> = vec![10, 25, 50, 75, 100];
    emit(
        &figures::scale_figure(&sizes, reps, jobs),
        &out_dir(),
        "ext_scale_join_lan_512",
        con,
        man,
    )?;
    Ok(())
}

/// `scale`: the multi-group workload — N concurrent groups
/// partitioned over `--shards` independent rings, batched membership
/// churn, throughput/latency CSV per protocol. Bit-identical across
/// every `--jobs` x `--shards` combination, manifest body included;
/// per-shard busy and barrier-wait times land in the manifest
/// environment block.
fn cmd_scale(opts: &cli::CliOptions, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let protocol = match opts.protocol.as_deref() {
        Some(name) => Some(scale::parse_protocol(name).ok_or_else(|| {
            format!("unknown protocol: {name} (expected gdh, tgdh, str, bd or ckd)")
        })?),
        None => None,
    };
    let sopts = scale::ScaleOptions {
        groups: opts.groups,
        churn: opts.churn,
        window_ms: opts.window_ms,
        protocol,
        seed: opts.seed,
        jobs: opts.jobs,
        shards: opts.shards,
    };
    let outcome = scale::run_all_timed(&sopts);
    let rows = outcome.rows;
    man.set_shard_timing(sopts.shards.max(1), &outcome.shard_busy_ns);
    con.say(scale::scale_table(&sopts, &rows));
    let csv_name = format!("scale_g{}_s{}.csv", sopts.groups, sopts.seed);
    let path = write_output(&out_dir(), &csv_name, &scale::scale_csv(&sopts, &rows))?;
    con.say(format!("[written: {}]", path.display()));
    man.absorb(&scale::scale_manifest(&sopts, &rows));
    if let Some(row) = rows.iter().find(|r| !r.run.ok) {
        return Err(format!(
            "scale: {} left a group unkeyed or in error (see table)",
            row.protocol.name()
        ));
    }
    Ok(())
}

fn cmd_lossy(reps: u32, jobs: usize, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let pcts: Vec<u32> = vec![0, 1, 2, 5, 10, 20];
    emit(
        &figures::lossy_links_figure(20, &pcts, reps, jobs),
        &out_dir(),
        "ext_lossy_wan_join_n20",
        con,
        man,
    )?;
    Ok(())
}

/// `trace <figure>` / `trace-summary <figure>`: traced runs with the
/// per-protocol latency breakdown. `full` additionally writes one
/// JSONL event log per protocol × event; `folded` writes collapsed
/// stacks for flamegraph rendering.
fn cmd_trace(
    figure: &str,
    full: bool,
    folded: bool,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    let n = 50;
    let Some(rows) = trace::trace_figure(figure, n) else {
        // A usage error, not a runtime failure: exit 2 like unknown
        // commands and malformed flags do.
        eprintln!(
            "repro: unknown figure for trace: {figure} (expected fig11, fig12, fig14 or crash)"
        );
        std::process::exit(2);
    };
    if full {
        for row in &rows {
            let name = format!(
                "trace_{figure}_{}_{}.jsonl",
                row.protocol.to_lowercase(),
                row.event
            );
            let jsonl = gkap_telemetry::jsonl::render_events(&row.run.events);
            let path = write_output(&out_dir(), &name, &jsonl)?;
            con.say(format!(
                "[written: {} ({} events)]",
                path.display(),
                row.run.events.len()
            ));
        }
    }
    if folded {
        let name = format!("trace_{figure}.folded");
        let path = write_output(&out_dir(), &name, &trace::folded_stacks(&rows))?;
        con.say(format!("[written: {} (collapsed stacks)]", path.display()));
    }
    // Manifest: replay each row's event log through a fresh recorder to
    // rebuild its typed hub, then label every path with protocol and
    // event so the cells stay distinct (`crypto/GDH/join/exp`).
    for row in &rows {
        let mut rec = gkap_telemetry::Recorder::default();
        for e in &row.run.events {
            rec.push(e.clone());
        }
        let cell = |name: &str| format!("{}/{}/{name}", row.protocol, row.event);
        for (k, v) in rec.hub().counters() {
            man.add_count(&format!("{}/{}", k.layer.as_str(), cell(k.name)), v);
        }
        for (k, h) in rec.hub().histograms() {
            man.put_histogram(
                &format!("{}/{}", k.layer.as_str(), cell(k.name)),
                h.summary(),
            );
        }
        let b = &row.run.breakdown;
        for (name, v) in [
            ("elapsed_ms", b.elapsed_ms),
            ("membership_ms", b.membership_ms),
            ("rounds_ms", b.rounds_ms),
            ("crypto_ms", b.crypto_ms),
            ("network_ms", b.network_ms),
            (
                "recovery_ms",
                trace::recovery_ms(&row.run.events).min(b.elapsed_ms),
            ),
        ] {
            man.gauge_max(&format!("harness/{}", cell(name)), v);
        }
        man.add_count(
            &format!("harness/{}", cell("events")),
            row.run.events.len() as u64,
        );
        man.virtual_ms += b.elapsed_ms;
    }
    con.say(trace::summary_table(figure, &rows));
    let csv_name = format!("trace_summary_{figure}.csv");
    let path = write_output(&out_dir(), &csv_name, &trace::summary_csv(figure, &rows))?;
    con.say(format!("[written: {}]", path.display()));
    Ok(())
}

/// `chaos`: a seeded randomized fault campaign across all five
/// protocols. Exits non-zero when any invariant is violated, printing
/// the minimized failing schedule so CI logs carry the reproduction.
fn cmd_chaos(seed: u64, runs: u32, con: &mut Console, man: &mut Manifest) -> Result<(), String> {
    let cfg = chaos::ChaosConfig::default();
    let factory = chaos::default_factory();
    let report = chaos::run_campaign(seed, runs, &cfg, &factory, con);
    con.say(chaos::render_summary(&report));
    let csv_name = format!("chaos_seed{seed}.csv");
    let path = write_output(&out_dir(), &csv_name, &chaos::campaign_csv(&report))?;
    con.say(format!("[written: {}]", path.display()));
    man.set_config("chaos_seed", seed);
    man.set_config("chaos_runs", runs);
    man.add_count("harness/chaos/rows", report.rows.len() as u64);
    man.add_count("harness/chaos/failures", report.failures.len() as u64);
    let mut recovery = LogHistogram::default();
    let mut elapsed = LogHistogram::default();
    for row in &report.rows {
        man.add_count(
            &format!("harness/chaos/{}/faults", row.protocol),
            row.faults as u64,
        );
        recovery.record(row.recovery_ms);
        elapsed.record(row.elapsed_ms);
        man.virtual_ms += row.elapsed_ms;
    }
    man.put_histogram("harness/chaos/recovery_ms", recovery.summary());
    man.put_histogram("harness/chaos/elapsed_ms", elapsed.summary());
    if !report.passed() {
        for f in &report.failures {
            con.say(chaos::render_failure(f));
        }
        con.say(format!(
            "chaos: {} failing run(s) — replay with `repro chaos --seed {seed} --runs {runs}`",
            report.failures.len()
        ));
        std::process::exit(1);
    }
    Ok(())
}

/// `chaos --loss-sweep`: loss rates × {FEC, retransmission-only} ×
/// protocols on both testbeds. Exits non-zero when any cell misses an
/// invariant (liveness, view synchrony, key convergence).
fn cmd_loss_sweep(
    opts: &cli::CliOptions,
    con: &mut Console,
    man: &mut Manifest,
) -> Result<(), String> {
    let protocol = match opts.protocol.as_deref() {
        Some(name) => Some(scale::parse_protocol(name).ok_or_else(|| {
            format!("unknown protocol: {name} (expected gdh, tgdh, str, bd or ckd)")
        })?),
        None => None,
    };
    let sopts = loss_sweep::SweepOptions {
        seed: opts.seed,
        jobs: opts.jobs,
        protocol,
    };
    let rows = loss_sweep::run_sweep(&sopts);
    con.say(loss_sweep::sweep_table(sopts.seed, &rows));
    let csv_name = format!("chaos_loss_s{}.csv", sopts.seed);
    let path = write_output(
        &out_dir(),
        &csv_name,
        &loss_sweep::sweep_csv(sopts.seed, &rows),
    )?;
    con.say(format!("[written: {}]", path.display()));
    man.absorb(&loss_sweep::sweep_manifest(&sopts, &rows));
    let failed: Vec<&loss_sweep::SweepRow> = rows.iter().filter(|r| !r.converged).collect();
    if !failed.is_empty() {
        for r in &failed {
            con.say(format!(
                "FAILED: {} {}% {} {} — invariant violated (replay with \
                 `repro chaos --loss-sweep --seed {}`)",
                r.net,
                r.loss_pct,
                r.mode.name(),
                r.protocol,
                sopts.seed
            ));
        }
        std::process::exit(1);
    }
    Ok(())
}

/// `bench-diff <baseline> <candidate>`: the perf-regression gate.
/// Exit codes: 0 pass, 1 regression(s), 2 usage/IO error.
fn cmd_bench_diff(opts: &cli::CliOptions, con: &mut Console) -> Result<bool, String> {
    let (Some(base_path), Some(cand_path)) = (opts.figure.as_deref(), opts.arg2.as_deref()) else {
        return Err(
            "bench-diff needs two manifest paths: bench-diff <baseline.json> <candidate.json>"
                .to_string(),
        );
    };
    let base = Manifest::read_from(Path::new(base_path))?;
    let cand = Manifest::read_from(Path::new(cand_path))?;
    let report = diff::diff(&base, &cand, &diff::Thresholds::default());
    con.say(diff::render(base_path, cand_path, &report));
    Ok(report.passed())
}

/// One timed step of the invocation, for `results/BENCH_perf.json`.
struct PerfEntry {
    name: String,
    wall_s: f64,
    serial_equivalent_s: f64,
}

/// Renders the perf record as a v1 run manifest that keeps the legacy
/// top-level keys (`jobs`, `reps`, `total_wall_s`, `steps`) so
/// existing consumers keep parsing it.
fn perf_manifest(opts: &cli::CliOptions, total_wall_s: f64, steps: &[PerfEntry]) -> Manifest {
    let mut man = Manifest::new("perf", &opts.cmd);
    man.set_config("reps", opts.reps);
    let mut wall = LogHistogram::default();
    for e in steps {
        man.add_count(&format!("harness/steps/{}", e.name), 1);
        wall.record(e.wall_s * 1000.0);
    }
    if wall.count() > 0 {
        man.put_histogram("harness/step_wall_ms", wall.summary());
    }
    man.fill_environment(opts.jobs, total_wall_s);
    let mut steps_json = String::from("[");
    for (i, e) in steps.iter().enumerate() {
        let comma = if i + 1 < steps.len() { "," } else { "" };
        let _ = write!(
            steps_json,
            "\n    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"serial_equivalent_s\": {:.3}}}{comma}",
            e.name, e.wall_s, e.serial_equivalent_s
        );
    }
    steps_json.push_str("\n  ]");
    man.legacy.insert("jobs".into(), opts.jobs.to_string());
    man.legacy.insert("reps".into(), opts.reps.to_string());
    man.legacy
        .insert("total_wall_s".into(), format!("{total_wall_s:.3}"));
    man.legacy.insert("steps".into(), steps_json);
    man
}

/// The sub-steps `all` runs, in order.
const ALL_STEPS: [&str; 20] = [
    "table1",
    "testbed",
    "microlan",
    "microwan",
    "fig11",
    "fig12",
    "fig14",
    "partition-merge",
    "crossover",
    "ablate-flow",
    "ablate-sponsor",
    "ablate-tree",
    "ablate-sig",
    "ablate-avl",
    "lossy",
    "ablate-hetero",
    "ablate-confirm",
    "ika",
    "ext-scale",
    "scale",
];

/// The manifest tag for a command: the workload parameters that
/// distinguish runs of the same command.
fn manifest_tag(cmd: &str, opts: &cli::CliOptions) -> String {
    match cmd {
        "scale" => format!("g{}_s{}", opts.groups, opts.seed),
        "chaos" if opts.loss_sweep => format!("loss_s{}", opts.seed),
        "chaos" => format!("s{}_r{}", opts.seed, opts.runs),
        "trace" | "trace-summary" => opts.figure.clone().unwrap_or_else(|| "fig14".into()),
        _ => format!("r{}", opts.reps),
    }
}

/// Runs one command, timing it, writing its run manifest, and
/// recording a perf entry. Returns `Ok(false)` for unknown commands,
/// `Err` with a one-line diagnostic on failure.
fn run_step(
    cmd: &str,
    opts: &cli::CliOptions,
    perf: &mut Vec<PerfEntry>,
    con: &mut Console,
) -> Result<bool, String> {
    let (reps, jobs) = (opts.reps, opts.jobs);
    gkap_core::par::take_busy_nanos(); // reset the busy-time counter
    let mut man = Manifest::new(cmd, &manifest_tag(cmd, opts));
    man.set_config("reps", reps);
    let man = &mut man;
    let t0 = std::time::Instant::now();
    match cmd {
        "table1" => cmd_table1(con, man)?,
        "testbed" => cmd_testbed(con),
        "microlan" => cmd_microlan(con),
        "microwan" => cmd_microwan(con),
        "fig11" => cmd_fig11(reps, jobs, con, man)?,
        "fig12" => cmd_fig12(reps, jobs, con, man)?,
        "fig14" => cmd_fig14(reps, jobs, con, man)?,
        "partition-merge" => cmd_partition_merge(reps, jobs, con, man)?,
        "crossover" => cmd_crossover(reps, jobs, con, man)?,
        "ablate-flow" => cmd_ablate_flow(reps, jobs, con, man)?,
        "ablate-sponsor" => cmd_ablate_sponsor(con, man)?,
        "ablate-tree" => cmd_ablate_tree(con, man)?,
        "ablate-sig" => cmd_ablate_sig(reps, jobs, con, man)?,
        "ablate-avl" => cmd_ablate_avl(con, man)?,
        "ablate-confirm" => cmd_ablate_confirm(reps, jobs, con, man)?,
        "lossy" => cmd_lossy(reps, jobs, con, man)?,
        "ika" => cmd_ika(reps, jobs, con, man)?,
        "ext-scale" => cmd_ext_scale(reps, jobs, con, man)?,
        "scale" => cmd_scale(opts, con, man)?,
        "ablate-hetero" => cmd_ablate_hetero(reps, jobs, con, man)?,
        "trace" | "trace-summary" => {
            let figure = opts.figure.as_deref().unwrap_or("fig14");
            cmd_trace(figure, cmd == "trace", opts.folded, con, man)?;
        }
        "chaos" if opts.loss_sweep => cmd_loss_sweep(opts, con, man)?,
        "chaos" => cmd_chaos(opts.seed, opts.runs, con, man)?,
        _ => return Ok(false),
    }
    let wall_s = t0.elapsed().as_secs_f64();
    // Wall-clock busy time, not CPU time: `run_indexed` brackets each
    // cell with `Instant`, so this is the serial-equivalent cost only
    // while workers hold their own core. With `--jobs` now clamped to
    // the hardware the usual overstatement (oversubscription) cannot
    // happen, but other processes competing for the machine can still
    // inflate it — treat it as an upper bound on compute.
    let serial_equivalent_s = gkap_core::par::take_busy_nanos() as f64 / 1e9;
    man.fill_environment(jobs, wall_s);
    let man_path = man.write_to(&out_dir())?;
    con.note(format!("[manifest: {}]", man_path.display()));
    con.note(format!(
        "[{cmd}: wall {wall_s:.1}s, serial-equivalent {serial_equivalent_s:.1}s]"
    ));
    perf.push(PerfEntry {
        name: cmd.to_string(),
        wall_s,
        serial_equivalent_s,
    });
    Ok(true)
}

const USAGE: &str = "commands: all table1 testbed microlan microwan fig11 fig12 fig14 \
     partition-merge crossover ablate-flow ablate-sponsor ablate-tree ablate-sig ablate-avl \
     ablate-hetero ablate-confirm lossy ika ext-scale trace <figure> [--folded] \
     trace-summary <figure> chaos [--seed N] [--runs N] [--loss-sweep [--protocol NAME]] \
     scale [--groups N] [--churn R] [--window MS] [--protocol NAME] [--seed N] [--shards N] \
     bench-diff <baseline.json> <candidate.json> \
     [--reps N] [--jobs N] [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("repro: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut con = if opts.quiet {
        Console::quiet()
    } else {
        Console::stdio()
    };
    let con = &mut con;

    // bench-diff is a pure comparison — no workload, no perf record.
    if opts.cmd == "bench-diff" {
        match cmd_bench_diff(&opts, con) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(msg) => {
                eprintln!("repro: {msg}");
                std::process::exit(2);
            }
        }
    }

    let mut perf: Vec<PerfEntry> = Vec::new();
    let t0 = std::time::Instant::now();
    let outcome = if opts.cmd == "all" {
        let mut res = Ok(true);
        for cmd in ALL_STEPS {
            res = run_step(cmd, &opts, &mut perf, con);
            if res.is_err() {
                break;
            }
        }
        res
    } else {
        run_step(&opts.cmd, &opts, &mut perf, con)
    };
    match outcome {
        Ok(true) => {}
        Ok(false) => {
            con.note(format!("unknown command: {}", opts.cmd));
            con.note(USAGE);
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(1);
        }
    }
    let total_wall_s = t0.elapsed().as_secs_f64();

    let perf_path = match write_output(
        &out_dir(),
        "BENCH_perf.json",
        &perf_manifest(&opts, total_wall_s, &perf).to_json(),
    ) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(1);
        }
    };
    con.note(format!("[written: {}]", perf_path.display()));
    con.note(format!(
        "[repro {} done in {total_wall_s:.1}s with --jobs {}]",
        opts.cmd, opts.jobs
    ));
}

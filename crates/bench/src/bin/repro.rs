//! `repro` — regenerates every table and figure of the paper (plus the
//! extension studies) from the simulation.
//!
//! ```text
//! cargo run --release -p gkap-bench --bin repro -- all
//! cargo run --release -p gkap-bench --bin repro -- fig11 --jobs 8
//! cargo run --release -p gkap-bench --bin repro -- trace-summary fig14
//! cargo run --release -p gkap-bench --bin repro -- scale --groups 1000 --churn 0.05
//! ```
//!
//! Output: aligned tables on stdout and CSV files under `results/`;
//! `--quiet` silences the tables (files are still written). `--jobs N`
//! fans the experiment grids across N worker threads (default: all
//! cores) — figure output is bit-identical to a serial run. Every
//! invocation also writes `results/BENCH_perf.json` with per-step wall
//! and serial-equivalent times. The `trace`/`trace-summary` commands
//! additionally export per-run telemetry: a latency-breakdown table +
//! CSV, and (for `trace`) one JSONL event log per protocol × event.
//!
//! Failures (an unwritable `results/` directory, a malformed flag, an
//! unknown protocol) exit non-zero with a one-line diagnostic — never
//! a panic.

use std::fmt::Write as _;
use std::path::PathBuf;

use gkap_bench::{
    chaos, cli, emit, figure_sizes, figures, micro, scale, trace, wan_sizes, write_output, Console,
};
use gkap_core::costs_table::render_table1;
use gkap_core::experiment::SuiteKind;
use gkap_gcs::testbed;

fn out_dir() -> PathBuf {
    PathBuf::from("results")
}

fn cmd_table1(con: &mut Console) -> Result<(), String> {
    for (n, m, p) in [(20usize, 5usize, 5usize), (50, 10, 10)] {
        con.say(render_table1(n, m, p));
    }
    write_output(&out_dir(), "table1.txt", &render_table1(50, 10, 10))?;
    con.say("[written: results/table1.txt]");
    Ok(())
}

fn cmd_testbed(con: &mut Console) {
    let wan = testbed::wan();
    con.say("# Figure 13 — WAN testbed");
    for s in 0..wan.topology.site_count() {
        let machines = (0..wan.topology.machine_count())
            .filter(|&m| wan.topology.machine(m).site == s)
            .count();
        con.say(format!(
            "site {} = {:>4}: {machines} machines",
            s,
            wan.topology.site_name(s)
        ));
    }
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
        con.say(format!(
            "RTT {} – {}: {:.0} ms",
            wan.topology.site_name(a),
            wan.topology.site_name(b),
            wan.topology.site_latency(a, b).as_millis_f64() * 2.0
        ));
    }
}

fn cmd_microlan(con: &mut Console) {
    con.say("# §6.1.1 micro-parameters (LAN)");
    con.say(micro::render(&micro::lan_micro()));
}

fn cmd_microwan(con: &mut Console) {
    con.say("# §6.2.1 micro-parameters (WAN)");
    con.say(micro::render(&micro::wan_micro()));
}

fn cmd_fig11(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let sizes = figure_sizes();
    for suite in [SuiteKind::Sim512, SuiteKind::Sim1024] {
        let fig = figures::fig11_join_lan(suite, &sizes, reps, jobs);
        let stem = match suite {
            SuiteKind::Sim512 => "fig11_join_lan_512",
            _ => "fig11_join_lan_1024",
        };
        emit(&fig, &out_dir(), stem, con)?;
    }
    Ok(())
}

fn cmd_fig12(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let sizes = figure_sizes();
    for suite in [SuiteKind::Sim512, SuiteKind::Sim1024] {
        let fig = figures::fig12_leave_lan(suite, &sizes, reps, jobs);
        let stem = match suite {
            SuiteKind::Sim512 => "fig12_leave_lan_512",
            _ => "fig12_leave_lan_1024",
        };
        emit(&fig, &out_dir(), stem, con)?;
    }
    Ok(())
}

fn cmd_fig14(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let sizes = wan_sizes();
    emit(
        &figures::fig14_join_wan(&sizes, reps, jobs),
        &out_dir(),
        "fig14_join_wan_512",
        con,
    )?;
    emit(
        &figures::fig14_leave_wan(&sizes, reps, jobs),
        &out_dir(),
        "fig14_leave_wan_512",
        con,
    )?;
    Ok(())
}

fn cmd_partition_merge(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let sizes: Vec<usize> = vec![4, 8, 12, 20, 30, 40, 50];
    emit(
        &figures::partition_figure(
            &testbed::lan(),
            "Extension — Partition (half the group), LAN, DH 512",
            &sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_partition_lan_512",
        con,
    )?;
    emit(
        &figures::merge_figure(
            &testbed::lan(),
            "Extension — Merge (two halves), LAN, DH 512",
            &sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_merge_lan_512",
        con,
    )?;
    let wan_sizes: Vec<usize> = vec![4, 8, 14, 26, 40];
    emit(
        &figures::partition_figure(
            &testbed::wan(),
            "Extension — Partition (half the group), WAN, DH 512",
            &wan_sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_partition_wan_512",
        con,
    )?;
    emit(
        &figures::merge_figure(
            &testbed::wan(),
            "Extension — Merge (two halves), WAN, DH 512",
            &wan_sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_merge_wan_512",
        con,
    )?;
    Ok(())
}

fn cmd_crossover(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let delays: Vec<u64> = vec![0, 5, 10, 20, 35, 50, 75, 100, 150, 200];
    emit(
        &figures::crossover_figure(20, &delays, reps, jobs),
        &out_dir(),
        "ext_crossover_join_n20",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_flow(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let budgets: Vec<usize> = vec![1, 2, 5, 10, 20, 50];
    emit(
        &figures::flow_control_ablation(50, &budgets, reps, jobs),
        &out_dir(),
        "ablate_flow_bd_wan_n50",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_sponsor(con: &mut Console) -> Result<(), String> {
    emit(
        &figures::sponsor_location_ablation(26),
        &out_dir(),
        "ablate_sponsor_wan_n26",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_tree(con: &mut Console) -> Result<(), String> {
    emit(
        &figures::tree_shape_ablation(24, 30),
        &out_dir(),
        "ablate_tree_shape_n24",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_sig(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    emit(
        &figures::signature_scheme_ablation(26, reps, jobs),
        &out_dir(),
        "ablate_sig_join_n26",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_confirm(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    emit(
        &figures::key_confirmation_ablation(20, reps, jobs),
        &out_dir(),
        "ablate_confirm_join_n20",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_avl(con: &mut Console) -> Result<(), String> {
    emit(
        &figures::avl_policy_ablation(20, 25),
        &out_dir(),
        "ablate_avl_policy_n20",
        con,
    )?;
    Ok(())
}

fn cmd_ablate_hetero(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    emit(
        &figures::hetero_machine_ablation(26, reps, jobs),
        &out_dir(),
        "ablate_hetero_join_n26",
        con,
    )?;
    Ok(())
}

fn cmd_ika(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let sizes: Vec<usize> = vec![2, 4, 8, 13, 20, 30, 40, 50];
    emit(
        &figures::ika_figure(
            &testbed::lan(),
            "Extension — real initial key agreement, LAN, DH 512",
            &sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_ika_lan_512",
        con,
    )?;
    let wan_sizes: Vec<usize> = vec![2, 4, 8, 14, 26];
    emit(
        &figures::ika_figure(
            &testbed::wan(),
            "Extension — real initial key agreement, WAN, DH 512",
            &wan_sizes,
            reps,
            jobs,
        ),
        &out_dir(),
        "ext_ika_wan_512",
        con,
    )?;
    Ok(())
}

/// `ext-scale`: the single-group size sweep (one group of up to 100
/// members). The multi-group workload lives under `scale`.
fn cmd_ext_scale(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let sizes: Vec<usize> = vec![10, 25, 50, 75, 100];
    emit(
        &figures::scale_figure(&sizes, reps, jobs),
        &out_dir(),
        "ext_scale_join_lan_512",
        con,
    )?;
    Ok(())
}

/// `scale`: the multi-group workload — N concurrent groups on one
/// ring, batched membership churn, throughput/latency CSV per
/// protocol. Bit-identical across `--jobs` values.
fn cmd_scale(opts: &cli::CliOptions, con: &mut Console) -> Result<(), String> {
    let protocol = match opts.protocol.as_deref() {
        Some(name) => Some(scale::parse_protocol(name).ok_or_else(|| {
            format!("unknown protocol: {name} (expected gdh, tgdh, str, bd or ckd)")
        })?),
        None => None,
    };
    let sopts = scale::ScaleOptions {
        groups: opts.groups,
        churn: opts.churn,
        window_ms: opts.window_ms,
        protocol,
        seed: opts.seed,
        jobs: opts.jobs,
    };
    let rows = scale::run_all(&sopts);
    con.say(scale::scale_table(&sopts, &rows));
    let csv_name = format!("scale_g{}_s{}.csv", sopts.groups, sopts.seed);
    let path = write_output(&out_dir(), &csv_name, &scale::scale_csv(&sopts, &rows))?;
    con.say(format!("[written: {}]", path.display()));
    if let Some(row) = rows.iter().find(|r| !r.run.ok) {
        return Err(format!(
            "scale: {} left a group unkeyed or in error (see table)",
            row.protocol.name()
        ));
    }
    Ok(())
}

fn cmd_lossy(reps: u32, jobs: usize, con: &mut Console) -> Result<(), String> {
    let pcts: Vec<u32> = vec![0, 1, 2, 5, 10, 20];
    emit(
        &figures::lossy_links_figure(20, &pcts, reps, jobs),
        &out_dir(),
        "ext_lossy_wan_join_n20",
        con,
    )?;
    Ok(())
}

/// `trace <figure>` / `trace-summary <figure>`: traced runs with the
/// per-protocol latency breakdown. `full` additionally writes one
/// JSONL event log per protocol × event.
fn cmd_trace(figure: &str, full: bool, con: &mut Console) -> Result<(), String> {
    let n = 50;
    let Some(rows) = trace::trace_figure(figure, n) else {
        // A usage error, not a runtime failure: exit 2 like unknown
        // commands and malformed flags do.
        eprintln!(
            "repro: unknown figure for trace: {figure} (expected fig11, fig12, fig14 or crash)"
        );
        std::process::exit(2);
    };
    if full {
        for row in &rows {
            let name = format!(
                "trace_{figure}_{}_{}.jsonl",
                row.protocol.to_lowercase(),
                row.event
            );
            let jsonl = gkap_telemetry::jsonl::render_events(&row.run.events);
            let path = write_output(&out_dir(), &name, &jsonl)?;
            con.say(format!(
                "[written: {} ({} events)]",
                path.display(),
                row.run.events.len()
            ));
        }
    }
    con.say(trace::summary_table(figure, &rows));
    let csv_name = format!("trace_summary_{figure}.csv");
    let path = write_output(&out_dir(), &csv_name, &trace::summary_csv(figure, &rows))?;
    con.say(format!("[written: {}]", path.display()));
    Ok(())
}

/// `chaos`: a seeded randomized fault campaign across all five
/// protocols. Exits non-zero when any invariant is violated, printing
/// the minimized failing schedule so CI logs carry the reproduction.
fn cmd_chaos(seed: u64, runs: u32, con: &mut Console) -> Result<(), String> {
    let cfg = chaos::ChaosConfig::default();
    let factory = chaos::default_factory();
    let report = chaos::run_campaign(seed, runs, &cfg, &factory, con);
    con.say(chaos::render_summary(&report));
    let csv_name = format!("chaos_seed{seed}.csv");
    let path = write_output(&out_dir(), &csv_name, &chaos::campaign_csv(&report))?;
    con.say(format!("[written: {}]", path.display()));
    if !report.passed() {
        for f in &report.failures {
            con.say(chaos::render_failure(f));
        }
        con.say(format!(
            "chaos: {} failing run(s) — replay with `repro chaos --seed {seed} --runs {runs}`",
            report.failures.len()
        ));
        std::process::exit(1);
    }
    Ok(())
}

/// One timed step of the invocation, for `results/BENCH_perf.json`.
struct PerfEntry {
    name: String,
    wall_s: f64,
    serial_equivalent_s: f64,
}

/// Renders the perf record by hand (the workspace vendors no JSON
/// serializer); names are fixed ASCII identifiers, so no escaping is
/// needed.
fn perf_json(jobs: usize, reps: u32, total_wall_s: f64, steps: &[PerfEntry]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"jobs\": {jobs},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"total_wall_s\": {total_wall_s:.3},");
    let _ = writeln!(s, "  \"steps\": [");
    for (i, e) in steps.iter().enumerate() {
        let comma = if i + 1 < steps.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"serial_equivalent_s\": {:.3}}}{comma}",
            e.name, e.wall_s, e.serial_equivalent_s
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// The sub-steps `all` runs, in order.
const ALL_STEPS: [&str; 20] = [
    "table1",
    "testbed",
    "microlan",
    "microwan",
    "fig11",
    "fig12",
    "fig14",
    "partition-merge",
    "crossover",
    "ablate-flow",
    "ablate-sponsor",
    "ablate-tree",
    "ablate-sig",
    "ablate-avl",
    "lossy",
    "ablate-hetero",
    "ablate-confirm",
    "ika",
    "ext-scale",
    "scale",
];

/// Runs one command, timing it and recording a perf entry. Returns
/// `Ok(false)` for unknown commands, `Err` with a one-line diagnostic
/// on failure.
fn run_step(
    cmd: &str,
    opts: &cli::CliOptions,
    perf: &mut Vec<PerfEntry>,
    con: &mut Console,
) -> Result<bool, String> {
    let (reps, jobs) = (opts.reps, opts.jobs);
    gkap_core::par::take_busy_nanos(); // reset the busy-time counter
    let t0 = std::time::Instant::now();
    match cmd {
        "table1" => cmd_table1(con)?,
        "testbed" => cmd_testbed(con),
        "microlan" => cmd_microlan(con),
        "microwan" => cmd_microwan(con),
        "fig11" => cmd_fig11(reps, jobs, con)?,
        "fig12" => cmd_fig12(reps, jobs, con)?,
        "fig14" => cmd_fig14(reps, jobs, con)?,
        "partition-merge" => cmd_partition_merge(reps, jobs, con)?,
        "crossover" => cmd_crossover(reps, jobs, con)?,
        "ablate-flow" => cmd_ablate_flow(reps, jobs, con)?,
        "ablate-sponsor" => cmd_ablate_sponsor(con)?,
        "ablate-tree" => cmd_ablate_tree(con)?,
        "ablate-sig" => cmd_ablate_sig(reps, jobs, con)?,
        "ablate-avl" => cmd_ablate_avl(con)?,
        "ablate-confirm" => cmd_ablate_confirm(reps, jobs, con)?,
        "lossy" => cmd_lossy(reps, jobs, con)?,
        "ika" => cmd_ika(reps, jobs, con)?,
        "ext-scale" => cmd_ext_scale(reps, jobs, con)?,
        "scale" => cmd_scale(opts, con)?,
        "ablate-hetero" => cmd_ablate_hetero(reps, jobs, con)?,
        "trace" | "trace-summary" => {
            let figure = opts.figure.as_deref().unwrap_or("fig14");
            cmd_trace(figure, cmd == "trace", con)?;
        }
        "chaos" => cmd_chaos(opts.seed, opts.runs, con)?,
        _ => return Ok(false),
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let serial_equivalent_s = gkap_core::par::take_busy_nanos() as f64 / 1e9;
    con.note(format!(
        "[{cmd}: wall {wall_s:.1}s, serial-equivalent {serial_equivalent_s:.1}s]"
    ));
    perf.push(PerfEntry {
        name: cmd.to_string(),
        wall_s,
        serial_equivalent_s,
    });
    Ok(true)
}

const USAGE: &str = "commands: all table1 testbed microlan microwan fig11 fig12 fig14 \
     partition-merge crossover ablate-flow ablate-sponsor ablate-tree ablate-sig ablate-avl \
     ablate-hetero ablate-confirm lossy ika ext-scale trace <figure> trace-summary <figure> \
     chaos [--seed N] [--runs N] \
     scale [--groups N] [--churn R] [--window MS] [--protocol NAME] [--seed N] \
     [--reps N] [--jobs N] [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("repro: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut con = if opts.quiet {
        Console::quiet()
    } else {
        Console::stdio()
    };
    let con = &mut con;
    let mut perf: Vec<PerfEntry> = Vec::new();

    let t0 = std::time::Instant::now();
    let outcome = if opts.cmd == "all" {
        let mut res = Ok(true);
        for cmd in ALL_STEPS {
            res = run_step(cmd, &opts, &mut perf, con);
            if res.is_err() {
                break;
            }
        }
        res
    } else {
        run_step(&opts.cmd, &opts, &mut perf, con)
    };
    match outcome {
        Ok(true) => {}
        Ok(false) => {
            con.note(format!("unknown command: {}", opts.cmd));
            con.note(USAGE);
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(1);
        }
    }
    let total_wall_s = t0.elapsed().as_secs_f64();

    let perf_path = match write_output(
        &out_dir(),
        "BENCH_perf.json",
        &perf_json(opts.jobs, opts.reps, total_wall_s, &perf),
    ) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(1);
        }
    };
    con.note(format!("[written: {}]", perf_path.display()));
    con.note(format!(
        "[repro {} done in {total_wall_s:.1}s with --jobs {}]",
        opts.cmd, opts.jobs
    ));
}

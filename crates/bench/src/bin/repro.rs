//! `repro` — regenerates every table and figure of the paper (plus the
//! extension studies) from the simulation.
//!
//! ```text
//! cargo run --release -p gkap-bench --bin repro -- all
//! cargo run --release -p gkap-bench --bin repro -- fig11
//! ```
//!
//! Output: aligned tables on stdout and CSV files under `results/`.

use std::path::PathBuf;

use gkap_bench::{emit, figure_sizes, figures, micro, wan_sizes};
use gkap_core::costs_table::render_table1;
use gkap_core::experiment::SuiteKind;
use gkap_gcs::testbed;

fn out_dir() -> PathBuf {
    PathBuf::from("results")
}

fn cmd_table1() {
    for (n, m, p) in [(20usize, 5usize, 5usize), (50, 10, 10)] {
        println!("{}", render_table1(n, m, p));
    }
    std::fs::create_dir_all(out_dir()).expect("results dir");
    std::fs::write(out_dir().join("table1.txt"), render_table1(50, 10, 10)).expect("write");
    println!("[written: results/table1.txt]");
}

fn cmd_testbed() {
    let wan = testbed::wan();
    println!("# Figure 13 — WAN testbed");
    for s in 0..wan.topology.site_count() {
        let machines = (0..wan.topology.machine_count())
            .filter(|&m| wan.topology.machine(m).site == s)
            .count();
        println!("site {} = {:>4}: {machines} machines", s, wan.topology.site_name(s));
    }
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
        println!(
            "RTT {} – {}: {:.0} ms",
            wan.topology.site_name(a),
            wan.topology.site_name(b),
            wan.topology.site_latency(a, b).as_millis_f64() * 2.0
        );
    }
}

fn cmd_microlan() {
    println!("# §6.1.1 micro-parameters (LAN)");
    println!("{}", micro::render(&micro::lan_micro()));
}

fn cmd_microwan() {
    println!("# §6.2.1 micro-parameters (WAN)");
    println!("{}", micro::render(&micro::wan_micro()));
}

fn cmd_fig11(reps: u32) {
    let sizes = figure_sizes();
    for suite in [SuiteKind::Sim512, SuiteKind::Sim1024] {
        let fig = figures::fig11_join_lan(suite, &sizes, reps);
        let stem = match suite {
            SuiteKind::Sim512 => "fig11_join_lan_512",
            _ => "fig11_join_lan_1024",
        };
        emit(&fig, &out_dir(), stem);
    }
}

fn cmd_fig12(reps: u32) {
    let sizes = figure_sizes();
    for suite in [SuiteKind::Sim512, SuiteKind::Sim1024] {
        let fig = figures::fig12_leave_lan(suite, &sizes, reps);
        let stem = match suite {
            SuiteKind::Sim512 => "fig12_leave_lan_512",
            _ => "fig12_leave_lan_1024",
        };
        emit(&fig, &out_dir(), stem);
    }
}

fn cmd_fig14(reps: u32) {
    let sizes = wan_sizes();
    emit(&figures::fig14_join_wan(&sizes, reps), &out_dir(), "fig14_join_wan_512");
    emit(&figures::fig14_leave_wan(&sizes, reps), &out_dir(), "fig14_leave_wan_512");
}

fn cmd_partition_merge(reps: u32) {
    let sizes: Vec<usize> = vec![4, 8, 12, 20, 30, 40, 50];
    emit(
        &figures::partition_figure(&testbed::lan(), "Extension — Partition (half the group), LAN, DH 512", &sizes, reps),
        &out_dir(),
        "ext_partition_lan_512",
    );
    emit(
        &figures::merge_figure(&testbed::lan(), "Extension — Merge (two halves), LAN, DH 512", &sizes, reps),
        &out_dir(),
        "ext_merge_lan_512",
    );
    let wan_sizes: Vec<usize> = vec![4, 8, 14, 26, 40];
    emit(
        &figures::partition_figure(&testbed::wan(), "Extension — Partition (half the group), WAN, DH 512", &wan_sizes, reps),
        &out_dir(),
        "ext_partition_wan_512",
    );
    emit(
        &figures::merge_figure(&testbed::wan(), "Extension — Merge (two halves), WAN, DH 512", &wan_sizes, reps),
        &out_dir(),
        "ext_merge_wan_512",
    );
}

fn cmd_crossover(reps: u32) {
    let delays: Vec<u64> = vec![0, 5, 10, 20, 35, 50, 75, 100, 150, 200];
    emit(&figures::crossover_figure(20, &delays, reps), &out_dir(), "ext_crossover_join_n20");
}

fn cmd_ablate_flow(reps: u32) {
    let budgets: Vec<usize> = vec![1, 2, 5, 10, 20, 50];
    emit(&figures::flow_control_ablation(50, &budgets, reps), &out_dir(), "ablate_flow_bd_wan_n50");
}

fn cmd_ablate_sponsor() {
    emit(&figures::sponsor_location_ablation(26), &out_dir(), "ablate_sponsor_wan_n26");
}

fn cmd_ablate_tree() {
    emit(&figures::tree_shape_ablation(24, 30), &out_dir(), "ablate_tree_shape_n24");
}

fn cmd_ablate_sig(reps: u32) {
    emit(&figures::signature_scheme_ablation(26, reps), &out_dir(), "ablate_sig_join_n26");
}

fn cmd_ablate_confirm(reps: u32) {
    emit(&figures::key_confirmation_ablation(20, reps), &out_dir(), "ablate_confirm_join_n20");
}

fn cmd_ablate_avl() {
    emit(&figures::avl_policy_ablation(20, 25), &out_dir(), "ablate_avl_policy_n20");
}

fn cmd_ablate_hetero(reps: u32) {
    emit(&figures::hetero_machine_ablation(26, reps), &out_dir(), "ablate_hetero_join_n26");
}

fn cmd_ika(reps: u32) {
    let sizes: Vec<usize> = vec![2, 4, 8, 13, 20, 30, 40, 50];
    emit(
        &figures::ika_figure(&testbed::lan(), "Extension — real initial key agreement, LAN, DH 512", &sizes, reps),
        &out_dir(),
        "ext_ika_lan_512",
    );
    let wan_sizes: Vec<usize> = vec![2, 4, 8, 14, 26];
    emit(
        &figures::ika_figure(&testbed::wan(), "Extension — real initial key agreement, WAN, DH 512", &wan_sizes, reps),
        &out_dir(),
        "ext_ika_wan_512",
    );
}

fn cmd_scale(reps: u32) {
    let sizes: Vec<usize> = vec![10, 25, 50, 75, 100];
    emit(&figures::scale_figure(&sizes, reps), &out_dir(), "ext_scale_join_lan_512");
}

fn cmd_lossy(reps: u32) {
    let pcts: Vec<u32> = vec![0, 1, 2, 5, 10, 20];
    emit(&figures::lossy_links_figure(20, &pcts, reps), &out_dir(), "ext_lossy_wan_join_n20");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let reps: u32 = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let t0 = std::time::Instant::now();
    match cmd {
        "table1" => cmd_table1(),
        "testbed" => cmd_testbed(),
        "microlan" => cmd_microlan(),
        "microwan" => cmd_microwan(),
        "fig11" => cmd_fig11(reps),
        "fig12" => cmd_fig12(reps),
        "fig14" => cmd_fig14(reps),
        "partition-merge" => cmd_partition_merge(reps),
        "crossover" => cmd_crossover(reps),
        "ablate-flow" => cmd_ablate_flow(reps),
        "ablate-sponsor" => cmd_ablate_sponsor(),
        "ablate-tree" => cmd_ablate_tree(),
        "ablate-sig" => cmd_ablate_sig(reps),
        "ablate-avl" => cmd_ablate_avl(),
        "ablate-confirm" => cmd_ablate_confirm(reps),
        "lossy" => cmd_lossy(reps),
        "ika" => cmd_ika(reps),
        "scale" => cmd_scale(reps),
        "ablate-hetero" => cmd_ablate_hetero(reps),
        "all" => {
            cmd_table1();
            cmd_testbed();
            cmd_microlan();
            cmd_microwan();
            cmd_fig11(reps);
            cmd_fig12(reps);
            cmd_fig14(reps);
            cmd_partition_merge(reps);
            cmd_crossover(reps);
            cmd_ablate_flow(reps);
            cmd_ablate_sponsor();
            cmd_ablate_tree();
            cmd_ablate_sig(reps);
            cmd_ablate_avl();
            cmd_lossy(reps);
            cmd_ablate_hetero(reps);
            cmd_ablate_confirm(reps);
            cmd_ika(reps);
            cmd_scale(reps);
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
                "commands: all table1 testbed microlan microwan fig11 fig12 fig14 \
                 partition-merge crossover ablate-flow ablate-sponsor ablate-tree ablate-sig ablate-avl ablate-hetero ablate-confirm lossy ika scale [--reps N]"
            );
            std::process::exit(2);
        }
    }
    eprintln!("[repro {cmd} done in {:.1}s]", t0.elapsed().as_secs_f64());
}

//! Seeded chaos campaigns (`repro chaos`): randomized fault schedules
//! run against every protocol, with three invariants checked after
//! quiescence and a greedy schedule minimizer for failures.
//!
//! A campaign is `runs` schedules × five protocols. Each schedule is a
//! [`FaultPlan`] — crashes, loss bursts, and partition/heal (leave/
//! join) events at virtual-time offsets — derived deterministically
//! from `(seed, run)`, so the same seed always replays the same
//! campaign and CI can pin one. After every run the world must reach
//! quiescence within a virtual-time bound, and the surviving members
//! must agree on both the installed view and the group key. On a
//! violation the schedule is shrunk by greedy delta debugging: drop
//! one fault at a time, keep the removal whenever the run still
//! fails, and repeat to a fixed point.

use std::rc::Rc;

use gkap_bignum::{RandomSource, SplitMix64, Ubig};
use gkap_core::experiment::SuiteKind;
use gkap_core::protocols::ProtocolKind;
use gkap_core::{AgreementPhase, SecureMember};
use gkap_gcs::{testbed, Fault, FaultPlan, PlannedFault, SimWorld};
use gkap_sim::Duration;
use gkap_telemetry::Telemetry;

use crate::trace::recovery_ms;
use crate::Console;

/// Builds one member for a chaos world. Indexed by protocol and
/// client id so every rerun of a schedule (including the minimizer's)
/// constructs an identical population.
pub type MemberFactory = dyn Fn(ProtocolKind, usize) -> SecureMember;

/// Shape of a chaos world and the timing bounds of a run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Clients added to the world (members + joinable spares).
    pub total_clients: usize,
    /// Size of the initial group (clients `0..initial_members`).
    pub initial_members: usize,
    /// Virtual-time window in which generated faults land.
    pub horizon: Duration,
    /// Liveness bound: the world must be quiescent this long after
    /// the last scheduled fault.
    pub settle: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            total_clients: 10,
            initial_members: 7,
            horizon: Duration::from_millis(40),
            settle: Duration::from_millis(300),
        }
    }
}

/// The default member population: DH 512 simulated-cost suite, one
/// deterministic seed stream per client.
pub fn default_factory() -> impl Fn(ProtocolKind, usize) -> SecureMember {
    let suite = SuiteKind::Sim512.shared();
    move |kind, i| SecureMember::new(kind, Rc::clone(&suite), 900 + i as u64, Some(17))
}

/// Outcome of one schedule against one protocol.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Human-readable invariant violations (empty = run passed).
    pub violations: Vec<String>,
    /// Id of the final installed view.
    pub final_epoch: u64,
    /// Members of the final view still alive.
    pub survivors: usize,
    /// Survivors that exhausted their restart budget (reported by the
    /// session layer, not an invariant violation).
    pub gave_up: usize,
    /// Virtual time attributed to crash recovery (ring reformation +
    /// eviction), from the telemetry fault events.
    pub recovery_ms: f64,
    /// Virtual time from fault-plan application to the end of the run.
    pub elapsed_ms: f64,
}

impl RunReport {
    /// Whether all three invariants held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one fault schedule against one protocol and checks the three
/// invariants: liveness (quiescence within `settle` of the last
/// fault), view synchrony (every surviving member installed the final
/// view), and key convergence (every surviving, non-given-up member
/// derived the identical key for it).
pub fn run_schedule(
    kind: ProtocolKind,
    cfg: &ChaosConfig,
    faults: &[PlannedFault],
    factory: &MemberFactory,
) -> RunReport {
    let mut world = SimWorld::new(testbed::lan());
    let telemetry = Telemetry::enabled();
    world.set_telemetry(telemetry.clone());
    for i in 0..cfg.total_clients {
        let mut member = factory(kind, i);
        member.set_telemetry(telemetry.clone());
        world.add_client(Box::new(member));
    }
    world.install_initial_view_of((0..cfg.initial_members).collect());
    world.run_until_quiescent();

    let t0 = world.now();
    let mut plan = FaultPlan::new();
    let mut horizon = Duration::ZERO;
    for f in faults {
        horizon = horizon.max(f.after);
        plan = plan.push(f.after, f.fault.clone());
    }
    world.apply_fault_plan(plan);
    let bound = t0 + horizon + cfg.settle;
    world.run_while(|w| w.now() < bound);

    let elapsed_ms = world.now().since(t0).as_millis_f64();
    let recovery = recovery_ms(&telemetry.events()).min(elapsed_ms);
    let mut violations = Vec::new();

    if !world.quiescent() {
        violations.push(format!(
            "liveness: not quiescent within {:.0} virtual ms of the last fault",
            cfg.settle.as_millis_f64()
        ));
        // The view and keys are mid-change: the other invariants are
        // not meaningful on a hung run.
        return RunReport {
            violations,
            final_epoch: world.view().map(|v| v.id).unwrap_or(0),
            survivors: 0,
            gave_up: 0,
            recovery_ms: recovery,
            elapsed_ms,
        };
    }

    let Some(view) = world.view().cloned() else {
        // Cannot happen after a quiescent run that installed a view,
        // but a missing view is itself an invariant violation — report
        // it instead of panicking mid-campaign.
        violations.push("view synchrony: no view installed after the campaign".into());
        return RunReport {
            violations,
            final_epoch: 0,
            survivors: 0,
            gave_up: 0,
            recovery_ms: recovery,
            elapsed_ms,
        };
    };
    let members: Vec<usize> = view
        .members
        .iter()
        .copied()
        .filter(|&c| world.client_alive(c))
        .collect();
    let mut gave_up = 0;
    let mut key: Option<Ubig> = None;
    for &c in &members {
        let m = world.client::<SecureMember>(c);
        if m.last_view_epoch() != Some(view.id) {
            violations.push(format!(
                "view synchrony: member {c} last installed view {:?}, the group is at {}",
                m.last_view_epoch(),
                view.id
            ));
        }
        if m.phase() == AgreementPhase::GivenUp {
            gave_up += 1;
            continue;
        }
        match (m.secret(view.id), &key) {
            (None, _) => violations.push(format!(
                "key convergence: member {c} has no key for view {}",
                view.id
            )),
            (Some(s), None) => key = Some(s.clone()),
            (Some(s), Some(k)) if s != k => violations.push(format!(
                "key convergence: member {c} derived a different key for view {}",
                view.id
            )),
            _ => {}
        }
    }

    RunReport {
        violations,
        final_epoch: view.id,
        survivors: members.len(),
        gave_up,
        recovery_ms: recovery,
        elapsed_ms,
    }
}

/// Derives run `run`'s fault schedule from the campaign seed.
///
/// The mix covers every fault class: daemon crashes, loss bursts,
/// partition/heal pairs, and single-member leaves/joins (cascade
/// pressure — they routinely land while the previous agreement is
/// still in flight). Removal-type faults are capped so the group can
/// never be wiped out entirely, which would make the invariants
/// vacuous.
pub fn generate_schedule(seed: u64, run: u64, cfg: &ChaosConfig) -> Vec<PlannedFault> {
    let mut rng = SplitMix64::new(
        seed ^ run
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x5eed_cafe),
    );
    let _ = rng.next_u64(); // decorrelate from the raw seed
    let steps = 3 + (rng.next_u64() % 4) as usize;
    let horizon_ms = (cfg.horizon.as_millis_f64() as u64).max(1);
    // Crashes and unhealed leaves permanently shrink the group; allow
    // only as many as keep a quorum of the initial members alive.
    let removal_cap = cfg.initial_members.saturating_sub(3) / 2;
    let mut removals = 0;
    let mut faults = Vec::new();
    for _ in 0..steps {
        let at = Duration::from_millis(rng.next_u64() % horizon_ms);
        let fault = match rng.next_u64() % 6 {
            0 if removals < removal_cap => {
                removals += 1;
                Fault::Crash {
                    daemon: (rng.next_u64() % 13) as usize,
                }
            }
            1 if removals < removal_cap => {
                removals += 1;
                let a = (rng.next_u64() as usize) % cfg.total_clients;
                let b = (rng.next_u64() as usize) % cfg.total_clients;
                let members = if a == b { vec![a] } else { vec![a, b] };
                faults.push(PlannedFault {
                    after: at + Duration::from_millis(5 + rng.next_u64() % 10),
                    fault: Fault::Heal {
                        members: members.clone(),
                    },
                });
                Fault::Partition { members }
            }
            2 => Fault::LossBurst {
                rate: 0.3 + (rng.next_u64() % 60) as f64 / 100.0,
                duration: Duration::from_millis(1 + rng.next_u64() % 6),
            },
            _ => {
                let c = (rng.next_u64() as usize) % cfg.total_clients;
                if rng.next_u64().is_multiple_of(2) || removals >= removal_cap {
                    Fault::Heal { members: vec![c] }
                } else {
                    removals += 1;
                    Fault::Partition { members: vec![c] }
                }
            }
        };
        faults.push(PlannedFault { after: at, fault });
    }
    faults
}

/// Shrinks a failing schedule by greedy delta debugging: repeatedly
/// drop any single fault whose removal keeps the run failing, until
/// no single removal does.
pub fn minimize(
    kind: ProtocolKind,
    cfg: &ChaosConfig,
    faults: &[PlannedFault],
    factory: &MemberFactory,
) -> Vec<PlannedFault> {
    let mut cur = faults.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if !run_schedule(kind, cfg, &cand, factory).passed() {
                cur = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// One failing run of a campaign, with its minimized reproduction.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    /// The protocol that violated an invariant.
    pub kind: ProtocolKind,
    /// Which run of the campaign (0-based).
    pub run: u32,
    /// The full generated schedule.
    pub schedule: Vec<PlannedFault>,
    /// The smallest still-failing subset of the schedule.
    pub minimized: Vec<PlannedFault>,
    /// The violations the full schedule produced.
    pub violations: Vec<String>,
}

/// One row of the campaign result table (a run × protocol cell).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosRow {
    /// Which run of the campaign (0-based).
    pub run: u32,
    /// Protocol name.
    pub protocol: &'static str,
    /// Number of scheduled faults.
    pub faults: usize,
    /// Whether all invariants held.
    pub passed: bool,
    /// Surviving members of the final view.
    pub survivors: usize,
    /// Members that exhausted their restart budget.
    pub gave_up: usize,
    /// Id of the final installed view.
    pub final_epoch: u64,
    /// Virtual ms attributed to crash recovery.
    pub recovery_ms: f64,
    /// Virtual ms from fault application to run end.
    pub elapsed_ms: f64,
}

/// Full result of a chaos campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The campaign seed.
    pub seed: u64,
    /// Number of schedules run.
    pub runs: u32,
    /// Every run × protocol outcome.
    pub rows: Vec<ChaosRow>,
    /// The failures, each with a minimized reproduction.
    pub failures: Vec<CampaignFailure>,
}

impl CampaignReport {
    /// Whether every run of every protocol held all invariants.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a full campaign: `runs` schedules × all five protocols.
/// Failures are immediately re-run through [`minimize`].
pub fn run_campaign(
    seed: u64,
    runs: u32,
    cfg: &ChaosConfig,
    factory: &MemberFactory,
    con: &mut Console,
) -> CampaignReport {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for run in 0..runs {
        let schedule = generate_schedule(seed, run as u64, cfg);
        con.note(format!(
            "[chaos run {}/{runs}: {} faults]",
            run + 1,
            schedule.len()
        ));
        for kind in ProtocolKind::all() {
            let report = run_schedule(kind, cfg, &schedule, factory);
            rows.push(ChaosRow {
                run,
                protocol: kind.name(),
                faults: schedule.len(),
                passed: report.passed(),
                survivors: report.survivors,
                gave_up: report.gave_up,
                final_epoch: report.final_epoch,
                recovery_ms: report.recovery_ms,
                elapsed_ms: report.elapsed_ms,
            });
            if !report.passed() {
                con.note(format!(
                    "[chaos run {}: {} FAILED — minimizing]",
                    run + 1,
                    kind.name()
                ));
                let minimized = minimize(kind, cfg, &schedule, factory);
                failures.push(CampaignFailure {
                    kind,
                    run,
                    schedule: schedule.clone(),
                    minimized,
                    violations: report.violations,
                });
            }
        }
    }
    CampaignReport {
        seed,
        runs,
        rows,
        failures,
    }
}

fn fmt_fault(f: &Fault) -> String {
    match f {
        Fault::Crash { daemon } => format!("crash daemon {daemon}"),
        Fault::LossBurst { rate, duration } => format!(
            "loss burst {:.0}% for {:.1} ms",
            rate * 100.0,
            duration.as_millis_f64()
        ),
        Fault::Partition { members } => format!("partition {members:?}"),
        Fault::Heal { members } => format!("heal {members:?}"),
    }
}

/// Renders a schedule one fault per line, in firing order.
pub fn render_schedule(faults: &[PlannedFault]) -> String {
    let mut sorted: Vec<&PlannedFault> = faults.iter().collect();
    sorted.sort_by_key(|f| f.after);
    sorted
        .iter()
        .map(|f| {
            format!(
                "  t+{:>5.1} ms  {}",
                f.after.as_millis_f64(),
                fmt_fault(&f.fault)
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders the per-protocol campaign summary table.
pub fn render_summary(report: &CampaignReport) -> String {
    let mut s = format!(
        "# Chaos campaign — seed {}, {} runs × 5 protocols (virtual ms)\n\
         {:<8} {:>6} {:>6} {:>9} {:>8} {:>12} {:>12}\n",
        report.seed,
        report.runs,
        "protocol",
        "passed",
        "failed",
        "survivors",
        "gave_up",
        "recovery_ms",
        "agreement_ms"
    );
    for kind in ProtocolKind::all() {
        let rows: Vec<&ChaosRow> = report
            .rows
            .iter()
            .filter(|r| r.protocol == kind.name())
            .collect();
        let passed = rows.iter().filter(|r| r.passed).count();
        let failed = rows.len() - passed;
        let survivors: usize = rows.iter().map(|r| r.survivors).sum();
        let gave_up: usize = rows.iter().map(|r| r.gave_up).sum();
        let recovery: f64 = rows.iter().map(|r| r.recovery_ms).sum();
        let elapsed: f64 = rows.iter().map(|r| r.elapsed_ms).sum();
        s.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>9} {:>8} {:>12.2} {:>12.2}\n",
            kind.name(),
            passed,
            failed,
            survivors,
            gave_up,
            recovery,
            (elapsed - recovery).max(0.0)
        ));
    }
    s
}

/// Renders one failure: violations, the seed-reproducible minimal
/// schedule, and how to replay it.
pub fn render_failure(f: &CampaignFailure) -> String {
    let mut s = format!(
        "FAILED: {} run {} ({} faults, minimized to {})\n",
        f.kind.name(),
        f.run,
        f.schedule.len(),
        f.minimized.len()
    );
    for v in &f.violations {
        s.push_str(&format!("  violation: {v}\n"));
    }
    s.push_str("minimal failing schedule:\n");
    s.push_str(&render_schedule(&f.minimized));
    s.push('\n');
    s
}

/// Renders the campaign as CSV (one row per run × protocol).
pub fn campaign_csv(report: &CampaignReport) -> String {
    let mut s = String::from(
        "seed,run,protocol,faults,passed,survivors,gave_up,final_epoch,recovery_ms,elapsed_ms\n",
    );
    for r in &report.rows {
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.6},{:.6}\n",
            report.seed,
            r.run,
            r.protocol,
            r.faults,
            r.passed,
            r.survivors,
            r.gave_up,
            r.final_epoch,
            r.recovery_ms,
            r.elapsed_ms
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_capped() {
        let cfg = ChaosConfig::default();
        for run in 0..16 {
            let a = generate_schedule(7, run, &cfg);
            let b = generate_schedule(7, run, &cfg);
            assert_eq!(a, b, "run {run} not reproducible");
            assert!(!a.is_empty());
            let removals = a
                .iter()
                .filter(|f| matches!(f.fault, Fault::Crash { .. } | Fault::Partition { .. }))
                .count();
            // Crashes plus partitions stay below the wipe-out bound
            // (every partition is ≤ 2 members and may also be healed).
            assert!(removals <= 2, "run {run}: {removals} removal faults");
        }
        // Different seeds diverge.
        assert_ne!(generate_schedule(7, 0, &cfg), generate_schedule(8, 0, &cfg));
    }

    #[test]
    fn clean_schedule_passes_all_invariants() {
        let cfg = ChaosConfig::default();
        let factory = default_factory();
        let report = run_schedule(ProtocolKind::Gdh, &cfg, &[], &factory);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.survivors, cfg.initial_members);
        assert_eq!(report.recovery_ms, 0.0);
    }

    #[test]
    fn crash_recovery_time_is_attributed() {
        let cfg = ChaosConfig::default();
        let factory = default_factory();
        let faults = vec![PlannedFault {
            after: Duration::from_millis(2),
            fault: Fault::Crash { daemon: 3 },
        }];
        let report = run_schedule(ProtocolKind::Tgdh, &cfg, &faults, &factory);
        assert!(report.passed(), "{:?}", report.violations);
        // Client 3 lived on machine 3: the group shrank by one.
        assert_eq!(report.survivors, cfg.initial_members - 1);
        assert!(
            report.recovery_ms > 0.0,
            "crash recovery not attributed: {report:?}"
        );
        assert!(report.recovery_ms <= report.elapsed_ms);
    }
}

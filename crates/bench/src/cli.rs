//! Argument parsing for the `repro` binary.
//!
//! Kept out of `bin/repro.rs` so the accepted grammar is unit-testable:
//! flags and positionals may be interleaved in any order
//! (`--quiet trace fig11`, `fig11 --jobs 4 --reps 5` and
//! `--jobs 4 fig11` are all equivalent spellings).

use gkap_core::par;

/// Parsed `repro` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct CliOptions {
    /// The command (first positional; defaults to `all`).
    pub cmd: String,
    /// The optional figure argument (second positional, used by
    /// `trace`/`trace-summary`; the baseline manifest path for
    /// `bench-diff`).
    pub figure: Option<String>,
    /// Third positional: the candidate manifest path for `bench-diff`.
    pub arg2: Option<String>,
    /// Also write collapsed-stack (flamegraph) output for `trace`
    /// (`--folded`).
    pub folded: bool,
    /// Repetitions per figure point (`--reps N`, default 3).
    pub reps: u32,
    /// Worker threads for the experiment grids (`--jobs N` / `-j N`,
    /// default: the host's available parallelism).
    pub jobs: usize,
    /// Silence tables and notes (`--quiet` / `-q`).
    pub quiet: bool,
    /// Campaign seed for `chaos` (`--seed N`, default 7).
    pub seed: u64,
    /// Number of chaos schedules per campaign (`--runs N`, default 8).
    pub runs: u32,
    /// Concurrent groups for `scale` (`--groups N`, default 64).
    pub groups: usize,
    /// Expected churn events per group for `scale` (`--churn R`,
    /// default 0.1).
    pub churn: f64,
    /// Batching window in milliseconds for `scale` (`--window MS`,
    /// default 5; 0 disables batching).
    pub window_ms: f64,
    /// Restrict `scale` to one protocol (`--protocol NAME`; all five
    /// when absent).
    pub protocol: Option<String>,
    /// Independent ring shards for `scale` (`--shards N`, default 1).
    /// A pure execution knob: output is bit-identical for any value.
    pub shards: usize,
    /// Run the loss-rate sweep variant of `chaos` (`--loss-sweep`):
    /// loss rates × {FEC, retransmission-only} on the LAN and WAN
    /// testbeds instead of the randomized fault campaign.
    pub loss_sweep: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            cmd: "all".into(),
            figure: None,
            arg2: None,
            folded: false,
            reps: 3,
            jobs: par::default_jobs(),
            quiet: false,
            seed: 7,
            runs: 8,
            groups: 64,
            churn: 0.1,
            window_ms: 5.0,
            protocol: None,
            shards: 1,
            loss_sweep: false,
        }
    }
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for malformed flags — notably
/// `--jobs 0`, which is rejected rather than silently treated as
/// serial (`--jobs 1` is the explicit serial spelling).
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quiet" | "-q" => opts.quiet = true,
            "--folded" => opts.folded = true,
            "--loss-sweep" => opts.loss_sweep = true,
            "--reps" => {
                i += 1;
                let v = args.get(i).ok_or("--reps requires a value")?;
                opts.reps = v
                    .parse()
                    .map_err(|_| format!("invalid --reps value: {v}"))?;
            }
            "--jobs" | "-j" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs requires a value")?;
                let jobs: usize = v
                    .parse()
                    .map_err(|_| format!("invalid --jobs value: {v}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1 (use --jobs 1 for a serial run)".into());
                }
                opts.jobs = jobs;
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed requires a value")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed value: {v}"))?;
            }
            "--runs" => {
                i += 1;
                let v = args.get(i).ok_or("--runs requires a value")?;
                let runs: u32 = v
                    .parse()
                    .map_err(|_| format!("invalid --runs value: {v}"))?;
                if runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
                opts.runs = runs;
            }
            "--groups" => {
                i += 1;
                let v = args.get(i).ok_or("--groups requires a value")?;
                let groups: usize = v
                    .parse()
                    .map_err(|_| format!("invalid --groups value: {v}"))?;
                if groups == 0 {
                    return Err("--groups must be at least 1".into());
                }
                opts.groups = groups;
            }
            "--churn" => {
                i += 1;
                let v = args.get(i).ok_or("--churn requires a value")?;
                let churn: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --churn value: {v}"))?;
                if !churn.is_finite() || churn < 0.0 {
                    return Err(format!("--churn must be a finite non-negative rate: {v}"));
                }
                opts.churn = churn;
            }
            "--window" => {
                i += 1;
                let v = args.get(i).ok_or("--window requires a value (ms)")?;
                let window: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --window value: {v}"))?;
                if !window.is_finite() || window < 0.0 {
                    return Err(format!(
                        "--window must be a finite non-negative ms value: {v}"
                    ));
                }
                opts.window_ms = window;
            }
            "--protocol" => {
                i += 1;
                let v = args.get(i).ok_or("--protocol requires a name")?;
                opts.protocol = Some(v.clone());
            }
            "--shards" => {
                i += 1;
                let v = args.get(i).ok_or("--shards requires a value")?;
                let shards: usize = v
                    .parse()
                    .map_err(|_| format!("invalid --shards value: {v}"))?;
                if shards == 0 {
                    return Err(
                        "--shards must be at least 1 (use --shards 1 for a single ring)".into(),
                    );
                }
                opts.shards = shards;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            pos => positional.push(pos),
        }
        i += 1;
    }
    if let Some(cmd) = positional.first() {
        opts.cmd = (*cmd).to_string();
    }
    opts.figure = positional.get(1).map(|s| (*s).to_string());
    opts.arg2 = positional.get(2).map(|s| (*s).to_string());
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.cmd, "all");
        assert_eq!(o.figure, None);
        assert_eq!(o.reps, 3);
        assert!(o.jobs >= 1);
        assert!(!o.quiet);
    }

    #[test]
    fn jobs_accepted_in_any_position() {
        for argv in [
            ["--jobs", "4", "fig11"],
            ["fig11", "--jobs", "4"],
            ["fig11", "-j", "4"],
        ] {
            let o = parse(&args(&argv)).unwrap();
            assert_eq!(o.cmd, "fig11", "{argv:?}");
            assert_eq!(o.jobs, 4, "{argv:?}");
        }
        let o = parse(&args(&["--quiet", "fig11", "--jobs", "2", "--reps", "5"])).unwrap();
        assert_eq!(
            (o.cmd.as_str(), o.jobs, o.reps, o.quiet),
            ("fig11", 2, 5, true)
        );
    }

    #[test]
    fn jobs_zero_rejected_with_clear_error() {
        let err = parse(&args(&["fig11", "--jobs", "0"])).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
    }

    #[test]
    fn malformed_flag_values_rejected() {
        assert!(parse(&args(&["--jobs"])).is_err());
        assert!(parse(&args(&["--jobs", "many"])).is_err());
        assert!(parse(&args(&["--reps", "-1"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn chaos_seed_and_runs_parse_in_any_position() {
        let o = parse(&[]).unwrap();
        assert_eq!((o.seed, o.runs), (7, 8));
        for argv in [
            ["chaos", "--seed", "42", "--runs", "3"],
            ["--runs", "3", "chaos", "--seed", "42"],
        ] {
            let o = parse(&args(&argv)).unwrap();
            assert_eq!(o.cmd, "chaos", "{argv:?}");
            assert_eq!((o.seed, o.runs), (42, 3), "{argv:?}");
        }
        assert!(parse(&args(&["--seed"])).is_err());
        assert!(parse(&args(&["--seed", "many"])).is_err());
        let err = parse(&args(&["chaos", "--runs", "0"])).unwrap_err();
        assert!(err.contains("--runs must be at least 1"), "{err}");
    }

    #[test]
    fn scale_flags_parse_and_validate() {
        let o = parse(&[]).unwrap();
        assert_eq!((o.groups, o.churn, o.window_ms), (64, 0.1, 5.0));
        assert_eq!(o.protocol, None);
        let o = parse(&args(&[
            "scale",
            "--groups",
            "1000",
            "--churn",
            "0.05",
            "--window",
            "2.5",
            "--protocol",
            "tgdh",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(o.cmd, "scale");
        assert_eq!((o.groups, o.churn, o.window_ms), (1000, 0.05, 2.5));
        assert_eq!(o.protocol.as_deref(), Some("tgdh"));
        assert_eq!(o.seed, 9);
        assert!(parse(&args(&["--groups", "0"])).is_err());
        assert!(parse(&args(&["--groups", "many"])).is_err());
        assert!(parse(&args(&["--churn", "-1"])).is_err());
        assert!(parse(&args(&["--churn", "NaN"])).is_err());
        assert!(parse(&args(&["--window", "-2"])).is_err());
        assert!(parse(&args(&["--protocol"])).is_err());
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().shards, 1, "single ring by default");
        for argv in [["scale", "--shards", "4"], ["--shards", "4", "scale"]] {
            let o = parse(&args(&argv)).unwrap();
            assert_eq!((o.cmd.as_str(), o.shards), ("scale", 4), "{argv:?}");
        }
        let err = parse(&args(&["scale", "--shards", "0"])).unwrap_err();
        assert!(err.contains("--shards must be at least 1"), "{err}");
        assert!(parse(&args(&["--shards"])).is_err());
        assert!(parse(&args(&["--shards", "many"])).is_err());
    }

    #[test]
    fn loss_sweep_flag_parses_in_any_position() {
        assert!(!parse(&[]).unwrap().loss_sweep, "off by default");
        for argv in [
            ["chaos", "--loss-sweep", "--seed", "7"],
            ["--loss-sweep", "chaos", "--seed", "7"],
        ] {
            let o = parse(&args(&argv)).unwrap();
            assert_eq!(o.cmd, "chaos", "{argv:?}");
            assert!(o.loss_sweep, "{argv:?}");
            assert_eq!(o.seed, 7, "{argv:?}");
        }
    }

    #[test]
    fn gkap_jobs_env_is_the_default_and_the_flag_wins() {
        // One test owns the variable end to end, so the parallel test
        // runner never sees it set outside this scope.
        std::env::set_var("GKAP_JOBS", "3");
        let o = parse(&[]).unwrap();
        assert_eq!(o.jobs, 3, "GKAP_JOBS sets the default worker count");
        let o = parse(&args(&["scale", "--jobs", "5"])).unwrap();
        assert_eq!(o.jobs, 5, "an explicit --jobs beats the environment");
        std::env::set_var("GKAP_JOBS", "0");
        let o = parse(&[]).unwrap();
        assert!(o.jobs >= 1, "a nonsense GKAP_JOBS falls back to hardware");
        std::env::remove_var("GKAP_JOBS");
    }

    #[test]
    fn positionals_interleave_with_flags() {
        let o = parse(&args(&["--quiet", "trace", "--jobs", "3", "fig14"])).unwrap();
        assert_eq!(o.cmd, "trace");
        assert_eq!(o.figure.as_deref(), Some("fig14"));
        assert!(o.quiet);
        assert_eq!(o.jobs, 3);
    }

    #[test]
    fn folded_flag_and_bench_diff_positionals() {
        let o = parse(&args(&["trace", "fig14", "--folded"])).unwrap();
        assert!(o.folded);
        assert_eq!(o.figure.as_deref(), Some("fig14"));
        assert!(!parse(&[]).unwrap().folded);
        let o = parse(&args(&[
            "bench-diff",
            "results/baselines/a.json",
            "results/RUN_b.json",
        ]))
        .unwrap();
        assert_eq!(o.cmd, "bench-diff");
        assert_eq!(o.figure.as_deref(), Some("results/baselines/a.json"));
        assert_eq!(o.arg2.as_deref(), Some("results/RUN_b.json"));
    }
}

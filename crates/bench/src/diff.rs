//! `repro bench-diff`: the perf-regression gate over two run
//! manifests.
//!
//! The comparator is noise-aware by *metric class*, not by magic
//! fudge factors:
//!
//! * **Counts** (operation counters, histogram sample counts) are
//!   deterministic functions of the workload — any difference is a
//!   behaviour change and compares **exactly**.
//! * **Virtual-time quantities** (histogram quantiles, gauges,
//!   `virtual_ms`) are simulated time: noise-free in principle, but
//!   quantiles ride on log-bucket upper bounds, so they compare with
//!   a **relative threshold** (default 5 %, about half a bucket's
//!   growth factor).
//! * **Environment** (wall seconds, peak RSS) depends on the machine
//!   that ran the workload and is reported as **informational** only
//!   — a CI runner being slow is not a regression in the code.
//!
//! The report renders in the rustc style (`error[bench-diff/count]:`)
//! so a CI log scans like a compile failure, and the binary exits
//! non-zero iff at least one regression was found.

use crate::manifest::Manifest;

/// Comparator tuning.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Allowed relative drift for virtual-time quantities, in percent.
    pub rel_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        // Half of the histogram growth factor (1.6× buckets): real
        // shifts move a quantile a whole bucket, jitter moves it none.
        Thresholds { rel_pct: 5.0 }
    }
}

/// How bad one finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The candidate is worse (or structurally different): gate fails.
    Regression,
    /// The candidate is better beyond the threshold: worth a look,
    /// never fails the gate.
    Improvement,
    /// Informational (environment drift, config mismatch).
    Info,
}

/// One compared metric that differed.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Metric class tag rendered in the bracket (`count`, `quantile`,
    /// `gauge`, `schema`, `config`, `env`).
    pub class: &'static str,
    /// Which metric (path plus field).
    pub metric: String,
    /// `baseline → candidate` with the relative change where defined.
    pub detail: String,
}

/// Everything `bench-diff` found, plus how many metrics it compared.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// All findings, in comparison order.
    pub findings: Vec<Finding>,
    /// Metrics compared (for the "n metrics compared" summary line).
    pub compared: usize,
}

impl DiffReport {
    /// Number of regressions.
    pub fn regressions(&self) -> usize {
        self.count(Severity::Regression)
    }

    /// Number of improvements.
    pub fn improvements(&self) -> usize {
        self.count(Severity::Improvement)
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// Whether the gate passes (no regressions).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }
}

fn pct(base: f64, cand: f64) -> String {
    if base == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:+.2}%", (cand - base) / base * 100.0)
    }
}

/// Compares two manifests. `base` is the committed baseline, `cand`
/// the fresh run.
pub fn diff(base: &Manifest, cand: &Manifest, th: &Thresholds) -> DiffReport {
    let mut report = DiffReport::default();
    let push = |report: &mut DiffReport, severity, class, metric: String, detail: String| {
        report.findings.push(Finding {
            severity,
            class,
            metric,
            detail,
        });
    };

    if base.schema_version != cand.schema_version {
        push(
            &mut report,
            Severity::Regression,
            "schema",
            "schema_version".into(),
            format!("{} → {}", base.schema_version, cand.schema_version),
        );
        // Shapes may not line up; stop at the structural finding.
        return report;
    }
    if base.cmd != cand.cmd || base.tag != cand.tag {
        push(
            &mut report,
            Severity::Info,
            "config",
            "cmd/tag".into(),
            format!(
                "comparing {}_{} against {}_{} — different workloads",
                base.cmd, base.tag, cand.cmd, cand.tag
            ),
        );
    }
    let mut seen_config = std::collections::BTreeSet::new();
    for key in base.config.keys().chain(cand.config.keys()) {
        let (b, c) = (base.config.get(key), cand.config.get(key));
        if b != c && seen_config.insert(key.clone()) {
            push(
                &mut report,
                Severity::Info,
                "config",
                format!("config/{key}"),
                format!(
                    "{} → {} — runs used different configurations",
                    b.map(String::as_str).unwrap_or("(absent)"),
                    c.map(String::as_str).unwrap_or("(absent)")
                ),
            );
        }
    }

    // Counts: deterministic, compared exactly over the key union.
    let mut seen_counts = std::collections::BTreeSet::new();
    for key in base.counts.keys().chain(cand.counts.keys()) {
        if !seen_counts.insert(key.clone()) {
            continue; // union iteration visits shared keys twice
        }
        report.compared += 1;
        match (base.counts.get(key), cand.counts.get(key)) {
            (Some(b), Some(c)) if b == c => {}
            (Some(b), Some(c)) => {
                let severity = if c > b {
                    Severity::Regression
                } else {
                    Severity::Improvement
                };
                push(
                    &mut report,
                    severity,
                    "count",
                    key.clone(),
                    format!(
                        "{b} → {c} ({}) — counts must match exactly",
                        pct(*b as f64, *c as f64)
                    ),
                );
            }
            (Some(b), None) => push(
                &mut report,
                Severity::Regression,
                "count",
                key.clone(),
                format!("{b} → (missing) — metric disappeared from the candidate"),
            ),
            (None, Some(c)) => push(
                &mut report,
                Severity::Info,
                "count",
                key.clone(),
                format!("(absent) → {c} — new metric, not in the baseline"),
            ),
            (None, None) => {}
        }
    }

    // Gauges + virtual_ms: virtual-time class, relative threshold.
    let rel = th.rel_pct / 100.0;
    let mut seen_gauges = std::collections::BTreeSet::new();
    for key in base.gauges.keys().chain(cand.gauges.keys()) {
        if !seen_gauges.insert(key.clone()) {
            continue;
        }
        report.compared += 1;
        compare_rel(
            &mut report,
            "gauge",
            key,
            base.gauges.get(key).copied(),
            cand.gauges.get(key).copied(),
            rel,
        );
    }
    report.compared += 1;
    compare_rel(
        &mut report,
        "gauge",
        "virtual_ms",
        Some(base.virtual_ms),
        Some(cand.virtual_ms),
        rel,
    );

    // Histograms: sample counts exact, quantiles relative.
    let mut seen_hists = std::collections::BTreeSet::new();
    for key in base.histograms.keys().chain(cand.histograms.keys()) {
        if !seen_hists.insert(key.clone()) {
            continue;
        }
        report.compared += 1;
        match (base.histograms.get(key), cand.histograms.get(key)) {
            (Some(b), Some(c)) => {
                if b.count != c.count {
                    let severity = if c.count > b.count {
                        Severity::Regression
                    } else {
                        Severity::Improvement
                    };
                    push(
                        &mut report,
                        severity,
                        "count",
                        format!("{key}/count"),
                        format!(
                            "{} → {} ({}) — sample counts must match exactly",
                            b.count,
                            c.count,
                            pct(b.count as f64, c.count as f64)
                        ),
                    );
                }
                for (field, bv, cv) in [
                    ("min", b.min, c.min),
                    ("p50", b.p50, c.p50),
                    ("p95", b.p95, c.p95),
                    ("p99", b.p99, c.p99),
                    ("max", b.max, c.max),
                ] {
                    compare_rel(
                        &mut report,
                        "quantile",
                        &format!("{key}/{field}"),
                        Some(bv),
                        Some(cv),
                        rel,
                    );
                }
            }
            (Some(_), None) => push(
                &mut report,
                Severity::Regression,
                "quantile",
                key.clone(),
                "histogram disappeared from the candidate".to_string(),
            ),
            (None, Some(_)) => push(
                &mut report,
                Severity::Info,
                "quantile",
                key.clone(),
                "new histogram, not in the baseline".to_string(),
            ),
            (None, None) => {}
        }
    }

    // Environment: informational only — machines differ, code doesn't.
    let (be, ce) = (&base.environment, &cand.environment);
    if be.wall_s > 0.0 && ce.wall_s > 0.0 {
        let drift = (ce.wall_s - be.wall_s) / be.wall_s;
        if drift.abs() > rel {
            push(
                &mut report,
                Severity::Info,
                "env",
                "wall_s".into(),
                format!(
                    "{:.3}s → {:.3}s ({}) — wall clock is machine-dependent, not gated",
                    be.wall_s,
                    ce.wall_s,
                    pct(be.wall_s, ce.wall_s)
                ),
            );
        }
    }
    if be.peak_rss_kb > 0 && ce.peak_rss_kb > 0 && be.peak_rss_kb != ce.peak_rss_kb {
        let (b, c) = (be.peak_rss_kb as f64, ce.peak_rss_kb as f64);
        if ((c - b) / b).abs() > rel {
            push(
                &mut report,
                Severity::Info,
                "env",
                "peak_rss_kb".into(),
                format!(
                    "{} kB → {} kB ({}) — allocator/machine-dependent, not gated",
                    be.peak_rss_kb,
                    ce.peak_rss_kb,
                    pct(b, c)
                ),
            );
        }
    }
    report
}

/// Relative comparison for the virtual-time class. A zero baseline
/// with a non-zero candidate (or vice versa) has no defined relative
/// change and is compared against an absolute floor of one histogram
/// base bucket (10 µs).
fn compare_rel(
    report: &mut DiffReport,
    class: &'static str,
    metric: &str,
    base: Option<f64>,
    cand: Option<f64>,
    rel: f64,
) {
    let finding = |severity, detail| Finding {
        severity,
        class,
        metric: metric.to_string(),
        detail,
    };
    match (base, cand) {
        (Some(b), Some(c)) => {
            let worse = if b == 0.0 {
                c > 0.01
            } else {
                (c - b) / b > rel
            };
            let better = if b == 0.0 {
                false
            } else {
                (b - c) / b > rel && c >= 0.0
            };
            if worse {
                report.findings.push(finding(
                    Severity::Regression,
                    format!(
                        "{:.4} → {:.4} ({}) — beyond ±{:.1}%",
                        b,
                        c,
                        pct(b, c),
                        rel * 100.0
                    ),
                ));
            } else if better {
                report.findings.push(finding(
                    Severity::Improvement,
                    format!("{:.4} → {:.4} ({}) — faster than baseline", b, c, pct(b, c)),
                ));
            }
        }
        (Some(b), None) => report.findings.push(finding(
            Severity::Regression,
            format!("{b:.4} → (missing) — metric disappeared from the candidate"),
        )),
        (None, Some(c)) => report.findings.push(finding(
            Severity::Info,
            format!("(absent) → {c:.4} — new metric, not in the baseline"),
        )),
        (None, None) => {}
    }
}

/// Renders the report in the rustc diagnostic style.
pub fn render(base_name: &str, cand_name: &str, report: &DiffReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "bench-diff: {base_name} (baseline) vs {cand_name} (candidate)\n"
    ));
    for f in &report.findings {
        let head = match f.severity {
            Severity::Regression => "error",
            Severity::Improvement => "warning",
            Severity::Info => "note",
        };
        s.push_str(&format!(
            "{head}[bench-diff/{}]: {}\n        {}\n",
            f.class, f.metric, f.detail
        ));
    }
    let verdict = if report.passed() { "PASS" } else { "FAIL" };
    s.push_str(&format!(
        "bench-diff: {} metrics compared, {} regression(s), {} improvement(s) — {verdict}\n",
        report.compared,
        report.regressions(),
        report.improvements(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkap_telemetry::metrics::HistogramSummary;

    fn manifest() -> Manifest {
        let mut m = Manifest::new("scale", "g8_s7");
        m.set_config("groups", 8);
        m.add_count("crypto/GDH/modexp", 1000);
        m.gauge_max("harness/GDH/virtual_ms", 500.0);
        m.put_histogram(
            "harness/GDH/rekey_ms",
            HistogramSummary {
                count: 20,
                min: 1.0,
                p50: 4.0,
                p95: 9.0,
                p99: 9.0,
                max: 9.5,
            },
        );
        m.virtual_ms = 500.0;
        m
    }

    #[test]
    fn identical_manifests_pass() {
        let m = manifest();
        let report = diff(&m, &m.clone(), &Thresholds::default());
        assert!(report.passed(), "{:?}", report.findings);
        assert!(report.compared >= 3);
        let text = render("a.json", "b.json", &report);
        assert!(text.contains("0 regression(s)"));
        assert!(text.ends_with("PASS\n"));
    }

    #[test]
    fn count_changes_are_exact_regressions() {
        let base = manifest();
        let mut cand = manifest();
        cand.counts.insert("crypto/GDH/modexp".into(), 1001);
        let report = diff(&base, &cand, &Thresholds::default());
        assert_eq!(report.regressions(), 1);
        let text = render("a", "b", &report);
        assert!(
            text.contains("error[bench-diff/count]: crypto/GDH/modexp"),
            "{text}"
        );
        assert!(text.contains("1000 → 1001"), "{text}");
        // Fewer ops is an improvement, not a regression.
        cand.counts.insert("crypto/GDH/modexp".into(), 900);
        let report = diff(&base, &cand, &Thresholds::default());
        assert!(report.passed());
        assert_eq!(report.improvements(), 1);
    }

    #[test]
    fn quantiles_tolerate_small_drift_and_flag_slowdowns() {
        let base = manifest();
        // +4% p95: inside the 5% band.
        let mut cand = manifest();
        if let Some(h) = cand.histograms.get_mut("harness/GDH/rekey_ms") {
            h.p95 = 9.36;
            h.max = 9.55;
        }
        assert!(diff(&base, &cand, &Thresholds::default()).passed());
        // +50% p95: the seeded-slowdown fixture case.
        let mut slow = manifest();
        if let Some(h) = slow.histograms.get_mut("harness/GDH/rekey_ms") {
            h.p95 = 13.5;
        }
        let report = diff(&base, &slow, &Thresholds::default());
        assert_eq!(report.regressions(), 1);
        let text = render("a", "b", &report);
        assert!(
            text.contains("error[bench-diff/quantile]: harness/GDH/rekey_ms/p95"),
            "{text}"
        );
    }

    #[test]
    fn disappeared_metrics_fail_new_metrics_inform() {
        let base = manifest();
        let mut cand = manifest();
        cand.counts.remove("crypto/GDH/modexp");
        cand.add_count("crypto/GDH/mont_mul", 5);
        cand.histograms.remove("harness/GDH/rekey_ms");
        let report = diff(&base, &cand, &Thresholds::default());
        assert_eq!(report.regressions(), 2, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Info && f.metric == "crypto/GDH/mont_mul"));
    }

    #[test]
    fn environment_and_config_drift_is_informational() {
        let mut base = manifest();
        let mut cand = manifest();
        base.environment.wall_s = 1.0;
        cand.environment.wall_s = 10.0;
        base.environment.peak_rss_kb = 1000;
        cand.environment.peak_rss_kb = 8000;
        cand.set_config("groups", 16);
        let report = diff(&base, &cand, &Thresholds::default());
        assert!(report.passed(), "{:?}", report.findings);
        let text = render("a", "b", &report);
        assert!(text.contains("note[bench-diff/env]: wall_s"));
        assert!(text.contains("note[bench-diff/config]: config/groups"));
    }

    #[test]
    fn schema_mismatch_is_structural_failure() {
        let base = manifest();
        let mut cand = manifest();
        cand.schema_version = 2;
        let report = diff(&base, &cand, &Thresholds::default());
        assert!(!report.passed());
        assert_eq!(report.findings.len(), 1, "stops at the schema finding");
    }

    #[test]
    fn virtual_ms_regression_is_gated() {
        let base = manifest();
        let mut cand = manifest();
        cand.virtual_ms = 600.0; // +20%
        cand.gauge_max("harness/GDH/virtual_ms", 600.0);
        let report = diff(&base, &cand, &Thresholds::default());
        assert_eq!(report.regressions(), 2, "{:?}", report.findings);
    }
}

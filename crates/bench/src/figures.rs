//! Figure builders: one function per table/figure of the paper plus
//! the extension studies (see the experiment index in DESIGN.md).
//!
//! Every builder takes a `jobs` worker count and fans its independent
//! (protocol, x, repetition) cells across threads via
//! [`gkap_core::par::run_indexed`]. Cell seeds depend only on cell
//! coordinates and results are folded in serial iteration order, so
//! the output is bit-identical for every `jobs` value (asserted by
//! `tests/parallel_determinism.rs`).

use gkap_core::experiment::{
    build_figure_jobs, run_join, run_join_churned, run_leave, run_leave_churned,
    run_leave_weighted, run_merge, run_partition, run_real_formation, ExperimentConfig, SuiteKind,
};
use gkap_core::par;
use gkap_core::protocols::ProtocolKind;
use gkap_gcs::{testbed, GcsConfig};
use gkap_sim::stats::{Figure, Series, Summary};
use gkap_sim::Duration;

/// Fans `cells` across `jobs` workers; outcomes come back in cell
/// order so callers can fold them exactly as a serial loop would.
fn fan<C: Sync, T: Send>(jobs: usize, cells: &[C], f: impl Fn(&C) -> T + Sync) -> Vec<T> {
    par::run_indexed(jobs, cells.len(), |i| f(&cells[i]))
}

/// Figure 11: join, LAN, for the given parameter size.
pub fn fig11_join_lan(suite: SuiteKind, sizes: &[usize], reps: u32, jobs: usize) -> Figure {
    build_figure_jobs(
        &format!("Figure 11 — Join, LAN, {}", suite.label()),
        &testbed::lan(),
        suite,
        sizes,
        reps,
        jobs,
        run_join,
    )
}

/// Figure 12: leave, LAN.
pub fn fig12_leave_lan(suite: SuiteKind, sizes: &[usize], reps: u32, jobs: usize) -> Figure {
    build_figure_jobs(
        &format!("Figure 12 — Leave, LAN, {}", suite.label()),
        &testbed::lan(),
        suite,
        sizes,
        reps,
        jobs,
        run_leave_weighted,
    )
}

/// Figure 14 (left): join, WAN.
pub fn fig14_join_wan(sizes: &[usize], reps: u32, jobs: usize) -> Figure {
    build_figure_jobs(
        "Figure 14 — Join, WAN, DH 512 bits",
        &testbed::wan(),
        SuiteKind::Sim512,
        sizes,
        reps,
        jobs,
        run_join,
    )
}

/// Figure 14 (right): leave, WAN.
pub fn fig14_leave_wan(sizes: &[usize], reps: u32, jobs: usize) -> Figure {
    build_figure_jobs(
        "Figure 14 — Leave, WAN, DH 512 bits",
        &testbed::wan(),
        SuiteKind::Sim512,
        sizes,
        reps,
        jobs,
        run_leave_weighted,
    )
}

/// Extension X4: real initial key agreement (IKA) — the cost of
/// forming an n-member group from scratch with the actual protocol
/// (the paper only measures incremental events; the IKA cost explains
/// why: it runs once per group lifetime).
pub fn ika_figure(gcs: &GcsConfig, title: &str, sizes: &[usize], reps: u32, jobs: usize) -> Figure {
    build_figure_jobs(
        title,
        gcs,
        SuiteKind::Sim512,
        sizes,
        reps,
        jobs,
        run_real_formation,
    )
}

/// Extension X5: scalability beyond the paper — join and leave up to
/// 100 members on the LAN (the paper stops at 50; §3.1 says Spread
/// "is designed to support small to medium groups").
pub fn scale_figure(sizes: &[usize], reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new("Extension — scalability: join (solid) to n=100, LAN, DH 512");
    let mut cells: Vec<(ProtocolKind, usize, u32)> = Vec::new();
    for kind in ProtocolKind::all() {
        for &n in sizes {
            for rep in 0..reps {
                cells.push((kind, n, rep));
            }
        }
    }
    let outcomes = fan(jobs, &cells, |&(kind, n, rep)| {
        let cfg = ExperimentConfig {
            protocol: kind,
            gcs: testbed::lan(),
            suite: SuiteKind::Sim512,
            seed: 0x5eed ^ ((rep as u64 + 1) << 20) ^ n as u64,
            confirm_keys: false,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok, "{kind} scale join n={n}");
        outcome
    });
    let mut it = outcomes.into_iter();
    for kind in ProtocolKind::all() {
        let mut series = Series::new(kind.name());
        for &n in sizes {
            let mut summary = Summary::new();
            for outcome in it.by_ref().take(reps as usize) {
                summary.add(outcome.elapsed_ms);
            }
            series.push(n as f64, summary);
        }
        fig.push(series);
    }
    fig
}

/// Extension X2: partition — half the group drops away at once.
pub fn partition_figure(
    gcs: &GcsConfig,
    title: &str,
    sizes: &[usize],
    reps: u32,
    jobs: usize,
) -> Figure {
    build_figure_jobs(
        title,
        gcs,
        SuiteKind::Sim512,
        sizes,
        reps,
        jobs,
        |cfg, n| run_partition(cfg, n, (n / 2).max(1).min(n - 1)),
    )
}

/// Extension X2: merge — two equal groups heal.
pub fn merge_figure(
    gcs: &GcsConfig,
    title: &str,
    sizes: &[usize],
    reps: u32,
    jobs: usize,
) -> Figure {
    build_figure_jobs(
        title,
        gcs,
        SuiteKind::Sim512,
        sizes,
        reps,
        jobs,
        |cfg, n| {
            let half = (n / 2).max(1);
            run_merge(cfg, n - half, half)
        },
    )
}

/// Extension X1 (§7 future work): medium-delay WAN sweep — total join
/// time at a fixed group size as the inter-site one-way latency grows,
/// locating the computation/communication crossover.
pub fn crossover_figure(n: usize, delays_ms: &[u64], reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Crossover — Join at n={n}, symmetric 3-site WAN, DH 512 bits (x = one-way delay ms)"
    ));
    let mut cells: Vec<(ProtocolKind, u64, u32)> = Vec::new();
    for kind in ProtocolKind::all() {
        for &d in delays_ms {
            for rep in 0..reps {
                cells.push((kind, d, rep));
            }
        }
    }
    let outcomes = fan(jobs, &cells, |&(kind, d, rep)| {
        let cfg = ExperimentConfig {
            protocol: kind,
            gcs: testbed::medium_wan(Duration::from_millis(d)),
            suite: SuiteKind::Sim512,
            seed: 0x5eed ^ ((rep as u64 + 1) << 24) ^ d,
            confirm_keys: false,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok, "{kind} crossover join at delay {d}");
        outcome
    });
    let mut it = outcomes.into_iter();
    for kind in ProtocolKind::all() {
        let mut series = Series::new(kind.name());
        for &d in delays_ms {
            let mut summary = Summary::new();
            for outcome in it.by_ref().take(reps as usize) {
                summary.add(outcome.elapsed_ms);
            }
            series.push(d as f64, summary);
        }
        fig.push(series);
    }
    fig
}

/// Ablation A1: BD join time vs flow-control budget. Run on the WAN,
/// where each extra token rotation costs ~160 ms and the budget binds.
pub fn flow_control_ablation(n: usize, budgets: &[usize], reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Ablation — BD join at n={n} vs flow control (msgs per token visit), WAN, DH 512"
    ));
    let mut cells: Vec<(usize, u32)> = Vec::new();
    for &b in budgets {
        for rep in 0..reps {
            cells.push((b, rep));
        }
    }
    let outcomes = fan(jobs, &cells, |&(b, rep)| {
        let mut gcs = testbed::wan();
        gcs.flow_control_max_msgs = b;
        let cfg = ExperimentConfig {
            protocol: ProtocolKind::Bd,
            gcs,
            suite: SuiteKind::Sim512,
            seed: 0x5eed ^ ((rep as u64 + 1) << 16) ^ b as u64,
            confirm_keys: false,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok);
        outcome
    });
    let mut it = outcomes.into_iter();
    let mut series = Series::new("BD");
    for &b in budgets {
        let mut summary = Summary::new();
        for outcome in it.by_ref().take(reps as usize) {
            summary.add(outcome.elapsed_ms);
        }
        series.push(b as f64, summary);
    }
    fig.push(series);
    fig
}

/// Ablation A2: sponsor location (§6.2.3) — WAN leave time per leaver
/// position. TGDH's cost varies with where the sponsor lands; GDH and
/// CKD, whose controller is fixed, stay flat.
pub fn sponsor_location_ablation(n: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Ablation — WAN leave at n={n} by leaver position (sponsor roams in TGDH)"
    ));
    for kind in [ProtocolKind::Tgdh, ProtocolKind::Gdh, ProtocolKind::Ckd] {
        let mut series = Series::new(kind.name());
        for pos_pct in [10usize, 30, 50, 70, 90] {
            let mut summary = Summary::new();
            for seed_extra in 0..2u64 {
                let cfg = ExperimentConfig {
                    protocol: kind,
                    gcs: testbed::wan(),
                    suite: SuiteKind::Sim512,
                    seed: 0x5eed ^ (seed_extra << 8) ^ pos_pct as u64,
                    confirm_keys: false,
                    telemetry: false,
                };
                let outcome = leave_at_position(&cfg, n, pos_pct);
                summary.add(outcome);
            }
            series.push(pos_pct as f64, summary);
        }
        fig.push(series);
    }
    fig
}

fn leave_at_position(cfg: &ExperimentConfig, n: usize, pos_pct: usize) -> f64 {
    use gkap_core::experiment::LeaveTarget;
    // Approximate position targeting through the provided targets.
    let target = if pos_pct < 25 {
        LeaveTarget::Oldest
    } else if pos_pct > 75 {
        LeaveTarget::Newest
    } else {
        LeaveTarget::Middle
    };
    let outcome = run_leave(cfg, n, target);
    assert!(outcome.ok);
    outcome.elapsed_ms
}

/// Ablation A4: signature scheme — RSA (e = 3, cheap verify) versus
/// DSA (two-exponentiation verify) for every protocol's join. BD, with
/// its 2(n-1) verifications per member, suffers most (§6.1.1).
pub fn signature_scheme_ablation(n: usize, reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Ablation — signature scheme: join at n={n}, LAN, DH 512 (x: 0 = RSA e=3, 1 = DSA)"
    ));
    let variants = [(0.0, SuiteKind::Sim512), (1.0, SuiteKind::Sim512Dsa)];
    let mut cells: Vec<(ProtocolKind, SuiteKind, u32)> = Vec::new();
    for kind in ProtocolKind::all() {
        for (_x, suite) in variants {
            for rep in 0..reps {
                cells.push((kind, suite, rep));
            }
        }
    }
    let outcomes = fan(jobs, &cells, |&(kind, suite, rep)| {
        let cfg = ExperimentConfig {
            protocol: kind,
            gcs: testbed::lan(),
            suite,
            seed: 0x5eed ^ ((rep as u64 + 1) << 40),
            confirm_keys: false,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok, "{kind} signature ablation");
        outcome
    });
    let mut it = outcomes.into_iter();
    for kind in ProtocolKind::all() {
        let mut series = Series::new(kind.name());
        for (x, _suite) in variants {
            let mut summary = Summary::new();
            for outcome in it.by_ref().take(reps as usize) {
                summary.add(outcome.elapsed_ms);
            }
            series.push(x, summary);
        }
        fig.push(series);
    }
    fig
}

/// Ablation A5 (footnote 7): TGDH with the paper's best-effort
/// balancing versus AVL tree management — join time and tree height
/// after churn.
pub fn avl_policy_ablation(n: usize, churn: usize) -> Figure {
    use gkap_core::experiment::run_churned_with_factory;
    use gkap_core::protocols::tgdh::Tgdh;
    use gkap_core::protocols::GkaProtocol;
    let mut fig = Figure::new(format!(
        "Ablation — TGDH tree policy after churn({churn}) at n={n}, LAN DH 512 \
         (x: 0 = join ms, 1 = tree height)"
    ));
    for (label, avl) in [("paper", false), ("avl", true)] {
        let factory = move || -> Box<dyn GkaProtocol> {
            if avl {
                Box::new(Tgdh::new_avl())
            } else {
                Box::new(Tgdh::new())
            }
        };
        let cfg = ExperimentConfig {
            protocol: ProtocolKind::Tgdh,
            gcs: testbed::lan(),
            suite: SuiteKind::Sim512,
            seed: 0x471_5eed,
            confirm_keys: false,
            telemetry: false,
        };
        let (outcome, height) = run_churned_with_factory(&cfg, &factory, n, churn);
        assert!(outcome.ok, "TGDH {label} policy");
        let mut series = Series::new(format!("TGDH-{label}"));
        let mut s0 = Summary::new();
        s0.add(outcome.elapsed_ms);
        series.push(0.0, s0);
        let mut s1 = Summary::new();
        // TGDH runs always report a height; fall back to 0 rather
        // than panicking if a future factory stops reporting one.
        s1.add(height.unwrap_or(0) as f64);
        series.push(1.0, s1);
        fig.push(series);
    }
    fig
}

/// Extension X3: lossy links — total join time versus daemon-link
/// loss rate (the hostile-network regime the paper's related work on
/// Bimodal Multicast targets). Token-driven retransmission recovers
/// every loss; the curves show the latency price.
pub fn lossy_links_figure(n: usize, loss_pcts: &[u32], reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Extension — lossy WAN: join at n={n}, DH 512 (x = loss % per daemon link)"
    ));
    let kinds = [ProtocolKind::Tgdh, ProtocolKind::Bd, ProtocolKind::Ckd];
    let mut cells: Vec<(ProtocolKind, u32, u32)> = Vec::new();
    for kind in kinds {
        for &pct in loss_pcts {
            for rep in 0..reps {
                cells.push((kind, pct, rep));
            }
        }
    }
    let outcomes = fan(jobs, &cells, |&(kind, pct, rep)| {
        let mut gcs = testbed::wan();
        gcs.loss_rate = pct as f64 / 100.0;
        gcs.loss_seed = 0x1055 ^ (rep as u64) << 8 ^ pct as u64;
        let cfg = ExperimentConfig {
            protocol: kind,
            gcs,
            suite: SuiteKind::Sim512,
            seed: 0x5eed ^ ((rep as u64 + 1) << 48),
            confirm_keys: false,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok, "{kind} lossy join at {pct}%");
        outcome
    });
    let mut it = outcomes.into_iter();
    for kind in kinds {
        let mut series = Series::new(kind.name());
        for &pct in loss_pcts {
            let mut summary = Summary::new();
            for outcome in it.by_ref().take(reps as usize) {
                summary.add(outcome.elapsed_ms);
            }
            series.push(pct as f64, summary);
        }
        fig.push(series);
    }
    fig
}

/// Ablation A6: heterogeneous hardware — one machine runs at a
/// fraction of the baseline speed (the paper's WAN testbed mixed a
/// 850 MHz Athlon and a 930 MHz PIII into the 666 MHz cluster). The
/// figure shows join time versus the slow machine's speed factor for
/// a protocol whose critical path can land on it (TGDH sponsor) and
/// one that is symmetric (BD — every member is on the critical path).
pub fn hetero_machine_ablation(n: usize, reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Ablation — one slow machine: join at n={n}, LAN, DH 512 (x = slow machine speed factor %)"
    ));
    let kinds = [ProtocolKind::Tgdh, ProtocolKind::Bd, ProtocolKind::Gdh];
    let pcts = [100u64, 75, 50, 25];
    let mut cells: Vec<(ProtocolKind, u64, u32)> = Vec::new();
    for kind in kinds {
        for pct in pcts {
            for rep in 0..reps {
                cells.push((kind, pct, rep));
            }
        }
    }
    let outcomes = fan(jobs, &cells, |&(kind, pct, rep)| {
        let mut gcs = testbed::lan();
        // Rebuild the topology with machine 0 slowed down.
        let mut machines = Vec::new();
        for m in 0..gcs.topology.machine_count() {
            let mut cfgm = gcs.topology.machine(m).clone();
            if m == 0 {
                cfgm.speed = pct as f64 / 100.0;
            }
            machines.push(cfgm);
        }
        gcs.topology = gkap_gcs::Topology::new(
            vec![gkap_gcs::SiteCfg {
                name: "site0".into(),
            }],
            machines,
            vec![vec![Duration::ZERO]],
            Duration::from_micros(40),
        );
        let cfg = ExperimentConfig {
            protocol: kind,
            gcs,
            suite: SuiteKind::Sim512,
            seed: 0x5eed ^ ((rep as u64 + 1) << 56) ^ pct,
            confirm_keys: false,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok, "{kind} hetero join at {pct}%");
        outcome
    });
    let mut it = outcomes.into_iter();
    for kind in kinds {
        let mut series = Series::new(kind.name());
        for pct in pcts {
            let mut summary = Summary::new();
            for outcome in it.by_ref().take(reps as usize) {
                summary.add(outcome.elapsed_ms);
            }
            series.push(pct as f64, summary);
        }
        fig.push(series);
    }
    fig
}

/// Ablation A7: key confirmation (§5's optional digest round) —
/// join time with and without confirmation, LAN and WAN.
pub fn key_confirmation_ablation(n: usize, reps: u32, jobs: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Ablation — key confirmation: join at n={n}, DH 512 (x: 0 = off, 1 = on)"
    ));
    let nets = [("LAN", testbed::lan()), ("WAN", testbed::wan())];
    let kinds = [ProtocolKind::Tgdh, ProtocolKind::Gdh];
    let variants = [(0.0, false), (1.0, true)];
    let mut cells: Vec<(GcsConfig, ProtocolKind, bool, u32)> = Vec::new();
    for (_net, gcs) in &nets {
        for kind in kinds {
            for (_x, confirm) in variants {
                for rep in 0..reps {
                    cells.push((gcs.clone(), kind, confirm, rep));
                }
            }
        }
    }
    let outcomes = fan(jobs, &cells, |(gcs, kind, confirm, rep)| {
        let cfg = ExperimentConfig {
            protocol: *kind,
            gcs: gcs.clone(),
            suite: SuiteKind::Sim512,
            seed: 0x5eed ^ ((*rep as u64 + 1) << 12),
            confirm_keys: *confirm,
            telemetry: false,
        };
        let outcome = run_join(&cfg, n);
        assert!(outcome.ok, "{kind} confirmation ablation");
        outcome
    });
    let mut it = outcomes.into_iter();
    for (net, _gcs) in &nets {
        for kind in kinds {
            let mut series = Series::new(format!("{}-{}", kind.name(), net));
            for (x, _confirm) in variants {
                let mut summary = Summary::new();
                for outcome in it.by_ref().take(reps as usize) {
                    summary.add(outcome.elapsed_ms);
                }
                series.push(x, summary);
            }
            fig.push(series);
        }
    }
    fig
}

/// Ablation A3: tree shape — TGDH and STR join/leave on a pristine
/// (balanced bootstrap) group versus one scrambled by churn
/// (§6.1.2's "random-looking tree" discussion).
pub fn tree_shape_ablation(n: usize, churn: usize) -> Figure {
    let mut fig = Figure::new(format!(
        "Ablation — tree shape: join/leave at n={n}, pristine vs churned({churn}), LAN DH 512"
    ));
    for kind in [ProtocolKind::Tgdh, ProtocolKind::Str] {
        for (label, churned) in [("pristine", false), ("churned", true)] {
            let mut series = Series::new(format!("{}-{}", kind.name(), label));
            for (x, is_join) in [(0.0, true), (1.0, false)] {
                let cfg = ExperimentConfig {
                    protocol: kind,
                    gcs: testbed::lan(),
                    suite: SuiteKind::Sim512,
                    seed: 0xab5eed,
                    confirm_keys: false,
                    telemetry: false,
                };
                let outcome = match (is_join, churned) {
                    (true, false) => run_join(&cfg, n),
                    (true, true) => run_join_churned(&cfg, n, churn),
                    (false, false) => run_leave_weighted(&cfg, n),
                    (false, true) => run_leave_churned(&cfg, n, churn),
                };
                assert!(outcome.ok, "{kind} {label}");
                let mut s = Summary::new();
                s.add(outcome.elapsed_ms);
                series.push(x, s); // x: 0 = join, 1 = leave
            }
            fig.push(series);
        }
    }
    fig
}

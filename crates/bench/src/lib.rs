//! Shared harness code for the reproduction binary and the Criterion
//! benches: figure builders for every experiment in DESIGN.md's index,
//! plus the micro-benchmarks of the group communication substrate
//! (§6.1.1 / §6.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod diff;
pub mod figures;
pub mod loss_sweep;
pub mod manifest;
pub mod micro;
pub mod scale;
pub mod trace;

use std::io::Write;
use std::path::Path;

use gkap_sim::stats::Figure;

/// Where harness narration (tables, progress notes) goes. Replaces
/// scattered `println!`/`eprintln!` so output can be silenced
/// (`--quiet`) or captured in tests.
#[derive(Debug)]
pub struct Console {
    sink: Sink,
}

#[derive(Debug)]
enum Sink {
    /// Tables to stdout, notes to stderr (the default CLI behaviour).
    Stdio,
    /// Swallow everything (`--quiet`: CSV files are the only output).
    Quiet,
    /// Capture everything in order (tests).
    Buffer(String),
}

impl Console {
    /// Console writing tables to stdout and notes to stderr.
    pub fn stdio() -> Self {
        Console { sink: Sink::Stdio }
    }

    /// Console that discards all narration.
    pub fn quiet() -> Self {
        Console { sink: Sink::Quiet }
    }

    /// Console that captures all narration in memory.
    pub fn buffered() -> Self {
        Console {
            sink: Sink::Buffer(String::new()),
        }
    }

    /// Emits one line of primary output (a table row, a result path).
    pub fn say(&mut self, line: impl AsRef<str>) {
        match &mut self.sink {
            Sink::Stdio => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{}", line.as_ref());
            }
            Sink::Quiet => {}
            Sink::Buffer(buf) => {
                buf.push_str(line.as_ref());
                buf.push('\n');
            }
        }
    }

    /// Emits one line of side-channel narration (progress, timing).
    pub fn note(&mut self, line: impl AsRef<str>) {
        match &mut self.sink {
            Sink::Stdio => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{}", line.as_ref());
            }
            Sink::Quiet => {}
            Sink::Buffer(buf) => {
                buf.push_str(line.as_ref());
                buf.push('\n');
            }
        }
    }

    /// Everything captured so far (buffered consoles only).
    pub fn captured(&self) -> Option<&str> {
        match &self.sink {
            Sink::Buffer(buf) => Some(buf.as_str()),
            _ => None,
        }
    }
}

/// Writes `text` to `dir/name`, creating `dir` first, with one-line
/// diagnostics naming the path on failure (a read-only results
/// directory must degrade to an error message, not a panic).
pub fn write_output(dir: &Path, name: &str, text: &str) -> Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create output dir {}: {e}", dir.display()))?;
    let path = dir.join(name);
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Writes a figure as CSV + prints its table; returns the rendered
/// table text, or a one-line diagnostic if the output directory or
/// CSV cannot be written. The figure's deterministic shape also lands
/// in the step's run manifest: a point count per figure and one
/// histogram of per-point mean latencies per series, so `bench-diff`
/// can gate every figure workload without parsing CSVs.
pub fn emit(
    fig: &Figure,
    out_dir: &Path,
    stem: &str,
    con: &mut Console,
    man: &mut manifest::Manifest,
) -> Result<String, String> {
    let csv_path = write_output(out_dir, &format!("{stem}.csv"), &fig.to_csv())?;
    for series in &fig.series {
        man.add_count(
            &format!("harness/{stem}/{}/points", series.name),
            series.points.len() as u64,
        );
        let mut h = gkap_telemetry::metrics::LogHistogram::default();
        for p in &series.points {
            h.record(p.summary.mean());
        }
        if h.count() > 0 {
            man.put_histogram(
                &format!("harness/{stem}/{}/mean_ms", series.name),
                h.summary(),
            );
        }
    }
    let table = fig.to_table();
    con.say(&table);
    con.say(format!("[written: {}]", csv_path.display()));
    Ok(table)
}

/// The group sizes sampled for figures (the paper plots 2..50; we
/// sample the same range densely enough to show every knee, including
/// the multiples of 13 where machine sharing kicks in).
pub fn figure_sizes() -> Vec<usize> {
    vec![2, 5, 8, 11, 13, 14, 17, 20, 23, 26, 27, 30, 35, 40, 45, 50]
}

/// Smaller sample for the slower WAN figures.
pub fn wan_sizes() -> Vec<usize> {
    vec![2, 5, 8, 11, 14, 20, 26, 32, 40, 50]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_console_captures_in_order() {
        let mut con = Console::buffered();
        con.say("table row");
        con.note("[progress]");
        assert_eq!(con.captured(), Some("table row\n[progress]\n"));
    }

    #[test]
    fn quiet_console_discards() {
        let mut con = Console::quiet();
        con.say("nothing");
        assert_eq!(con.captured(), None);
    }
}

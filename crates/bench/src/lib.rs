//! Shared harness code for the reproduction binary and the Criterion
//! benches: figure builders for every experiment in DESIGN.md's index,
//! plus the micro-benchmarks of the group communication substrate
//! (§6.1.1 / §6.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod figures;

use std::io::Write;
use std::path::Path;

use gkap_sim::stats::Figure;

/// Writes a figure as CSV + prints its table; returns the rendered
/// table text.
///
/// # Panics
///
/// Panics if the output directory cannot be written.
pub fn emit(fig: &Figure, out_dir: &Path, stem: &str) -> String {
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let csv_path = out_dir.join(format!("{stem}.csv"));
    let mut f = std::fs::File::create(&csv_path).expect("create csv");
    f.write_all(fig.to_csv().as_bytes()).expect("write csv");
    let table = fig.to_table();
    println!("{table}");
    println!("[written: {}]", csv_path.display());
    table
}

/// The group sizes sampled for figures (the paper plots 2..50; we
/// sample the same range densely enough to show every knee, including
/// the multiples of 13 where machine sharing kicks in).
pub fn figure_sizes() -> Vec<usize> {
    vec![2, 5, 8, 11, 13, 14, 17, 20, 23, 26, 27, 30, 35, 40, 45, 50]
}

/// Smaller sample for the slower WAN figures.
pub fn wan_sizes() -> Vec<usize> {
    vec![2, 5, 8, 11, 14, 20, 26, 32, 40, 50]
}

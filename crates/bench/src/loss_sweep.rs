//! The `repro chaos --loss-sweep` campaign: loss rates × {FEC,
//! retransmission-only} × protocols on the LAN and WAN testbeds.
//!
//! Each cell runs one secure group end to end — initial key
//! agreement, a join, a leave — under a seeded per-copy loss process,
//! then checks the chaos invariants (quiescence, view synchrony, key
//! convergence among survivors). The `fec` mode arms the engine's
//! parity fan-out with a per-rate parity budget and a backoff long
//! enough that local repair always wins the race against the request
//! path; the `retrans` mode is the pre-FEC engine (parity 0, eager
//! requests). Cells fan out over worker threads via
//! [`gkap_core::par::run_indexed`] and every cell is a self-contained
//! serial simulation, so the CSV and the manifest body are
//! bit-identical for any `--jobs` (and trivially for `--shards`,
//! which the sweep does not consume).

use std::rc::Rc;

use gkap_core::experiment::SuiteKind;
use gkap_core::par;
use gkap_core::protocols::ProtocolKind;
use gkap_core::{AgreementPhase, SecureMember};
use gkap_gcs::{testbed, GcsConfig, SimWorld};
use gkap_sim::Duration;
use gkap_telemetry::metrics::LogHistogram;

use crate::manifest::Manifest;

/// The swept loss rates, in percent.
pub const LOSS_PCTS: [u32; 4] = [1, 5, 10, 20];

/// Recovery mode of a sweep cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepMode {
    /// Pre-FEC engine: parity 0, eager gap requests.
    Retrans,
    /// FEC-coded fan-out: per-rate parity budget, patient backoff.
    Fec,
}

impl SweepMode {
    /// The CSV spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            SweepMode::Retrans => "retrans",
            SweepMode::Fec => "fec",
        }
    }
}

/// Parameters of one `repro chaos --loss-sweep` invocation.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Campaign seed (drives every cell's loss process).
    pub seed: u64,
    /// Worker threads for the cell fan-out.
    pub jobs: usize,
    /// Restrict to one protocol (all five when `None`).
    pub protocol: Option<ProtocolKind>,
}

/// One sweep cell's identity and outcome — one CSV row.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Testbed name (`lan` or `wan`).
    pub net: &'static str,
    /// Loss rate in percent.
    pub loss_pct: u32,
    /// Recovery mode.
    pub mode: SweepMode,
    /// Protocol name.
    pub protocol: &'static str,
    /// Daemon-to-daemon copies lost in transit.
    pub lost: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Token visits that issued at least one retransmission request.
    pub retrans_rounds: u64,
    /// Data messages reconstructed locally from parity.
    pub fec_repairs: u64,
    /// Parity shard copies dispatched.
    pub parity_sent: u64,
    /// Virtual ns of loss-recovery windows closed by FEC repair.
    pub fec_repair_ns: u64,
    /// Virtual ns of loss-recovery windows closed by retransmission.
    pub retransmission_ns: u64,
    /// Virtual ms from t=0 to quiescence after the final change.
    pub elapsed_ms: f64,
    /// Whether the cell held every invariant (quiescence, view
    /// synchrony, key convergence, nobody gave up).
    pub converged: bool,
}

impl SweepRow {
    /// Total recovery time: the two attribution buckets sum exactly
    /// into it by construction.
    pub fn recovery_ns(&self) -> u64 {
        self.fec_repair_ns + self.retransmission_ns
    }
}

/// The parity floor for a loss rate: generous enough that, with the
/// paper testbeds' fan-out generations (≤ 20 messages per token
/// visit), the surviving parity covers the expected per-generation
/// losses with margin — the property the seeded sweep pins.
pub fn parity_for(loss_pct: u32) -> usize {
    match loss_pct {
        0..=1 => 2,
        2..=5 => 4,
        6..=10 => 6,
        _ => 10,
    }
}

/// All cells of a sweep, in deterministic (net, rate, mode, protocol)
/// order.
fn cells(opts: &SweepOptions) -> Vec<(&'static str, u32, SweepMode, ProtocolKind)> {
    let protocols: Vec<ProtocolKind> = match opts.protocol {
        Some(p) => vec![p],
        None => ProtocolKind::all().to_vec(),
    };
    let mut out = Vec::new();
    for net in ["lan", "wan"] {
        for pct in LOSS_PCTS {
            for mode in [SweepMode::Retrans, SweepMode::Fec] {
                for &p in &protocols {
                    out.push((net, pct, mode, p));
                }
            }
        }
    }
    out
}

/// The engine configuration of one cell. Both modes of a
/// `(net, rate, protocol)` pair share the same loss seed, so the FEC
/// column is a like-for-like comparison against the baseline.
fn cell_config(
    net: &str,
    loss_pct: u32,
    mode: SweepMode,
    proto: ProtocolKind,
    seed: u64,
) -> GcsConfig {
    let mut cfg = if net == "lan" {
        testbed::lan()
    } else {
        testbed::wan()
    };
    cfg.loss_rate = f64::from(loss_pct) / 100.0;
    cfg.loss_seed = seed
        ^ (loss_pct as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (proto as u64).wrapping_mul(0x85eb_ca6b_c2b2_ae35)
        ^ if net == "lan" {
            0
        } else {
            0x57a4_17ab_1e55_ed01
        };
    if mode == SweepMode::Fec {
        cfg.fec_parity = parity_for(loss_pct);
        cfg.fec_parity_max = 16;
        // Patient backoff: local repair must win the race against the
        // request path, so the first retry waits several token
        // rotations (LAN rotations are ~100 µs, WAN ~120 ms).
        let (base, max) = if net == "lan" {
            (Duration::from_millis(10), Duration::from_millis(80))
        } else {
            (Duration::from_millis(2_000), Duration::from_millis(16_000))
        };
        cfg.retrans_backoff = base;
        cfg.retrans_backoff_max = max;
    }
    cfg
}

/// Runs one cell: a 6-member secure group keys up, admits a seventh
/// member, then loses one — all under the cell's loss process — and
/// the survivors must agree on the final view and key.
fn run_cell(
    net: &'static str,
    loss_pct: u32,
    mode: SweepMode,
    proto: ProtocolKind,
    seed: u64,
) -> SweepRow {
    let cfg = cell_config(net, loss_pct, mode, proto, seed);
    let mut world = SimWorld::new(cfg);
    let suite = SuiteKind::Sim512.shared();
    for i in 0..8usize {
        world.add_client(Box::new(SecureMember::new(
            proto,
            Rc::clone(&suite),
            900 + i as u64,
            Some(17),
        )));
    }
    world.install_initial_view_of((0..6).collect());
    world.run_until_quiescent();
    world.inject_join(6);
    world.run_until_quiescent();
    world.inject_leave(1);
    world.run_until_quiescent();

    let mut converged = world.quiescent();
    if let Some(view) = world.view().cloned() {
        let members: Vec<usize> = view
            .members
            .iter()
            .copied()
            .filter(|&c| world.client_alive(c))
            .collect();
        converged &= !members.is_empty();
        let mut key = None;
        for &c in &members {
            let m = world.client::<SecureMember>(c);
            converged &= m.last_view_epoch() == Some(view.id);
            converged &= m.phase() != AgreementPhase::GivenUp;
            match (m.secret(view.id), &key) {
                (None, _) => converged = false,
                (Some(s), None) => key = Some(s.clone()),
                (Some(s), Some(k)) => converged &= s == k,
            }
        }
    } else {
        converged = false;
    }

    let s = world.stats();
    SweepRow {
        net,
        loss_pct,
        mode,
        protocol: proto.name(),
        lost: s.messages_lost,
        retransmissions: s.retransmissions,
        retrans_rounds: s.retransmission_rounds,
        fec_repairs: s.fec_repairs,
        parity_sent: s.parity_shards_sent,
        fec_repair_ns: s.fec_repair_recovery_ns,
        retransmission_ns: s.retransmission_recovery_ns,
        elapsed_ms: world.now().as_millis_f64(),
        converged,
    }
}

/// Runs the full sweep. Deterministic across `jobs`: the fan-out
/// preserves cell order and every cell is self-contained.
pub fn run_sweep(opts: &SweepOptions) -> Vec<SweepRow> {
    let grid = cells(opts);
    par::run_indexed(opts.jobs, grid.len(), |i| {
        let (net, pct, mode, proto) = grid[i];
        run_cell(net, pct, mode, proto, opts.seed)
    })
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// CSV of the sweep rows, fixed-precision so equal runs render equal
/// bytes. The three `_ms` columns derive from exact virtual-ns sums:
/// `recovery_ms` is always `fec_repair_ms + retransmission_ms`.
pub fn sweep_csv(seed: u64, rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "seed,net,loss_pct,mode,protocol,lost,retransmissions,retrans_rounds,\
         fec_repairs,parity_sent,fec_repair_ms,retransmission_ms,recovery_ms,\
         elapsed_ms,converged\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{}\n",
            seed,
            r.net,
            r.loss_pct,
            r.mode.name(),
            r.protocol,
            r.lost,
            r.retransmissions,
            r.retrans_rounds,
            r.fec_repairs,
            r.parity_sent,
            ns_to_ms(r.fec_repair_ns),
            ns_to_ms(r.retransmission_ns),
            ns_to_ms(r.recovery_ns()),
            r.elapsed_ms,
            r.converged,
        ));
    }
    out
}

/// Human-readable summary: one line per (net, rate, mode) with the
/// rounds/repairs totals across protocols.
pub fn sweep_table(seed: u64, rows: &[SweepRow]) -> String {
    let mut out = format!(
        "# Loss sweep — seed {seed}, {} cells (virtual ms)\n\
         {:<4} {:>5} {:>8} {:>6} {:>8} {:>8} {:>8} {:>12} {:>10}\n",
        rows.len(),
        "net",
        "loss%",
        "mode",
        "lost",
        "rounds",
        "repairs",
        "parity",
        "recovery_ms",
        "converged",
    );
    for net in ["lan", "wan"] {
        for pct in LOSS_PCTS {
            for mode in [SweepMode::Retrans, SweepMode::Fec] {
                let cell: Vec<&SweepRow> = rows
                    .iter()
                    .filter(|r| r.net == net && r.loss_pct == pct && r.mode == mode)
                    .collect();
                if cell.is_empty() {
                    continue;
                }
                out.push_str(&format!(
                    "{:<4} {:>5} {:>8} {:>6} {:>8} {:>8} {:>8} {:>12.3} {:>10}\n",
                    net,
                    pct,
                    mode.name(),
                    cell.iter().map(|r| r.lost).sum::<u64>(),
                    cell.iter().map(|r| r.retrans_rounds).sum::<u64>(),
                    cell.iter().map(|r| r.fec_repairs).sum::<u64>(),
                    cell.iter().map(|r| r.parity_sent).sum::<u64>(),
                    ns_to_ms(cell.iter().map(|r| r.recovery_ns()).sum::<u64>()),
                    cell.iter().filter(|r| r.converged).count(),
                ));
            }
        }
    }
    out
}

/// Builds the deterministic manifest body of a sweep: per-cell
/// counters plus recovery/elapsed histograms. Every quantity is a
/// pure function of the seed, so the rendered body is bit-identical
/// across `--jobs` values.
pub fn sweep_manifest(opts: &SweepOptions, rows: &[SweepRow]) -> Manifest {
    let mut man = Manifest::new("chaos", &format!("loss_s{}", opts.seed));
    man.set_config("loss_sweep_seed", opts.seed);
    man.set_config("protocol", opts.protocol.map(|p| p.name()).unwrap_or("all"));
    man.add_count("harness/loss_sweep/cells", rows.len() as u64);
    man.add_count(
        "harness/loss_sweep/converged",
        rows.iter().filter(|r| r.converged).count() as u64,
    );
    let mut recovery = LogHistogram::default();
    let mut elapsed = LogHistogram::default();
    for r in rows {
        let cell = format!(
            "harness/loss_sweep/{}/p{}/{}",
            r.net,
            r.loss_pct,
            r.mode.name()
        );
        man.add_count(&format!("{cell}/lost"), r.lost);
        man.add_count(&format!("{cell}/retrans_rounds"), r.retrans_rounds);
        man.add_count(&format!("{cell}/fec_repairs"), r.fec_repairs);
        man.add_count(&format!("{cell}/parity_sent"), r.parity_sent);
        recovery.record(ns_to_ms(r.recovery_ns()));
        elapsed.record(r.elapsed_ms);
        man.virtual_ms += r.elapsed_ms;
    }
    man.put_histogram("harness/loss_sweep/recovery_ms", recovery.summary());
    man.put_histogram("harness/loss_sweep/elapsed_ms", elapsed.summary());
    man
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_grid_is_deterministic_and_complete() {
        let opts = SweepOptions {
            seed: 7,
            jobs: 1,
            protocol: None,
        };
        let grid = cells(&opts);
        // 2 nets × 4 rates × 2 modes × 5 protocols.
        assert_eq!(grid.len(), 80);
        assert_eq!(grid, cells(&opts));
        let one = SweepOptions {
            protocol: Some(ProtocolKind::Bd),
            ..opts
        };
        assert_eq!(cells(&one).len(), 16);
    }

    #[test]
    fn parity_floor_scales_with_loss() {
        assert_eq!(parity_for(1), 2);
        assert_eq!(parity_for(5), 4);
        assert_eq!(parity_for(10), 6);
        assert_eq!(parity_for(20), 10);
    }

    #[test]
    fn modes_share_the_loss_seed_for_like_for_like_cells() {
        let a = cell_config("wan", 10, SweepMode::Retrans, ProtocolKind::Gdh, 7);
        let b = cell_config("wan", 10, SweepMode::Fec, ProtocolKind::Gdh, 7);
        assert_eq!(a.loss_seed, b.loss_seed);
        assert_eq!(a.fec_parity, 0, "baseline keeps the pre-FEC engine");
        assert!(b.fec_parity > 0);
    }
}

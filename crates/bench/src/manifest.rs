//! Versioned run manifests: the JSON record every `repro` command
//! writes next to its CSVs (`results/RUN_<cmd>_<tag>.json`).
//!
//! A manifest splits into two parts with different determinism
//! contracts:
//!
//! * The **deterministic body** — config, op counts, gauges, histogram
//!   summaries and total virtual time — is a pure function of the
//!   workload parameters. [`Manifest::deterministic_json`] renders
//!   exactly this part, and the scale determinism test asserts the
//!   bytes are identical across `--jobs` values.
//! * The **environment** object — git revision, wall-clock seconds,
//!   peak RSS, worker threads — describes the machine and build that
//!   produced the run. `bench-diff` treats it as informational only.
//!
//! The workspace vendors no JSON serializer, so both the writer and
//! the reader live here: a fixed-precision renderer (so equal runs
//! render equal bytes) and a small recursive-descent parser that is
//! total over arbitrary input — malformed manifests come back as
//! `Err`, never a panic (this module is in the analyzer's L1
//! panic-freedom scope).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use gkap_telemetry::metrics::{HistogramSummary, MetricsHub};

/// Manifest schema version; bump when the JSON shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The non-deterministic part of a manifest: what machine/build
/// produced the run and how long it really took.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Environment {
    /// Git revision of the working tree (`unknown` outside a checkout).
    pub git_rev: String,
    /// Worker threads the run used (`--jobs`).
    pub jobs: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Peak resident set size in kB (0 where `/proc` is unavailable).
    pub peak_rss_kb: u64,
    /// Ring shards the run's sharded phase used (`--shards`; 0 for
    /// commands without one). Environment-only by design: the
    /// deterministic body must stay bit-identical across shard counts.
    pub shards: u64,
    /// Per-shard worker compute, wall-clock seconds. Like the global
    /// busy counter this is wall time, so it overstates compute when
    /// the host is oversubscribed.
    pub shard_busy_s: Vec<f64>,
    /// Per-shard wait at the merge barrier: the slowest shard's busy
    /// time minus this shard's own — how long its worker would idle
    /// before the fold if nothing else were queued.
    pub shard_barrier_wait_s: Vec<f64>,
}

/// One run's metrics record. Field order here is the JSON key order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// Schema version ([`SCHEMA_VERSION`] for manifests written here).
    pub schema_version: u64,
    /// The `repro` command that produced the run (`scale`, `chaos`, …).
    pub cmd: String,
    /// Distinguishing tag: the key workload parameters (`g64_s7`).
    pub tag: String,
    /// Full workload configuration, stringified (deterministic).
    pub config: BTreeMap<String, String>,
    /// Deterministic operation counts keyed by metric path.
    pub counts: BTreeMap<String, u64>,
    /// Peak/level gauges keyed by metric path (virtual-time class).
    pub gauges: BTreeMap<String, f64>,
    /// Latency histogram summaries keyed by metric path.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Total virtual milliseconds simulated across the run.
    pub virtual_ms: f64,
    /// Machine/build description (informational, not compared).
    pub environment: Environment,
    /// Extra top-level keys rendered verbatim (pre-rendered JSON
    /// values), used to keep `BENCH_perf.json`'s legacy keys. Ignored
    /// by [`Manifest::parse`] and by `bench-diff`.
    pub legacy: BTreeMap<String, String>,
}

impl Manifest {
    /// An empty manifest for a command + tag.
    pub fn new(cmd: &str, tag: &str) -> Self {
        Manifest {
            schema_version: SCHEMA_VERSION,
            cmd: cmd.to_string(),
            tag: tag.to_string(),
            ..Manifest::default()
        }
    }

    /// The canonical file name: `RUN_<cmd>_<tag>.json`.
    pub fn file_name(&self) -> String {
        format!("RUN_{}_{}.json", self.cmd, self.tag)
    }

    /// Records one configuration parameter (stringified by the caller
    /// with fixed precision, so equal configs render equal bytes).
    pub fn set_config(&mut self, key: &str, value: impl ToString) {
        self.config.insert(key.to_string(), value.to_string());
    }

    /// Adds to a deterministic count.
    pub fn add_count(&mut self, path: &str, by: u64) {
        *self.counts.entry(path.to_string()).or_insert(0) += by;
    }

    /// Raises a gauge to `v` if larger (merged peak).
    pub fn gauge_max(&mut self, path: &str, v: f64) {
        let g = self.gauges.entry(path.to_string()).or_insert(f64::MIN);
        if v > *g {
            *g = v;
        }
    }

    /// Stores a histogram summary under a path (last write wins).
    pub fn put_histogram(&mut self, path: &str, summary: HistogramSummary) {
        self.histograms.insert(path.to_string(), summary);
    }

    /// Folds a [`MetricsHub`] into the manifest: counters add into
    /// `counts`, gauges take the max, histograms are summarized (last
    /// write wins per path — merge hubs *before* absorbing when paths
    /// can collide).
    pub fn absorb_hub(&mut self, hub: &MetricsHub) {
        for (key, v) in hub.counters() {
            self.add_count(&key.path(), v);
        }
        for (key, v) in hub.gauges() {
            self.gauge_max(&key.path(), v);
        }
        for (key, h) in hub.histograms() {
            self.put_histogram(&key.path(), h.summary());
        }
    }

    /// Merges another manifest's deterministic body into this one:
    /// config entries insert (`other` wins), counts add, gauges take
    /// the max, histogram summaries last-write, virtual time adds.
    /// `cmd`/`tag`/environment are untouched.
    pub fn absorb(&mut self, other: &Manifest) {
        for (k, v) in &other.config {
            self.config.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.counts {
            self.add_count(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.insert(k.clone(), *v);
        }
        self.virtual_ms += other.virtual_ms;
    }

    /// Fills the environment block: git revision and peak RSS are
    /// probed from the machine, `jobs`/`wall_s` come from the caller.
    pub fn fill_environment(&mut self, jobs: usize, wall_s: f64) {
        self.environment = Environment {
            git_rev: current_git_rev(),
            jobs: jobs as u64,
            wall_s,
            peak_rss_kb: peak_rss_kb(),
            ..std::mem::take(&mut self.environment)
        };
    }

    /// Records the sharded phase's execution attribution: shard count,
    /// per-shard busy wall seconds, and each shard's wait at the merge
    /// barrier (the slowest shard's busy time minus its own). All of
    /// it lands in the environment block only — shard count is an
    /// execution knob and must never reach the deterministic body.
    pub fn set_shard_timing(&mut self, shards: usize, busy_ns: &[u64]) {
        let max = busy_ns.iter().copied().max().unwrap_or(0);
        self.environment.shards = shards as u64;
        self.environment.shard_busy_s = busy_ns.iter().map(|&n| n as f64 / 1e9).collect();
        self.environment.shard_barrier_wait_s =
            busy_ns.iter().map(|&n| (max - n) as f64 / 1e9).collect();
    }

    /// Renders only the deterministic body — the part that must be
    /// bit-identical across `--jobs` values and repeated same-seed
    /// runs.
    pub fn deterministic_json(&self) -> String {
        self.render(false)
    }

    /// Renders the full manifest (body + environment + legacy keys).
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, full: bool) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"cmd\": {},", json_string(&self.cmd));
        let _ = writeln!(s, "  \"tag\": {},", json_string(&self.tag));
        render_map(&mut s, "config", &self.config, |s, v| {
            s.push_str(&json_string(v))
        });
        render_map(&mut s, "counts", &self.counts, |s, v| {
            let _ = write!(s, "{v}");
        });
        render_map(&mut s, "gauges", &self.gauges, |s, v| {
            s.push_str(&json_f64(*v))
        });
        render_map(&mut s, "histograms", &self.histograms, |s, h| {
            let _ = write!(
                s,
                "{{\"count\": {}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                h.count,
                json_f64(h.min),
                json_f64(h.p50),
                json_f64(h.p95),
                json_f64(h.p99),
                json_f64(h.max)
            );
        });
        let _ = write!(s, "  \"virtual_ms\": {}", json_f64(self.virtual_ms));
        if full {
            s.push_str(",\n");
            let e = &self.environment;
            let _ = writeln!(s, "  \"environment\": {{");
            let _ = writeln!(s, "    \"git_rev\": {},", json_string(&e.git_rev));
            let _ = writeln!(s, "    \"jobs\": {},", e.jobs);
            let _ = writeln!(s, "    \"wall_s\": {},", json_f64(e.wall_s));
            let _ = write!(s, "    \"peak_rss_kb\": {}", e.peak_rss_kb);
            if e.shards > 0 {
                let _ = write!(s, ",\n    \"shards\": {}", e.shards);
                let _ = write!(
                    s,
                    ",\n    \"shard_busy_s\": {}",
                    json_f64_array(&e.shard_busy_s)
                );
                let _ = write!(
                    s,
                    ",\n    \"shard_barrier_wait_s\": {}",
                    json_f64_array(&e.shard_barrier_wait_s)
                );
            }
            s.push('\n');
            let _ = write!(s, "  }}");
            for (k, raw) in &self.legacy {
                let _ = write!(s, ",\n  {}: {}", json_string(k), raw);
            }
            s.push('\n');
        } else {
            s.push('\n');
        }
        s.push_str("}\n");
        s
    }

    /// Writes the full manifest under `dir` as
    /// [`Manifest::file_name`], returning the path written.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, String> {
        crate::write_output(dir, &self.file_name(), &self.to_json())
    }

    /// Parses a manifest back from its JSON rendering (or any JSON
    /// with the same shape). Unknown keys are ignored; missing
    /// optional sections default to empty.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj().ok_or("manifest root is not an object")?;
        let mut m = Manifest {
            schema_version: json::get(obj, "schema_version")
                .and_then(json::Value::as_u64)
                .ok_or("manifest is missing \"schema_version\"")?,
            cmd: json::get(obj, "cmd")
                .and_then(json::Value::as_str)
                .ok_or("manifest is missing \"cmd\"")?
                .to_string(),
            tag: json::get(obj, "tag")
                .and_then(json::Value::as_str)
                .unwrap_or_default()
                .to_string(),
            virtual_ms: json::get(obj, "virtual_ms")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0),
            ..Manifest::default()
        };
        if let Some(config) = json::get(obj, "config").and_then(json::Value::as_obj) {
            for (k, v) in config {
                if let Some(s) = v.as_str() {
                    m.config.insert(k.clone(), s.to_string());
                }
            }
        }
        if let Some(counts) = json::get(obj, "counts").and_then(json::Value::as_obj) {
            for (k, v) in counts {
                if let Some(n) = v.as_u64() {
                    m.counts.insert(k.clone(), n);
                }
            }
        }
        if let Some(gauges) = json::get(obj, "gauges").and_then(json::Value::as_obj) {
            for (k, v) in gauges {
                if let Some(n) = v.as_f64() {
                    m.gauges.insert(k.clone(), n);
                }
            }
        }
        if let Some(hists) = json::get(obj, "histograms").and_then(json::Value::as_obj) {
            for (k, v) in hists {
                let Some(h) = v.as_obj() else { continue };
                let f = |name| {
                    json::get(h, name)
                        .and_then(json::Value::as_f64)
                        .unwrap_or(0.0)
                };
                m.histograms.insert(
                    k.clone(),
                    HistogramSummary {
                        count: json::get(h, "count")
                            .and_then(json::Value::as_u64)
                            .unwrap_or(0),
                        min: f("min"),
                        p50: f("p50"),
                        p95: f("p95"),
                        p99: f("p99"),
                        max: f("max"),
                    },
                );
            }
        }
        if let Some(env) = json::get(obj, "environment").and_then(json::Value::as_obj) {
            m.environment = Environment {
                git_rev: json::get(env, "git_rev")
                    .and_then(json::Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                jobs: json::get(env, "jobs")
                    .and_then(json::Value::as_u64)
                    .unwrap_or(0),
                wall_s: json::get(env, "wall_s")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
                peak_rss_kb: json::get(env, "peak_rss_kb")
                    .and_then(json::Value::as_u64)
                    .unwrap_or(0),
                shards: json::get(env, "shards")
                    .and_then(json::Value::as_u64)
                    .unwrap_or(0),
                shard_busy_s: json::get(env, "shard_busy_s")
                    .map(f64_array)
                    .unwrap_or_default(),
                shard_barrier_wait_s: json::get(env, "shard_barrier_wait_s")
                    .map(f64_array)
                    .unwrap_or_default(),
            };
        }
        Ok(m)
    }

    /// Reads and parses a manifest file, naming the path in errors.
    pub fn read_from(path: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn render_map<V>(
    s: &mut String,
    name: &str,
    map: &BTreeMap<String, V>,
    mut render_value: impl FnMut(&mut String, &V),
) {
    let _ = write!(s, "  {}: {{", json_string(name));
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 < map.len() { "," } else { "" };
        let _ = write!(s, "\n    {}: ", json_string(k));
        render_value(s, v);
        s.push_str(comma);
    }
    if map.is_empty() {
        s.push_str("},\n");
    } else {
        s.push_str("\n  },\n");
    }
}

/// Fixed-precision float rendering: six decimals, so equal values
/// render equal bytes and the files stay human-readable. Non-finite
/// values (never produced by the metrics layer, but stay total)
/// render as 0.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// Fixed-precision float array rendering, matching [`json_f64`].
fn json_f64_array(vs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_f64(*v));
    }
    out.push(']');
    out
}

/// Reads a JSON array of numbers; anything else yields an empty list
/// and non-numeric elements are skipped (total over arbitrary input).
fn f64_array(v: &json::Value) -> Vec<f64> {
    match v.as_arr() {
        Some(items) => items.iter().filter_map(json::Value::as_f64).collect(),
        None => Vec::new(),
    }
}

/// JSON string literal with the required escapes. Metric paths are
/// ASCII identifiers, but config values may hold anything.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Git revision of the checkout containing the working directory,
/// read straight from `.git` (no subprocess): follows `HEAD` through
/// a symbolic ref, loose ref file, or `packed-refs`. Returns
/// `"unknown"` when anything is missing — running outside a checkout
/// is not an error.
pub fn current_git_rev() -> String {
    let Ok(cwd) = std::env::current_dir() else {
        return "unknown".to_string();
    };
    for dir in cwd.ancestors() {
        let git = dir.join(".git");
        let git_dir = if git.is_dir() {
            git
        } else if git.is_file() {
            // Worktree: `.git` is a file containing `gitdir: <path>`.
            match std::fs::read_to_string(&git) {
                Ok(text) => match text.trim().strip_prefix("gitdir:") {
                    Some(p) => dir.join(p.trim()),
                    None => continue,
                },
                Err(_) => continue,
            }
        } else {
            continue;
        };
        let Ok(head) = std::fs::read_to_string(git_dir.join("HEAD")) else {
            continue;
        };
        let head = head.trim();
        let Some(refname) = head.strip_prefix("ref:").map(str::trim) else {
            // Detached HEAD: the file holds the revision itself.
            return head.to_string();
        };
        if let Ok(rev) = std::fs::read_to_string(git_dir.join(refname)) {
            return rev.trim().to_string();
        }
        if let Ok(packed) = std::fs::read_to_string(git_dir.join("packed-refs")) {
            for line in packed.lines() {
                if let Some(rev) = line.strip_suffix(refname) {
                    return rev.trim().to_string();
                }
            }
        }
        return "unknown".to_string();
    }
    "unknown".to_string()
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`).
/// Returns 0 where the file or the line is unavailable (non-Linux).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let digits: String = rest.chars().filter(char::is_ascii_digit).collect();
            return digits.parse().unwrap_or(0);
        }
    }
    0
}

/// A minimal total JSON reader: just enough to load manifests back
/// for `bench-diff`. Rejects malformed input with a message; never
/// panics, never recurses past a fixed depth.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (always held as `f64`; manifest integers are
        /// far below 2^53, where `f64` is exact).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The value as a float, if numeric.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if numeric and whole.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an object's entry list.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(entries) => Some(entries),
                _ => None,
            }
        }

        /// The value as an array's element list.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// First entry with the given key (objects are small; linear scan).
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Nesting bound: manifests are depth 3; anything deeper than
    /// this is rejected rather than recursed into.
    const MAX_DEPTH: u32 = 32;

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
            }
        }

        fn eat_keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self, depth: u32) -> Result<Value, String> {
            if depth > MAX_DEPTH {
                return Err("nesting too deep".to_string());
            }
            self.skip_ws();
            match self.peek() {
                Some(b'n') => self.eat_keyword("null", Value::Null),
                Some(b't') => self.eat_keyword("true", Value::Bool(true)),
                Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(depth),
                Some(b'{') => self.object(depth),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(b) => Err(format!(
                    "unexpected byte '{}' at {}",
                    char::from(b),
                    self.pos
                )),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn array(&mut self, depth: u32) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self, depth: u32) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                entries.push((key, self.value(depth + 1)?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    self.pos += 1;
                }
                // The slice between escapes is valid UTF-8 because the
                // input is a &str and we only stop on ASCII bytes.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or(""));
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| {
                                        format!("bad \\u escape at byte {}", self.pos)
                                    })?;
                                // Surrogate pairs are not reassembled —
                                // manifests never emit them; lone
                                // surrogates decode to the replacement
                                // character.
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    _ => return Err("unterminated string".to_string()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("invalid number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkap_telemetry::metrics::{Key, Layer};

    fn sample_manifest() -> Manifest {
        let mut m = Manifest::new("scale", "g8_s7");
        m.set_config("groups", 8);
        m.set_config("seed", 7);
        m.set_config("churn", format!("{:.4}", 0.1));
        let mut hub = MetricsHub::new();
        let k = Key::new(Layer::Crypto, "modexp").protocol("GDH");
        hub.inc(k, 42);
        hub.observe(Key::new(Layer::Harness, "rekey_ms").protocol("GDH"), 3.5);
        hub.gauge_max(
            Key::new(Layer::Harness, "virtual_ms").protocol("GDH"),
            250.0,
        );
        m.absorb_hub(&hub);
        m.virtual_ms = 250.0;
        m
    }

    #[test]
    fn roundtrips_through_json() {
        let mut m = sample_manifest();
        m.environment = Environment {
            git_rev: "abc123".into(),
            jobs: 4,
            wall_s: 1.25,
            peak_rss_kb: 20_480,
            ..Environment::default()
        };
        m.set_shard_timing(2, &[1_500_000_000, 2_000_000_000]);
        let text = m.to_json();
        let back = Manifest::parse(&text).expect("parses");
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.cmd, "scale");
        assert_eq!(back.tag, "g8_s7");
        assert_eq!(back.config.get("groups").map(String::as_str), Some("8"));
        assert_eq!(back.counts.get("crypto/GDH/modexp"), Some(&42));
        let h = back.histograms.get("harness/GDH/rekey_ms").expect("hist");
        assert_eq!(h.count, 1);
        assert_eq!(h.min, 3.5);
        assert_eq!(h.max, 3.5);
        assert_eq!(back.environment.git_rev, "abc123");
        assert_eq!(back.environment.jobs, 4);
        assert_eq!(back.environment.peak_rss_kb, 20_480);
        assert_eq!(back.environment.shards, 2);
        assert_eq!(back.environment.shard_busy_s, vec![1.5, 2.0]);
        assert_eq!(back.environment.shard_barrier_wait_s, vec![0.5, 0.0]);
        assert_eq!(back.virtual_ms, 250.0);
    }

    #[test]
    fn deterministic_body_excludes_environment() {
        let mut a = sample_manifest();
        let mut b = sample_manifest();
        a.fill_environment(1, 0.5);
        b.fill_environment(4, 9.5);
        assert_ne!(a.environment, b.environment);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_ne!(a.to_json(), b.to_json());
        // The deterministic body is itself a valid, parseable manifest.
        let body = Manifest::parse(&a.deterministic_json()).expect("body parses");
        assert_eq!(body.counts, a.counts);
        assert_eq!(body.environment, Environment::default());
    }

    #[test]
    fn legacy_keys_render_but_do_not_parse() {
        let mut m = sample_manifest();
        m.legacy
            .insert("steps".into(), "[{\"name\": \"scale\"}]".into());
        m.legacy.insert("total_wall_s".into(), "1.500".into());
        let text = m.to_json();
        assert!(text.contains("\"steps\": [{\"name\": \"scale\"}]"));
        assert!(text.contains("\"total_wall_s\": 1.500"));
        let back = Manifest::parse(&text).expect("parses despite extras");
        assert!(back.legacy.is_empty(), "legacy keys are ignored on read");
    }

    #[test]
    fn parser_rejects_malformed_input_without_panicking() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "{\"a\": --3}",
            "{\"\\u12\": 1}",
            &("[".repeat(100) + &"]".repeat(100)),
        ] {
            assert!(Manifest::parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Missing required keys is an error, not a default.
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("{\"schema_version\": 1}").is_err());
    }

    #[test]
    fn json_strings_escape_and_roundtrip() {
        let tricky = "quote\" slash\\ tab\t newline\n bell\u{7} ünïcode";
        let mut m = Manifest::new("t", "x");
        m.set_config("v", tricky);
        let back = Manifest::parse(&m.to_json()).expect("parses");
        assert_eq!(back.config.get("v").map(String::as_str), Some(tricky));
    }

    #[test]
    fn environment_probes_are_total() {
        // In this repo the rev is a 40-hex commit; anywhere else the
        // probe must still return *something* without erroring.
        let rev = current_git_rev();
        assert!(!rev.is_empty());
        let _ = peak_rss_kb(); // must not panic regardless of platform
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(
            Manifest::new("scale", "g64_s7").file_name(),
            "RUN_scale_g64_s7.json"
        );
    }
}

//! Micro-benchmarks of the group communication substrate: the numbers
//! §6.1.1 and §6.2.1 of the paper report for the raw testbeds
//! (Agreed-multicast latency, BD-style all-to-all round, membership
//! service cost).

use gkap_gcs::{testbed, Client, ClientCtx, Delivery, GcsConfig, SimWorld, View};
use gkap_sim::stats::{Series, Summary};

/// A client that records delivery times and optionally multicasts on
/// its first view.
#[derive(Default)]
struct Probe {
    deliveries: Vec<f64>,
    views: Vec<f64>,
    send_on_view: bool,
    all_broadcast: bool,
}

impl Client for Probe {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        self.views.push(ctx.now().as_millis_f64());
        if self.send_on_view || self.all_broadcast {
            ctx.multicast_agreed(vec![1u8; 64]);
        }
    }

    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, _msg: &Delivery) {
        self.deliveries.push(ctx.now().as_millis_f64());
    }
}

/// Result of one micro measurement.
#[derive(Clone, Debug)]
pub struct Micro {
    /// What was measured.
    pub what: String,
    /// Group size.
    pub n: usize,
    /// Measured value in virtual milliseconds.
    pub ms: f64,
}

/// Mean latency of a single Agreed multicast (send → delivery at every
/// member), from a sender on `sender_machine`.
pub fn agreed_multicast_latency(cfg: &GcsConfig, n: usize, sender_machine: usize) -> f64 {
    let mut world = SimWorld::new(cfg.clone());
    for i in 0..n {
        let probe = Probe {
            send_on_view: i == sender_machine.min(n - 1),
            ..Default::default()
        };
        world.add_client(Box::new(probe));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    let sender = sender_machine.min(n - 1);
    let send_time = world.client::<Probe>(sender).views[0];
    let mut total = 0.0;
    for i in 0..n {
        let d = &world.client::<Probe>(i).deliveries;
        assert_eq!(d.len(), 1, "member {i} deliveries");
        total += d[0] - send_time;
    }
    total / n as f64
}

/// Duration of a BD-style round: every member broadcasts at once and
/// waits for all `n - 1` other messages (§6.1.1's second micro number).
pub fn all_to_all_round(cfg: &GcsConfig, n: usize) -> f64 {
    let mut world = SimWorld::new(cfg.clone());
    for _ in 0..n {
        world.add_client(Box::new(Probe {
            all_broadcast: true,
            ..Default::default()
        }));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    let start = (0..n)
        .map(|i| world.client::<Probe>(i).views[0])
        .fold(f64::INFINITY, f64::min);
    let end = (0..n)
        .map(|i| {
            let d = &world.client::<Probe>(i).deliveries;
            // Every member receives all n messages (its own included).
            assert_eq!(d.len(), n, "member {i}");
            d.last().copied().unwrap_or(start)
        })
        .fold(0.0f64, f64::max);
    end - start
}

/// Cost of the membership service alone: inject a join into a keyless
/// (plain-probe) group and time the view installation.
pub fn membership_cost(cfg: &GcsConfig, n: usize) -> f64 {
    let mut world = SimWorld::new(cfg.clone());
    for _ in 0..=n {
        world.add_client(Box::new(Probe::default()));
    }
    world.install_initial_view_of((0..n).collect());
    world.run_until_quiescent();
    let t0 = world.now().as_millis_f64();
    world.inject_join(n);
    world.run_until_quiescent();
    let worst = (0..=n)
        .map(|i| world.client::<Probe>(i).views.last().copied().unwrap_or(t0))
        .fold(0.0f64, f64::max);
    worst - t0
}

/// The LAN micro table (§6.1.1).
pub fn lan_micro() -> Vec<Micro> {
    let cfg = testbed::lan();
    let mut out = Vec::new();
    for n in [3usize, 13, 26, 50] {
        out.push(Micro {
            what: "agreed multicast (LAN)".into(),
            n,
            ms: agreed_multicast_latency(&cfg, n, 0),
        });
    }
    for n in [5usize, 13, 26, 50] {
        out.push(Micro {
            what: "all-to-all round (LAN)".into(),
            n,
            ms: all_to_all_round(&cfg, n),
        });
    }
    for n in [2usize, 13, 26, 50] {
        out.push(Micro {
            what: "membership service (LAN)".into(),
            n,
            ms: membership_cost(&cfg, n),
        });
    }
    out
}

/// The WAN micro table (§6.2.1), including per-sender-site Agreed
/// latency (JHU = machine 0, UCI = 11, ICU = 12).
pub fn wan_micro() -> Vec<Micro> {
    let cfg = testbed::wan();
    let mut out = Vec::new();
    for (site, machine) in [("JHU", 0usize), ("UCI", 11), ("ICU", 12)] {
        out.push(Micro {
            what: format!("agreed multicast (WAN, sender {site})"),
            n: 13,
            ms: agreed_multicast_latency(&cfg, 13, machine),
        });
    }
    out.push(Micro {
        what: "all-to-all round (WAN)".into(),
        n: 50,
        ms: all_to_all_round(&cfg, 50),
    });
    for n in [13usize, 26, 50] {
        out.push(Micro {
            what: "membership service (WAN)".into(),
            n,
            ms: membership_cost(&cfg, n),
        });
    }
    out
}

/// Renders micros as an aligned table.
pub fn render(micros: &[Micro]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<42} {:>4} {:>12}\n", "measurement", "n", "ms"));
    for m in micros {
        out.push_str(&format!("{:<42} {:>4} {:>12.3}\n", m.what, m.n, m.ms));
    }
    out
}

/// Membership cost as a series over group size (plotted alongside the
/// protocol curves in Figures 11/12/14).
pub fn membership_series(cfg: &GcsConfig, sizes: &[usize]) -> Series {
    let mut s = Series::new("Membership");
    for &n in sizes {
        let mut sm = Summary::new();
        sm.add(membership_cost(cfg, n));
        s.push(n as f64, sm);
    }
    s
}

//! The `repro scale` workload: N concurrent groups per protocol,
//! partitioned across independent ring shards, batched membership
//! churn, throughput/latency CSV.
//!
//! The CSV is a deterministic function of (groups, churn, window,
//! seed): `(protocol, shard)` cells fan out over worker threads via
//! [`gkap_core::par::run_indexed`] — one *flat* fan-out, so the
//! busy-time counter brackets each cell exactly once — results come
//! back in index order regardless of `--jobs`, and every group is a
//! self-contained serial simulation folded in group-ascending order
//! by [`gkap_core::scale::assemble`]. The bytes written are therefore
//! identical for any `--jobs` x `--shards` combination and across
//! repeated runs; per-shard wall-clock attribution goes to the
//! manifest *environment* block only.

use std::time::Instant;

use crate::manifest::Manifest;
use gkap_core::batch::EventBatcher;
use gkap_core::par;
use gkap_core::protocols::ProtocolKind;
use gkap_core::scale::{
    assemble, generate_schedule, percentile, run_shard, GroupOutcome, ScaleConfig, ScaleRun,
};
use gkap_sim::Duration;

/// Parses a protocol name as the CLI accepts it (case-insensitive
/// paper names: gdh, tgdh, str, bd, ckd).
pub fn parse_protocol(name: &str) -> Option<ProtocolKind> {
    ProtocolKind::all()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

/// Parameters of one `repro scale` invocation.
#[derive(Clone, Debug)]
pub struct ScaleOptions {
    /// Concurrent groups per run.
    pub groups: usize,
    /// Expected churn events per group over the horizon.
    pub churn: f64,
    /// Batching window in milliseconds (0 disables batching).
    pub window_ms: f64,
    /// Restrict to one protocol (all five when `None`).
    pub protocol: Option<ProtocolKind>,
    /// Schedule and member seed.
    pub seed: u64,
    /// Worker threads for the `(protocol, shard)` cell fan-out.
    pub jobs: usize,
    /// Independent ring shards per protocol (1 = single ring). A pure
    /// execution knob: results are bit-identical for any value.
    pub shards: usize,
}

/// One CSV row: a protocol's scale run boiled down to the throughput
/// and latency quantities the workload reports.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// The protocol measured.
    pub protocol: ProtocolKind,
    /// The full run outcome.
    pub run: ScaleRun,
}

/// Scale rows plus the execution attribution the manifest records in
/// its environment block.
#[derive(Clone, Debug)]
pub struct ScaleOutcome {
    /// One row per protocol, in Table 1 order.
    pub rows: Vec<ScaleRow>,
    /// Wall-clock nanoseconds each shard's cells spent computing,
    /// summed over protocols. Indexed by shard.
    pub shard_busy_ns: Vec<u64>,
}

/// Runs the scale workload for every selected protocol, in Table 1
/// order. Deterministic across `jobs` and `shards`: the fan-out
/// preserves index order, each group is self-contained, and the fold
/// is canonical — only `shard_busy_ns` (wall clock, environment-only)
/// varies between runs.
pub fn run_all_timed(opts: &ScaleOptions) -> ScaleOutcome {
    let protocols: Vec<ProtocolKind> = match opts.protocol {
        Some(p) => vec![p],
        None => ProtocolKind::all().to_vec(),
    };
    let shards = opts.shards.max(1);
    let window = Duration::from_millis_f64(opts.window_ms);
    let prepped: Vec<_> = protocols
        .iter()
        .map(|&p| {
            let mut cfg = ScaleConfig::lan(p, opts.groups);
            cfg.churn = opts.churn;
            cfg.window = window;
            cfg.seed = opts.seed;
            let schedule = generate_schedule(&cfg);
            let batches = EventBatcher::new(cfg.window).coalesce(&schedule.events);
            (cfg, schedule, batches)
        })
        .collect();
    // One flat `(protocol, shard)` fan-out: nesting run_indexed would
    // bracket inner cells twice in the busy-time counter.
    let cells = par::run_indexed(opts.jobs, protocols.len() * shards, |i| {
        let (cfg, schedule, batches) = &prepped[i / shards];
        let t0 = Instant::now();
        let outcomes = run_shard(cfg, schedule, batches, shards, i % shards);
        (outcomes, t0.elapsed().as_nanos() as u64)
    });
    let mut shard_busy_ns = vec![0u64; shards];
    let mut per_protocol: Vec<Vec<GroupOutcome>> = protocols.iter().map(|_| Vec::new()).collect();
    for (i, (o, ns)) in cells.into_iter().enumerate() {
        shard_busy_ns[i % shards] += ns;
        per_protocol[i / shards].extend(o);
    }
    let rows = prepped
        .iter()
        .zip(&protocols)
        .zip(per_protocol)
        .map(
            |(((cfg, schedule, batches), &protocol), outcomes)| ScaleRow {
                protocol,
                run: assemble(cfg, schedule, batches, outcomes),
            },
        )
        .collect();
    ScaleOutcome {
        rows,
        shard_busy_ns,
    }
}

/// [`run_all_timed`] without the attribution, for callers that only
/// want the deterministic rows.
pub fn run_all(opts: &ScaleOptions) -> Vec<ScaleRow> {
    run_all_timed(opts).rows
}

/// CSV of the scale rows, fixed-precision so equal runs render equal
/// bytes.
pub fn scale_csv(opts: &ScaleOptions, rows: &[ScaleRow]) -> String {
    let mut out = String::from(
        "protocol,groups,churn,window_ms,seed,events,batches,rekeys,superseded,\
         events_per_sec,rekey_p50_ms,rekey_p95_ms,batch_wait_mean_ms,\
         transport_mean_ms,agreement_mean_ms,ok\n",
    );
    for row in rows {
        let r = &row.run;
        out.push_str(&format!(
            "{},{},{:.4},{:.3},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
            row.protocol.name(),
            opts.groups,
            opts.churn,
            opts.window_ms,
            opts.seed,
            r.raw_events,
            r.batches,
            r.rekeys,
            r.superseded,
            r.events_per_sec(),
            percentile(&r.rekey_ms, 0.50),
            percentile(&r.rekey_ms, 0.95),
            mean(&r.batch_wait_ms),
            mean(&r.transport_ms),
            mean(&r.agreement_ms),
            r.ok,
        ));
    }
    out
}

/// Human-readable summary table of the scale rows.
pub fn scale_table(opts: &ScaleOptions, rows: &[ScaleRow]) -> String {
    let mut out = format!(
        "scale: {} groups, churn {:.2}/group, window {:.1} ms, seed {}\n\
         {:<6} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}\n",
        opts.groups,
        opts.churn,
        opts.window_ms,
        opts.seed,
        "proto",
        "events",
        "batches",
        "rekeys",
        "events/sec",
        "p50 ms",
        "p95 ms",
    );
    for row in rows {
        let r = &row.run;
        out.push_str(&format!(
            "{:<6} {:>8} {:>8} {:>8} {:>12.2} {:>12.2} {:>12.2}{}\n",
            row.protocol.name(),
            r.raw_events,
            r.batches,
            r.rekeys,
            r.events_per_sec(),
            percentile(&r.rekey_ms, 0.50),
            percentile(&r.rekey_ms, 0.95),
            if r.ok { "" } else { "  [FAILED]" },
        ));
    }
    out
}

/// Builds the deterministic body of the `scale` run manifest from the
/// rows: each protocol's typed metrics hub (workload counters, phase
/// histograms, kernel op counts) is folded in, and `virtual_ms` totals
/// the per-protocol elapsed virtual time. Every quantity here is a
/// pure function of (groups, churn, window, seed), so the rendered
/// body is bit-identical across `--jobs` values — the property the
/// scale determinism test pins.
pub fn scale_manifest(opts: &ScaleOptions, rows: &[ScaleRow]) -> Manifest {
    let tag = format!("g{}_s{}", opts.groups, opts.seed);
    let mut man = Manifest::new("scale", &tag);
    man.set_config("groups", opts.groups);
    man.set_config("churn", format!("{:.4}", opts.churn));
    man.set_config("window_ms", format!("{:.3}", opts.window_ms));
    man.set_config("seed", opts.seed);
    man.set_config("protocol", opts.protocol.map(|p| p.name()).unwrap_or("all"));
    for row in rows {
        man.absorb_hub(&row.run.hub);
        man.virtual_ms += row.run.elapsed.as_millis_f64();
    }
    man
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parsing() {
        assert_eq!(parse_protocol("tgdh"), Some(ProtocolKind::Tgdh));
        assert_eq!(parse_protocol("BD"), Some(ProtocolKind::Bd));
        assert_eq!(parse_protocol("nope"), None);
    }

    #[test]
    fn csv_shape_and_determinism() {
        let opts = ScaleOptions {
            groups: 6,
            churn: 1.0,
            window_ms: 5.0,
            protocol: Some(ProtocolKind::Bd),
            seed: 7,
            jobs: 1,
            shards: 1,
        };
        let a = scale_csv(&opts, &run_all(&opts));
        let b = scale_csv(&opts, &run_all(&opts));
        assert_eq!(a, b, "same seed renders identical bytes");
        assert_eq!(a.lines().count(), 2, "header + one protocol row");
        assert!(a.starts_with("protocol,groups,churn,window_ms,seed,"));
    }
}

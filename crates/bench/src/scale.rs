//! The `repro scale` workload: N concurrent groups per protocol on
//! one LAN ring, batched membership churn, throughput/latency CSV.
//!
//! The CSV is a deterministic function of (groups, churn, window,
//! seed): protocols fan out over worker threads via
//! [`gkap_core::par::run_indexed`], which returns results in protocol
//! order regardless of `--jobs`, and each run is a serial
//! discrete-event simulation — so the bytes written are identical for
//! any jobs value and across repeated runs.

use crate::manifest::Manifest;
use gkap_core::par;
use gkap_core::protocols::ProtocolKind;
use gkap_core::scale::{percentile, run, ScaleConfig, ScaleRun};
use gkap_sim::Duration;

/// Parses a protocol name as the CLI accepts it (case-insensitive
/// paper names: gdh, tgdh, str, bd, ckd).
pub fn parse_protocol(name: &str) -> Option<ProtocolKind> {
    ProtocolKind::all()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

/// Parameters of one `repro scale` invocation.
#[derive(Clone, Debug)]
pub struct ScaleOptions {
    /// Concurrent groups per run.
    pub groups: usize,
    /// Expected churn events per group over the horizon.
    pub churn: f64,
    /// Batching window in milliseconds (0 disables batching).
    pub window_ms: f64,
    /// Restrict to one protocol (all five when `None`).
    pub protocol: Option<ProtocolKind>,
    /// Schedule and member seed.
    pub seed: u64,
    /// Worker threads for the per-protocol fan-out.
    pub jobs: usize,
}

/// One CSV row: a protocol's scale run boiled down to the throughput
/// and latency quantities the workload reports.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// The protocol measured.
    pub protocol: ProtocolKind,
    /// The full run outcome.
    pub run: ScaleRun,
}

/// Runs the scale workload for every selected protocol, in Table 1
/// order. Deterministic across `jobs` values: the fan-out preserves
/// index order and each run is self-contained.
pub fn run_all(opts: &ScaleOptions) -> Vec<ScaleRow> {
    let protocols: Vec<ProtocolKind> = match opts.protocol {
        Some(p) => vec![p],
        None => ProtocolKind::all().to_vec(),
    };
    let window = Duration::from_millis_f64(opts.window_ms);
    let runs = par::run_indexed(opts.jobs, protocols.len(), |i| {
        let mut cfg = ScaleConfig::lan(protocols[i], opts.groups);
        cfg.churn = opts.churn;
        cfg.window = window;
        cfg.seed = opts.seed;
        run(&cfg)
    });
    protocols
        .into_iter()
        .zip(runs)
        .map(|(protocol, run)| ScaleRow { protocol, run })
        .collect()
}

/// CSV of the scale rows, fixed-precision so equal runs render equal
/// bytes.
pub fn scale_csv(opts: &ScaleOptions, rows: &[ScaleRow]) -> String {
    let mut out = String::from(
        "protocol,groups,churn,window_ms,seed,events,batches,rekeys,superseded,\
         events_per_sec,rekey_p50_ms,rekey_p95_ms,batch_wait_mean_ms,\
         transport_mean_ms,agreement_mean_ms,ok\n",
    );
    for row in rows {
        let r = &row.run;
        out.push_str(&format!(
            "{},{},{:.4},{:.3},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
            row.protocol.name(),
            opts.groups,
            opts.churn,
            opts.window_ms,
            opts.seed,
            r.raw_events,
            r.batches,
            r.rekeys,
            r.superseded,
            r.events_per_sec(),
            percentile(&r.rekey_ms, 0.50),
            percentile(&r.rekey_ms, 0.95),
            mean(&r.batch_wait_ms),
            mean(&r.transport_ms),
            mean(&r.agreement_ms),
            r.ok,
        ));
    }
    out
}

/// Human-readable summary table of the scale rows.
pub fn scale_table(opts: &ScaleOptions, rows: &[ScaleRow]) -> String {
    let mut out = format!(
        "scale: {} groups, churn {:.2}/group, window {:.1} ms, seed {}\n\
         {:<6} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}\n",
        opts.groups,
        opts.churn,
        opts.window_ms,
        opts.seed,
        "proto",
        "events",
        "batches",
        "rekeys",
        "events/sec",
        "p50 ms",
        "p95 ms",
    );
    for row in rows {
        let r = &row.run;
        out.push_str(&format!(
            "{:<6} {:>8} {:>8} {:>8} {:>12.2} {:>12.2} {:>12.2}{}\n",
            row.protocol.name(),
            r.raw_events,
            r.batches,
            r.rekeys,
            r.events_per_sec(),
            percentile(&r.rekey_ms, 0.50),
            percentile(&r.rekey_ms, 0.95),
            if r.ok { "" } else { "  [FAILED]" },
        ));
    }
    out
}

/// Builds the deterministic body of the `scale` run manifest from the
/// rows: each protocol's typed metrics hub (workload counters, phase
/// histograms, kernel op counts) is folded in, and `virtual_ms` totals
/// the per-protocol elapsed virtual time. Every quantity here is a
/// pure function of (groups, churn, window, seed), so the rendered
/// body is bit-identical across `--jobs` values — the property the
/// scale determinism test pins.
pub fn scale_manifest(opts: &ScaleOptions, rows: &[ScaleRow]) -> Manifest {
    let tag = format!("g{}_s{}", opts.groups, opts.seed);
    let mut man = Manifest::new("scale", &tag);
    man.set_config("groups", opts.groups);
    man.set_config("churn", format!("{:.4}", opts.churn));
    man.set_config("window_ms", format!("{:.3}", opts.window_ms));
    man.set_config("seed", opts.seed);
    man.set_config("protocol", opts.protocol.map(|p| p.name()).unwrap_or("all"));
    for row in rows {
        man.absorb_hub(&row.run.hub);
        man.virtual_ms += row.run.elapsed.as_millis_f64();
    }
    man
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parsing() {
        assert_eq!(parse_protocol("tgdh"), Some(ProtocolKind::Tgdh));
        assert_eq!(parse_protocol("BD"), Some(ProtocolKind::Bd));
        assert_eq!(parse_protocol("nope"), None);
    }

    #[test]
    fn csv_shape_and_determinism() {
        let opts = ScaleOptions {
            groups: 6,
            churn: 1.0,
            window_ms: 5.0,
            protocol: Some(ProtocolKind::Bd),
            seed: 7,
            jobs: 1,
        };
        let a = scale_csv(&opts, &run_all(&opts));
        let b = scale_csv(&opts, &run_all(&opts));
        assert_eq!(a, b, "same seed renders identical bytes");
        assert_eq!(a.lines().count(), 2, "header + one protocol row");
        assert!(a.starts_with("protocol,groups,churn,window_ms,seed,"));
    }
}

//! Traced runs: per-protocol latency breakdowns for the paper's
//! figures, exported as an aligned table, a CSV, and per-run JSONL
//! event logs (`repro trace` / `repro trace-summary`).
//!
//! Each breakdown row decomposes one membership event's total elapsed
//! time into the §6 cost categories — membership service, protocol
//! rounds (non-crypto processing), cryptographic compute, and network
//! wait — such that the four columns sum to the elapsed time exactly.

use gkap_core::experiment::{
    run_crash_traced, run_join_traced, run_leave_traced, ExperimentConfig, LeaveTarget, SuiteKind,
    TraceRun,
};
use gkap_core::protocols::ProtocolKind;
use gkap_gcs::{testbed, GcsConfig};
use gkap_telemetry::{Event, EventKind};

/// One traced measurement: a protocol × event cell of the breakdown.
#[derive(Debug)]
pub struct TraceRow {
    /// Protocol name (`"GDH"`, …).
    pub protocol: &'static str,
    /// `"join"` or `"leave"`.
    pub event: &'static str,
    /// Group size after the event.
    pub n: usize,
    /// The full traced run (outcome, events, breakdown).
    pub run: TraceRun,
}

/// The figure a trace command reproduces: which testbed and events.
fn figure_spec(figure: &str) -> Option<(GcsConfig, &'static [&'static str])> {
    match figure {
        "fig11" => Some((testbed::lan(), &["join"])),
        "fig12" => Some((testbed::lan(), &["leave"])),
        "fig14" => Some((testbed::wan(), &["join", "leave"])),
        // Extension: a daemon crash evicts its members; elapsed spans
        // detection + ring reformation + eviction + re-keying.
        "crash" => Some((testbed::lan(), &["crash"])),
        _ => None,
    }
}

/// Virtual milliseconds the run spent recovering from crashes: the
/// union of the windows from each `crash` fault event to the first
/// view installed afterwards (detection timeout, ring reformation,
/// and the eviction membership change). Zero for fault-free runs.
pub fn recovery_ms(events: &[Event]) -> f64 {
    let mut total = 0.0;
    let mut covered = f64::NEG_INFINITY; // end of the last counted window
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Fault {
                action: "crash", ..
            } => {}
            _ => continue,
        }
        let start = e.at.as_millis_f64();
        let end = events[i..]
            .iter()
            .find_map(|v| match v.kind {
                EventKind::ViewInstalled { .. } => Some(v.at.as_millis_f64()),
                _ => None,
            })
            .unwrap_or_else(|| events.last().map(|v| v.at.as_millis_f64()).unwrap_or(start));
        let s = start.max(covered);
        if end > s {
            total += end - s;
            covered = end;
        }
    }
    total
}

/// Runs every protocol through the figure's events at group size `n`
/// with telemetry on. Returns `None` for an unknown figure name.
///
/// # Panics
///
/// Panics if any protocol fails to complete the event (a protocol
/// deadlock — the same invariant the figure builders assert).
pub fn trace_figure(figure: &str, n: usize) -> Option<Vec<TraceRow>> {
    let (gcs, events) = figure_spec(figure)?;
    let mut rows = Vec::new();
    for kind in ProtocolKind::all() {
        for &event in events {
            let cfg = ExperimentConfig {
                protocol: kind,
                gcs: gcs.clone(),
                suite: SuiteKind::Sim512,
                seed: 0x5eed,
                confirm_keys: false,
                telemetry: true,
            };
            let run = match event {
                "join" => run_join_traced(&cfg, n),
                "crash" => run_crash_traced(&cfg, n),
                _ => run_leave_traced(&cfg, n, LeaveTarget::Middle),
            };
            assert!(run.outcome.ok, "{kind} failed traced {event} at n={n}");
            rows.push(TraceRow {
                protocol: kind.name(),
                event,
                n,
                run,
            });
        }
    }
    Some(rows)
}

/// Renders the aligned per-protocol breakdown table.
pub fn summary_table(figure: &str, rows: &[TraceRow]) -> String {
    let n = rows.first().map(|r| r.n).unwrap_or(0);
    let mut s = format!(
        "# Latency breakdown — {figure}, n={n}, DH 512 bits (virtual ms)\n\
         {:<8} {:<6} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "protocol",
        "event",
        "elapsed",
        "membership",
        "rounds",
        "crypto",
        "network",
        "sum",
        "recovery",
        "agreement"
    );
    for r in rows {
        let b = &r.run.breakdown;
        let recovery = recovery_ms(&r.run.events).min(b.elapsed_ms);
        s.push_str(&format!(
            "{:<8} {:<6} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
            r.protocol,
            r.event,
            b.elapsed_ms,
            b.membership_ms,
            b.rounds_ms,
            b.crypto_ms,
            b.network_ms,
            b.total_ms(),
            recovery,
            b.elapsed_ms - recovery,
        ));
    }
    s
}

/// Renders the breakdown as CSV (same columns as the table).
pub fn summary_csv(figure: &str, rows: &[TraceRow]) -> String {
    let mut s = String::from(
        "figure,protocol,event,n,elapsed_ms,membership_ms,rounds_ms,crypto_ms,network_ms,sum_ms,\
         recovery_ms,agreement_ms\n",
    );
    for r in rows {
        let b = &r.run.breakdown;
        let recovery = recovery_ms(&r.run.events).min(b.elapsed_ms);
        s.push_str(&format!(
            "{figure},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            r.protocol,
            r.event,
            r.n,
            b.elapsed_ms,
            b.membership_ms,
            b.rounds_ms,
            b.crypto_ms,
            b.network_ms,
            b.total_ms(),
            recovery,
            b.elapsed_ms - recovery,
        ));
    }
    s
}

/// Collapsed-stack ("folded") rendering of traced runs, one line per
/// unique stack: `frames;separated;by;semicolons <weight>`, the input
/// format of every flamegraph renderer (`flamegraph.pl`, inferno,
/// speedscope). Stacks are rooted at `protocol;event`, one frame per
/// cost layer, leaf frames naming the primitive; weights are exact
/// integer **virtual nanoseconds** summed over all spans with that
/// stack, so the output is deterministic and the flame widths
/// reproduce the paper's latency decomposition. Zero-duration point
/// events (sequenced, delivered, …) carry no time and are omitted.
pub fn folded_stacks(rows: &[TraceRow]) -> String {
    use std::collections::BTreeMap;
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    let mut add = |stack: String, ns: u64| {
        if ns > 0 {
            *weights.entry(stack).or_insert(0) += ns;
        }
    };
    for r in rows {
        let root = format!("{};{}", r.protocol, r.event);
        for e in &r.run.events {
            match &e.kind {
                EventKind::CryptoOp { op, .. } => {
                    add(format!("{root};crypto;{}", op.as_str()), e.dur.as_nanos());
                }
                EventKind::HandlerSpan { wait } => {
                    add(format!("{root};cpu;handler_busy"), e.dur.as_nanos());
                    add(format!("{root};cpu;queue_wait"), wait.as_nanos());
                }
                EventKind::MembershipEvent { action, .. } => {
                    add(format!("{root};membership;{action}"), e.dur.as_nanos());
                }
                EventKind::Fault { action, .. } => {
                    add(format!("{root};fault;{action}"), e.dur.as_nanos());
                }
                // Point events: no duration to attribute.
                _ => {}
            }
        }
    }
    let mut s = String::new();
    for (stack, ns) in &weights {
        s.push_str(&format!("{stack} {ns}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkap_sim::{Duration, SimTime};
    use gkap_telemetry::Actor;

    #[test]
    fn unknown_figure_is_none() {
        assert!(trace_figure("fig99", 8).is_none());
    }

    #[test]
    fn recovery_windows_merge_and_close_at_view_install() {
        let at = |ms: u64| SimTime::ZERO + Duration::from_millis(ms);
        let ev = |t: u64, kind: EventKind| Event {
            at: at(t),
            dur: Duration::ZERO,
            actor: Actor::World,
            kind,
        };
        let crash = |t| {
            ev(
                t,
                EventKind::Fault {
                    action: "crash",
                    target: 0,
                },
            )
        };
        let install = |t| ev(t, EventKind::ViewInstalled { view_id: 1 });
        assert_eq!(recovery_ms(&[]), 0.0);
        // Fault-free log: nothing attributed.
        assert_eq!(recovery_ms(&[install(5)]), 0.0);
        // crash@10 → install@14 is 4 ms; a second crash@12 inside the
        // same window adds nothing; crash@20 → install@25 adds 5 ms.
        let events = vec![
            install(2),
            crash(10),
            crash(12),
            install(14),
            crash(20),
            install(25),
        ];
        assert!((recovery_ms(&events) - 9.0).abs() < 1e-9);
        // A crash with no later install runs to the end of the log.
        let open = vec![
            crash(10),
            crash(12),
            ev(18, EventKind::TokenRotation { rotation: 1 }),
        ];
        assert!((recovery_ms(&open) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn crash_trace_attributes_recovery_time() {
        let rows = trace_figure("crash", 6).expect("known figure");
        assert_eq!(rows.len(), 5); // one crash row per protocol
        for r in &rows {
            assert_eq!(r.event, "crash");
            let rec = recovery_ms(&r.run.events);
            assert!(rec > 0.0, "{}: no recovery attributed", r.protocol);
            assert!(
                rec <= r.run.breakdown.elapsed_ms + 1e-9,
                "{}: recovery {rec} exceeds elapsed {}",
                r.protocol,
                r.run.breakdown.elapsed_ms
            );
        }
        let table = summary_table("crash", &rows);
        assert!(table.contains("recovery") && table.contains("agreement"));
        let csv = summary_csv("crash", &rows);
        assert!(csv.starts_with("figure,protocol,event,n,"));
        assert!(csv.contains("recovery_ms,agreement_ms"));
    }

    #[test]
    fn folded_stacks_are_deterministic_weighted_nanos() {
        let rows = trace_figure("fig11", 6).expect("known figure");
        let folded = folded_stacks(&rows);
        assert_eq!(folded, folded_stacks(&rows), "deterministic bytes");
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("stack <weight>");
            let w: u64 = weight.parse().unwrap_or_else(|_| panic!("weight: {line}"));
            assert!(w > 0, "zero-weight stack emitted: {line}");
            assert!(stack.contains(';'), "rootless stack: {line}");
        }
        // Every protocol contributes crypto leaves under its own root.
        for proto in ["GDH", "TGDH", "STR", "BD", "CKD"] {
            assert!(
                folded
                    .lines()
                    .any(|l| l.starts_with(&format!("{proto};join;crypto;"))),
                "{proto} missing crypto frames:\n{folded}"
            );
        }
        // Stacks are unique and sorted (BTreeMap order).
        let stacks: Vec<&str> = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' ').map(|(s, _)| s))
            .collect();
        let mut sorted = stacks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(stacks, sorted);
    }

    #[test]
    fn breakdown_columns_sum_to_elapsed() {
        // Small LAN group keeps the test fast; the invariant is
        // structural, not size-dependent.
        let rows = trace_figure("fig11", 6).expect("known figure");
        assert_eq!(rows.len(), 5); // one join row per protocol
        for r in &rows {
            let b = &r.run.breakdown;
            assert!(b.elapsed_ms > 0.0, "{} elapsed", r.protocol);
            let sum = b.total_ms();
            assert!(
                (sum - b.elapsed_ms).abs() <= 0.01 * b.elapsed_ms.max(1e-9),
                "{}: sum {sum} vs elapsed {}",
                r.protocol,
                b.elapsed_ms
            );
            for (name, v) in [
                ("membership", b.membership_ms),
                ("rounds", b.rounds_ms),
                ("crypto", b.crypto_ms),
                ("network", b.network_ms),
            ] {
                assert!(v >= 0.0, "{} {name} negative: {v}", r.protocol);
            }
            assert!(
                !r.run.events.is_empty(),
                "{} captured no events",
                r.protocol
            );
        }
        let table = summary_table("fig11", &rows);
        assert!(table.contains("GDH") && table.contains("membership"));
        let csv = summary_csv("fig11", &rows);
        assert_eq!(csv.lines().count(), 6); // header + 5 rows
    }
}

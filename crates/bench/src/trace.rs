//! Traced runs: per-protocol latency breakdowns for the paper's
//! figures, exported as an aligned table, a CSV, and per-run JSONL
//! event logs (`repro trace` / `repro trace-summary`).
//!
//! Each breakdown row decomposes one membership event's total elapsed
//! time into the §6 cost categories — membership service, protocol
//! rounds (non-crypto processing), cryptographic compute, and network
//! wait — such that the four columns sum to the elapsed time exactly.

use gkap_core::experiment::{
    run_join_traced, run_leave_traced, ExperimentConfig, LeaveTarget, SuiteKind, TraceRun,
};
use gkap_core::protocols::ProtocolKind;
use gkap_gcs::{testbed, GcsConfig};

/// One traced measurement: a protocol × event cell of the breakdown.
#[derive(Debug)]
pub struct TraceRow {
    /// Protocol name (`"GDH"`, …).
    pub protocol: &'static str,
    /// `"join"` or `"leave"`.
    pub event: &'static str,
    /// Group size after the event.
    pub n: usize,
    /// The full traced run (outcome, events, breakdown).
    pub run: TraceRun,
}

/// The figure a trace command reproduces: which testbed and events.
fn figure_spec(figure: &str) -> Option<(GcsConfig, &'static [&'static str])> {
    match figure {
        "fig11" => Some((testbed::lan(), &["join"])),
        "fig12" => Some((testbed::lan(), &["leave"])),
        "fig14" => Some((testbed::wan(), &["join", "leave"])),
        _ => None,
    }
}

/// Runs every protocol through the figure's events at group size `n`
/// with telemetry on. Returns `None` for an unknown figure name.
///
/// # Panics
///
/// Panics if any protocol fails to complete the event (a protocol
/// deadlock — the same invariant the figure builders assert).
pub fn trace_figure(figure: &str, n: usize) -> Option<Vec<TraceRow>> {
    let (gcs, events) = figure_spec(figure)?;
    let mut rows = Vec::new();
    for kind in ProtocolKind::all() {
        for &event in events {
            let cfg = ExperimentConfig {
                protocol: kind,
                gcs: gcs.clone(),
                suite: SuiteKind::Sim512,
                seed: 0x5eed,
                confirm_keys: false,
                telemetry: true,
            };
            let run = match event {
                "join" => run_join_traced(&cfg, n),
                _ => run_leave_traced(&cfg, n, LeaveTarget::Middle),
            };
            assert!(run.outcome.ok, "{kind} failed traced {event} at n={n}");
            rows.push(TraceRow {
                protocol: kind.name(),
                event,
                n,
                run,
            });
        }
    }
    Some(rows)
}

/// Renders the aligned per-protocol breakdown table.
pub fn summary_table(figure: &str, rows: &[TraceRow]) -> String {
    let n = rows.first().map(|r| r.n).unwrap_or(0);
    let mut s = format!(
        "# Latency breakdown — {figure}, n={n}, DH 512 bits (virtual ms)\n\
         {:<8} {:<6} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
        "protocol", "event", "elapsed", "membership", "rounds", "crypto", "network", "sum"
    );
    for r in rows {
        let b = &r.run.breakdown;
        s.push_str(&format!(
            "{:<8} {:<6} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
            r.protocol,
            r.event,
            b.elapsed_ms,
            b.membership_ms,
            b.rounds_ms,
            b.crypto_ms,
            b.network_ms,
            b.total_ms(),
        ));
    }
    s
}

/// Renders the breakdown as CSV (same columns as the table).
pub fn summary_csv(figure: &str, rows: &[TraceRow]) -> String {
    let mut s = String::from(
        "figure,protocol,event,n,elapsed_ms,membership_ms,rounds_ms,crypto_ms,network_ms,sum_ms\n",
    );
    for r in rows {
        let b = &r.run.breakdown;
        s.push_str(&format!(
            "{figure},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            r.protocol,
            r.event,
            r.n,
            b.elapsed_ms,
            b.membership_ms,
            b.rounds_ms,
            b.crypto_ms,
            b.network_ms,
            b.total_ms(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(trace_figure("fig99", 8).is_none());
    }

    #[test]
    fn breakdown_columns_sum_to_elapsed() {
        // Small LAN group keeps the test fast; the invariant is
        // structural, not size-dependent.
        let rows = trace_figure("fig11", 6).expect("known figure");
        assert_eq!(rows.len(), 5); // one join row per protocol
        for r in &rows {
            let b = &r.run.breakdown;
            assert!(b.elapsed_ms > 0.0, "{} elapsed", r.protocol);
            let sum = b.total_ms();
            assert!(
                (sum - b.elapsed_ms).abs() <= 0.01 * b.elapsed_ms.max(1e-9),
                "{}: sum {sum} vs elapsed {}",
                r.protocol,
                b.elapsed_ms
            );
            for (name, v) in [
                ("membership", b.membership_ms),
                ("rounds", b.rounds_ms),
                ("crypto", b.crypto_ms),
                ("network", b.network_ms),
            ] {
                assert!(v >= 0.0, "{} {name} negative: {v}", r.protocol);
            }
            assert!(
                !r.run.events.is_empty(),
                "{} captured no events",
                r.protocol
            );
        }
        let table = summary_table("fig11", &rows);
        assert!(table.contains("GDH") && table.contains("membership"));
        let csv = summary_csv("fig11", &rows);
        assert_eq!(csv.lines().count(), 6); // header + 5 rows
    }
}

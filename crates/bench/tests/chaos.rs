//! End-to-end chaos campaign properties: a pinned campaign passes and
//! replays identically, and the schedule minimizer — demonstrated on
//! an intentionally broken protocol driver — reduces a failing
//! schedule to its smallest reproduction.

use std::rc::Rc;

use gkap_bench::chaos::{
    campaign_csv, default_factory, minimize, run_campaign, run_schedule, ChaosConfig,
};
use gkap_bench::Console;
use gkap_bignum::Ubig;
use gkap_core::protocols::{GkaCtx, ProtocolMsg};
use gkap_core::suite::CryptoSuite;
use gkap_core::{GkaError, GkaProtocol, ProtocolKind, SecureMember};
use gkap_gcs::{ClientId, Fault, PlannedFault, View};
use gkap_sim::Duration;

#[test]
fn pinned_campaign_passes_and_replays_identically() {
    let cfg = ChaosConfig::default();
    let factory = default_factory();
    let mut con = Console::quiet();
    let first = run_campaign(7, 3, &cfg, &factory, &mut con);
    assert!(
        first.passed(),
        "pinned campaign failed: {:?}",
        first
            .failures
            .iter()
            .map(|f| (&f.kind, &f.violations))
            .collect::<Vec<_>>()
    );
    assert_eq!(first.rows.len(), 3 * 5);
    // Replaying the same seed yields a bit-identical campaign.
    let second = run_campaign(7, 3, &cfg, &factory, &mut con);
    assert_eq!(campaign_csv(&first), campaign_csv(&second));
}

/// Delegates to a real protocol engine but, on any view that removes
/// a member, replaces the reported secret with a per-member poison
/// value — a divergence bug of exactly the class the key-convergence
/// invariant and the minimizer exist to catch.
struct ForgetsLeavers {
    inner: Box<dyn GkaProtocol>,
    poison: Option<Ubig>,
}

impl GkaProtocol for ForgetsLeavers {
    fn kind(&self) -> ProtocolKind {
        self.inner.kind()
    }

    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError> {
        if !view.left.is_empty() {
            self.poison = Some(Ubig::from(0xDEC0_DE00u64 + ctx.me() as u64));
        }
        self.inner.on_view(ctx, view)
    }

    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError> {
        self.inner.on_msg(ctx, sender, msg)
    }

    fn group_secret(&self) -> Option<&Ubig> {
        self.poison.as_ref().or_else(|| self.inner.group_secret())
    }

    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64) {
        self.inner.bootstrap(suite, members, me, seed);
    }

    fn reset(&mut self) {
        self.poison = None;
        self.inner.reset();
    }
}

#[test]
fn minimizer_reduces_broken_driver_to_single_fault() {
    let cfg = ChaosConfig::default();
    let suite = Rc::new(CryptoSuite::sim_512());
    let factory = move |kind: ProtocolKind, i: usize| {
        let broken = ForgetsLeavers {
            inner: kind.create(),
            poison: None,
        };
        SecureMember::with_protocol(
            Box::new(broken),
            Rc::clone(&suite),
            900 + i as u64,
            Some(17),
        )
    };

    let at = Duration::from_millis;
    let schedule = vec![
        PlannedFault {
            after: at(2),
            fault: Fault::LossBurst {
                rate: 0.5,
                duration: at(3),
            },
        },
        PlannedFault {
            after: at(6),
            fault: Fault::Heal { members: vec![8] },
        },
        PlannedFault {
            after: at(12),
            fault: Fault::Partition { members: vec![2] },
        },
        PlannedFault {
            after: at(20),
            fault: Fault::Heal { members: vec![9] },
        },
    ];

    let report = run_schedule(ProtocolKind::Tgdh, &cfg, &schedule, &factory);
    assert!(!report.passed(), "broken driver went undetected");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("key convergence")),
        "expected a key-convergence violation, got {:?}",
        report.violations
    );

    // Joins and loss bursts never trip the bug: the minimizer strips
    // them all, leaving exactly the member removal.
    let minimal = minimize(ProtocolKind::Tgdh, &cfg, &schedule, &factory);
    assert_eq!(
        minimal,
        vec![PlannedFault {
            after: at(12),
            fault: Fault::Partition { members: vec![2] },
        }],
        "minimizer did not reduce to the single removal fault"
    );
    // The minimal schedule is itself a reproduction.
    assert!(!run_schedule(ProtocolKind::Tgdh, &cfg, &minimal, &factory).passed());
}

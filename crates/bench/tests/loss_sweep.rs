//! The loss-sweep campaign's acceptance contract (`repro chaos
//! --loss-sweep`): at the pinned seed every cell converges; wherever
//! the retransmission-only baseline needs request rounds, the FEC
//! twin needs **zero**; the recovery-time attribution buckets sum
//! exactly; and the CSV and manifest body are bit-identical across
//! `--jobs` (the sweep takes no `--shards`, so shard-invariance is
//! vacuous by construction).

use gkap_bench::loss_sweep::{
    run_sweep, sweep_csv, sweep_manifest, sweep_table, SweepMode, SweepOptions, LOSS_PCTS,
};

fn opts(jobs: usize) -> SweepOptions {
    SweepOptions {
        seed: 7,
        jobs,
        protocol: None,
    }
}

#[test]
fn fec_eliminates_request_rounds_wherever_the_baseline_needs_them() {
    let rows = run_sweep(&opts(4));
    assert_eq!(rows.len(), 80, "2 nets x 4 rates x 2 modes x 5 protocols");
    for r in &rows {
        assert!(
            r.converged,
            "{} {}% {} {} must converge",
            r.net,
            r.loss_pct,
            r.mode.name(),
            r.protocol
        );
    }

    // Like-for-like: every (net, rate, protocol) pair whose baseline
    // spent >= 1 request round is served round-free by the FEC twin.
    let mut baseline_needed = 0;
    for net in ["lan", "wan"] {
        for pct in LOSS_PCTS {
            for proto in ["GDH", "TGDH", "STR", "BD", "CKD"] {
                let find = |mode: SweepMode| {
                    rows.iter()
                        .find(|r| {
                            r.net == net
                                && r.loss_pct == pct
                                && r.mode == mode
                                && r.protocol == proto
                        })
                        .expect("cell present")
                };
                let base = find(SweepMode::Retrans);
                let fec = find(SweepMode::Fec);
                if base.retrans_rounds >= 1 {
                    baseline_needed += 1;
                    assert_eq!(
                        fec.retrans_rounds, 0,
                        "{net} {pct}% {proto}: baseline spent {} rounds, FEC must spend none",
                        base.retrans_rounds
                    );
                }
                // The FEC twin never falls back to retransmission at
                // this parity budget: repairs are all local.
                assert_eq!(fec.retransmissions, 0, "{net} {pct}% {proto}");
                assert_eq!(fec.retransmission_ns, 0, "{net} {pct}% {proto}");
                assert!(
                    fec.lost == 0 || fec.fec_repairs > 0,
                    "{net} {pct}% {proto}: losses must repair via parity"
                );
                assert!(fec.parity_sent > 0, "{net} {pct}% {proto}");
                // The baseline keeps the pre-FEC engine dormant.
                assert_eq!(base.parity_sent, 0);
                assert_eq!(base.fec_repairs, 0);
                assert_eq!(base.fec_repair_ns, 0);
            }
        }
    }
    assert!(
        baseline_needed >= 10,
        "the sweep must exercise cells where the baseline actually \
         needs retransmission rounds (saw {baseline_needed})"
    );
}

#[test]
fn recovery_attribution_sums_exactly_per_cell() {
    let rows = run_sweep(&SweepOptions {
        seed: 7,
        jobs: 4,
        protocol: Some(gkap_core::protocols::ProtocolKind::Bd),
    });
    assert_eq!(rows.len(), 16, "one protocol: 2 nets x 4 rates x 2 modes");
    let mut recovered = 0;
    for r in &rows {
        assert_eq!(
            r.recovery_ns(),
            r.fec_repair_ns + r.retransmission_ns,
            "attribution must sum exactly"
        );
        if r.recovery_ns() > 0 {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "some cells must record recovery time");
    // The rendered CSV carries the same exactness: recovery_ms is the
    // sum of the two attribution columns in every data row.
    let csv = sweep_csv(7, &rows);
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let fec_ms: f64 = cols[10].parse().unwrap();
        let retrans_ms: f64 = cols[11].parse().unwrap();
        let recovery_ms: f64 = cols[12].parse().unwrap();
        assert!(
            (fec_ms + retrans_ms - recovery_ms).abs() < 1e-9,
            "CSV attribution must sum: {line}"
        );
    }
}

#[test]
fn sweep_csv_and_manifest_bit_identical_across_jobs() {
    let o1 = opts(1);
    let rows1 = run_sweep(&o1);
    let csv1 = sweep_csv(o1.seed, &rows1);
    let man1 = sweep_manifest(&o1, &rows1);
    assert_eq!(csv1.lines().count(), 81, "header + 80 cells");
    for jobs in [4usize, 2] {
        let o = opts(jobs);
        let rows = run_sweep(&o);
        assert_eq!(
            csv1,
            sweep_csv(o.seed, &rows),
            "sweep CSV must be bit-identical at --jobs {jobs}"
        );
        assert_eq!(
            man1.deterministic_json(),
            sweep_manifest(&o, &rows).deterministic_json(),
            "sweep manifest body must be bit-identical at --jobs {jobs}"
        );
    }
    assert_eq!(man1.tag, "loss_s7");
    assert!(man1.counts.contains_key("harness/loss_sweep/cells"));
    let table = sweep_table(o1.seed, &rows1);
    assert!(table.contains("lan") && table.contains("wan"), "{table}");
}

//! The parallel harness contract: `--jobs N` must not change a single
//! output byte. Every figure folds worker results in serial iteration
//! order and every cell seed depends only on the cell's coordinates,
//! so serial and 8-way runs must render identical CSVs.

use gkap_bench::figures;
use gkap_core::experiment::SuiteKind;

#[test]
fn fig11_csv_identical_serial_vs_parallel() {
    let sizes = [2, 3, 5];
    let serial = figures::fig11_join_lan(SuiteKind::FastZero, &sizes, 2, 1).to_csv();
    let par = figures::fig11_join_lan(SuiteKind::FastZero, &sizes, 2, 8).to_csv();
    assert_eq!(serial, par);
}

#[test]
fn fig12_csv_identical_serial_vs_parallel() {
    let sizes = [2, 4];
    let serial = figures::fig12_leave_lan(SuiteKind::FastZero, &sizes, 3, 1).to_csv();
    let par = figures::fig12_leave_lan(SuiteKind::FastZero, &sizes, 3, 8).to_csv();
    assert_eq!(serial, par);
}

#[test]
fn wan_figure_csv_identical_serial_vs_parallel() {
    let sizes = [2, 3];
    let serial = figures::fig14_join_wan(&sizes, 2, 1).to_csv();
    let par = figures::fig14_join_wan(&sizes, 2, 8).to_csv();
    assert_eq!(serial, par);
}

#[test]
fn custom_grid_figure_csv_identical_serial_vs_parallel() {
    // scale_figure has its own fan-out (not build_figure_jobs):
    // exercise that path too.
    let sizes = [3, 5];
    let serial = figures::scale_figure(&sizes, 2, 1).to_csv();
    let par = figures::scale_figure(&sizes, 2, 8).to_csv();
    assert_eq!(serial, par);
}

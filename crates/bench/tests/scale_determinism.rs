//! The multi-group workload's determinism contract: the `repro scale`
//! CSV is a function of (groups, churn, window, seed) alone — `--jobs`
//! must not change a single byte, and two same-seed runs must render
//! identical output.

use gkap_bench::scale::{run_all, scale_csv, scale_table, ScaleOptions};

fn opts(jobs: usize) -> ScaleOptions {
    ScaleOptions {
        groups: 12,
        churn: 0.5,
        window_ms: 5.0,
        protocol: None, // all five protocols
        seed: 7,
        jobs,
    }
}

#[test]
fn scale_csv_identical_jobs_1_vs_jobs_4() {
    let o1 = opts(1);
    let o4 = opts(4);
    let serial = scale_csv(&o1, &run_all(&o1));
    let par = scale_csv(&o4, &run_all(&o4));
    assert_eq!(serial, par, "scale CSV must be bit-identical across --jobs");
    // header + one row per protocol
    assert_eq!(serial.lines().count(), 6);
}

#[test]
fn scale_run_is_reproducible_and_reports_all_protocols() {
    let o = opts(2);
    let rows_a = run_all(&o);
    let rows_b = run_all(&o);
    assert_eq!(scale_csv(&o, &rows_a), scale_csv(&o, &rows_b));
    assert!(rows_a.iter().all(|r| r.run.ok), "every protocol ends keyed");
    let table = scale_table(&o, &rows_a);
    for name in ["GDH", "TGDH", "STR", "BD", "CKD"] {
        assert!(table.contains(name), "table lists {name}");
    }
    assert!(!table.contains("[FAILED]"));
}

//! The multi-group workload's determinism contract: the `repro scale`
//! CSV is a function of (groups, churn, window, seed) alone — neither
//! `--jobs` nor `--shards` may change a single byte, and two
//! same-seed runs must render identical output. The run manifest
//! inherits the same contract: its deterministic body (config,
//! counts, histograms, virtual time) must be bit-identical across
//! every `--jobs` x `--shards` combination, and `bench-diff` over two
//! same-seed manifests must report zero regressions while a seeded
//! slowdown is flagged.

use gkap_bench::diff::{diff, render, Thresholds};
use gkap_bench::scale::{
    run_all, run_all_timed, scale_csv, scale_manifest, scale_table, ScaleOptions,
};

fn opts(jobs: usize) -> ScaleOptions {
    sharded_opts(jobs, 1)
}

fn sharded_opts(jobs: usize, shards: usize) -> ScaleOptions {
    ScaleOptions {
        groups: 12,
        churn: 0.5,
        window_ms: 5.0,
        protocol: None, // all five protocols
        seed: 7,
        jobs,
        shards,
    }
}

#[test]
fn scale_csv_identical_across_jobs_and_shards() {
    let o1 = opts(1);
    let serial = scale_csv(&o1, &run_all(&o1));
    // header + one row per protocol
    assert_eq!(serial.lines().count(), 6);
    for (jobs, shards) in [(4, 1), (1, 4), (4, 4), (2, 3)] {
        let o = sharded_opts(jobs, shards);
        let got = scale_csv(&o, &run_all(&o));
        assert_eq!(
            serial, got,
            "scale CSV must be bit-identical at --jobs {jobs} --shards {shards}"
        );
    }
}

/// The acceptance gate for the manifest layer: the acceptance-criteria
/// config (`repro scale --groups 64 --seed 7`) must render a
/// deterministic manifest body — config, op counts, phase histograms,
/// virtual time — that is bit-identical across every
/// `--jobs {1,4}` x `--shards {1,4}` combination. Only `environment`
/// (wall time, rss, jobs, per-shard attribution) may differ, which is
/// exactly why `deterministic_json()` excludes it.
#[test]
fn scale_manifest_bit_identical_across_jobs_and_shards() {
    let grid: Vec<_> = [(1, 1), (4, 1), (1, 4), (4, 4)]
        .into_iter()
        .map(|(jobs, shards)| {
            let mut o = sharded_opts(jobs, shards);
            o.groups = 64;
            o.churn = 0.1; // the CLI defaults for `repro scale`
            let outcome = run_all_timed(&o);
            assert_eq!(
                outcome.shard_busy_ns.len(),
                shards,
                "one busy-time slot per shard"
            );
            (scale_manifest(&o, &outcome.rows), o)
        })
        .collect();
    let (m1, _) = &grid[0];
    for (m, o) in &grid[1..] {
        assert_eq!(
            m1.deterministic_json(),
            m.deterministic_json(),
            "scale manifest body must be bit-identical at --jobs {} --shards {}",
            o.jobs,
            o.shards
        );
    }
    assert_eq!(m1.tag, "g64_s7");
    assert!(!m1.histograms.is_empty(), "phase histograms recorded");
    assert!(
        m1.histograms.keys().any(|k| k.ends_with("/rekey_ms")),
        "rekey latency histogram present: {:?}",
        m1.histograms.keys().collect::<Vec<_>>()
    );
    assert!(
        m1.counts.keys().any(|k| k.starts_with("crypto/")),
        "bignum kernel op counts present: {:?}",
        m1.counts.keys().collect::<Vec<_>>()
    );
    assert!(m1.virtual_ms > 0.0, "virtual time accounted");
}

/// `bench-diff` acceptance: two same-seed manifests compare clean
/// (zero regressions, exit 0 at the CLI), and a seeded slowdown —
/// a fatter p95 plus extra kernel ops — is flagged as a regression
/// (non-zero exit at the CLI, which maps `!passed()` to 1).
#[test]
fn bench_diff_passes_same_seed_and_gates_seeded_slowdown() {
    let o = opts(1);
    let baseline = scale_manifest(&o, &run_all(&o));
    let candidate = scale_manifest(&o, &run_all(&o));
    let th = Thresholds::default();
    let clean = diff(&baseline, &candidate, &th);
    assert!(clean.passed(), "same seed must compare clean");
    assert_eq!(clean.regressions(), 0, "{:#?}", clean.findings);
    assert!(
        clean.compared > 0,
        "the comparison actually covered metrics"
    );

    // Seed a slowdown into the candidate: inflate one latency
    // histogram well past the relative threshold and bump an op count
    // (counts are deterministic, so any drift is exact-match failure).
    let mut slow = candidate.clone();
    let hist_key = slow
        .histograms
        .keys()
        .find(|k| k.ends_with("/rekey_ms"))
        .expect("rekey_ms histogram")
        .clone();
    let h = slow.histograms.get_mut(&hist_key).unwrap();
    h.p95 *= 1.5;
    h.max *= 1.5;
    let count_key = slow
        .counts
        .keys()
        .find(|k| k.starts_with("crypto/"))
        .expect("crypto op count")
        .clone();
    *slow.counts.get_mut(&count_key).unwrap() += 1000;

    let gated = diff(&baseline, &slow, &th);
    assert!(!gated.passed(), "seeded slowdown must fail the gate");
    assert!(gated.regressions() >= 2, "{:#?}", gated.findings);
    let report = render("baseline.json", "candidate.json", &gated);
    assert!(report.contains("FAIL"), "{report}");
    assert!(report.contains(&hist_key), "{report}");
    assert!(report.contains(&count_key), "{report}");
}

#[test]
fn scale_run_is_reproducible_and_reports_all_protocols() {
    let o = opts(2);
    let rows_a = run_all(&o);
    let rows_b = run_all(&o);
    assert_eq!(scale_csv(&o, &rows_a), scale_csv(&o, &rows_b));
    assert!(rows_a.iter().all(|r| r.run.ok), "every protocol ends keyed");
    let table = scale_table(&o, &rows_a);
    for name in ["GDH", "TGDH", "STR", "BD", "CKD"] {
        assert!(table.contains(name), "table lists {name}");
    }
    assert!(!table.contains("[FAILED]"));
}

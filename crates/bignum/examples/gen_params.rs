//! One-off generator for the fixed Diffie–Hellman parameter constants
//! embedded in `gkap-crypto` (512-bit safe prime, plus small test groups).
//!
//! Run with: `cargo run --release -p gkap-bignum --example gen_params`

use gkap_bignum::{prime, SplitMix64, Ubig};

fn main() {
    let mut rng = SplitMix64::new(0x5ec0_9e57_u64);
    for bits in [256usize, 512] {
        let (p, q) = prime::random_safe_prime(bits, &mut rng);
        // g = 2 is a generator of the order-q subgroup iff 2^q == 1 mod p
        // for safe prime p; otherwise use 4 (always a QR).
        let two = Ubig::from(2u64);
        let g = if two.modexp(&q, &p).is_one() {
            2u64
        } else {
            4u64
        };
        println!("// {bits}-bit safe prime (p = 2q+1), generator g = {g}");
        println!("p = {}", p.to_hex());
        println!("q = {}", q.to_hex());
        println!();
    }
}

//! Core integer arithmetic on [`Ubig`]: addition, subtraction,
//! multiplication (schoolbook with a Karatsuba path for large operands),
//! bit shifts, Knuth Algorithm D division, and the modular helpers built
//! on top of them.

use std::ops::{Add, Mul, Shl, Shr, Sub};

use crate::ubig::Ubig;

/// Operand limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

// ---------------------------------------------------------------------------
// Limb-level helpers
// ---------------------------------------------------------------------------

#[inline]
fn adc(a: u64, b: u64, carry: &mut u64) -> u64 {
    let s = a as u128 + b as u128 + *carry as u128;
    *carry = (s >> 64) as u64;
    s as u64
}

#[inline]
fn sbb(a: u64, b: u64, borrow: &mut u64) -> u64 {
    let s = (a as u128).wrapping_sub(b as u128 + *borrow as u128);
    *borrow = ((s >> 64) as u64) & 1;
    s as u64
}

/// `acc[i..] += a * b` (schoolbook inner product row).
fn mul_add_row(acc: &mut [u64], a: &[u64], b: u64) {
    if b == 0 {
        return;
    }
    let mut carry: u64 = 0;
    for (i, &ai) in a.iter().enumerate() {
        let t = acc[i] as u128 + ai as u128 * b as u128 + carry as u128;
        acc[i] = t as u64;
        carry = (t >> 64) as u64;
    }
    let mut i = a.len();
    while carry != 0 {
        let t = acc[i] as u128 + carry as u128;
        acc[i] = t as u64;
        carry = (t >> 64) as u64;
        i += 1;
    }
}

fn schoolbook_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut acc = vec![0u64; a.len() + b.len()];
    for (i, &bi) in b.iter().enumerate() {
        mul_add_row(&mut acc[i..], a, bi);
    }
    acc
}

/// Karatsuba multiplication; recursion bottoms out at schoolbook.
fn karatsuba_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return schoolbook_mul(a, b);
    }
    let half = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);

    let z0 = Ubig::from_limbs(karatsuba_mul(a0, b0));
    let z2 = Ubig::from_limbs(karatsuba_mul(a1, b1));
    let a01 = &Ubig::from_limbs(a0.to_vec()) + &Ubig::from_limbs(a1.to_vec());
    let b01 = &Ubig::from_limbs(b0.to_vec()) + &Ubig::from_limbs(b1.to_vec());
    let z1 = &Ubig::from_limbs(karatsuba_mul(&a01.limbs, &b01.limbs)) - &(&z0 + &z2);

    // result = z0 + z1 << (64*half) + z2 << (64*2*half)
    let mut out = z0;
    out.add_shifted(&z1, half);
    out.add_shifted(&z2, 2 * half);
    out.limbs
}

// ---------------------------------------------------------------------------
// Inherent arithmetic methods
// ---------------------------------------------------------------------------

impl Ubig {
    /// In-place `self += other << (64 * limb_shift)`.
    pub(crate) fn add_shifted(&mut self, other: &Ubig, limb_shift: usize) {
        if other.is_zero() {
            return;
        }
        let needed = other.limbs.len() + limb_shift;
        if self.limbs.len() < needed {
            self.limbs.resize(needed, 0);
        }
        let mut carry = 0u64;
        for (i, &o) in other.limbs.iter().enumerate() {
            self.limbs[limb_shift + i] = adc(self.limbs[limb_shift + i], o, &mut carry);
        }
        let mut i = limb_shift + other.limbs.len();
        while carry != 0 {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            self.limbs[i] = adc(self.limbs[i], 0, &mut carry);
            i += 1;
        }
    }

    /// Checked subtraction: `self - other`, or `None` if it would
    /// underflow.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// assert!(Ubig::from(3u64).checked_sub(&Ubig::from(5u64)).is_none());
    /// ```
    pub fn checked_sub(&self, other: &Ubig) -> Option<Ubig> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let o = other.limbs.get(i).copied().unwrap_or(0);
            limbs.push(sbb(self.limbs[i], o, &mut borrow));
        }
        debug_assert_eq!(borrow, 0);
        Some(Ubig::from_limbs(limbs))
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Uses Knuth's Algorithm D for multi-limb divisors.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// let (q, r) = Ubig::from(1000u64).div_rem(&Ubig::from(7u64));
    /// assert_eq!(q, Ubig::from(142u64));
    /// assert_eq!(r, Ubig::from(6u64));
    /// ```
    pub fn div_rem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        assert!(!divisor.is_zero(), "division by zero Ubig");
        if self < divisor {
            return (Ubig::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem: u64 = 0;
            for &limb in self.limbs.iter().rev() {
                let cur = ((rem as u128) << 64) | limb as u128;
                q.push((cur / d as u128) as u64);
                rem = (cur % d as u128) as u64;
            }
            q.reverse();
            return (Ubig::from_limbs(q), Ubig::from(rem));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth TAOCP vol. 2, Algorithm 4.3.1-D.
    fn div_rem_knuth(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the top divisor limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor << shift;
        let mut u = (self << shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // extra high limb u[m+n]

        let v = &v.limbs;
        let v_top = v[n - 1];
        let v_next = v[n - 2];
        let mut q = vec![0u64; m + 1];

        // D2..D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate q_hat from the top two dividend limbs.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut q_hat = numer / v_top as u128;
            let mut r_hat = numer % v_top as u128;
            while q_hat >> 64 != 0
                || q_hat * v_next as u128 > ((r_hat << 64) | u[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            let mut q_hat = q_hat as u64;

            // D4: u[j..j+n+1] -= q_hat * v
            let mut borrow: u64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = q_hat as u128 * v[i] as u128 + carry as u128;
                carry = (p >> 64) as u64;
                u[j + i] = sbb(u[j + i], p as u64, &mut borrow);
            }
            u[j + n] = sbb(u[j + n], carry, &mut borrow);

            // D5/D6: if we overshot, add one divisor back.
            if borrow != 0 {
                q_hat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    u[j + i] = adc(u[j + i], v[i], &mut carry);
                }
                u[j + n] = u[j + n].wrapping_add(carry);
            }
            q[j] = q_hat;
        }

        // D8: denormalize the remainder.
        let rem = Ubig::from_limbs(u[..n].to_vec()) >> shift;
        (Ubig::from_limbs(q), rem)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Ubig) -> Ubig {
        self.div_rem(m).1
    }

    /// Modular addition: `(self + other) mod m`. Operands must already be
    /// reduced modulo `m` (enforced with a debug assertion).
    pub fn modadd(&self, other: &Ubig, m: &Ubig) -> Ubig {
        debug_assert!(self < m && other < m);
        let s = self + other;
        if &s >= m {
            s.checked_sub(m).expect("s >= m")
        } else {
            s
        }
    }

    /// Modular subtraction: `(self - other) mod m`. Operands must already
    /// be reduced modulo `m`.
    pub fn modsub(&self, other: &Ubig, m: &Ubig) -> Ubig {
        debug_assert!(self < m && other < m);
        match self.checked_sub(other) {
            Some(d) => d,
            None => &(self + m) - other,
        }
    }

    /// Modular multiplication `(self * other) mod m` via full product and
    /// division. For repeated multiplication use [`crate::Montgomery`].
    pub fn modmul(&self, other: &Ubig, m: &Ubig) -> Ubig {
        (self * other).rem(m)
    }

    /// Greatest common divisor (binary GCD).
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// assert_eq!(Ubig::from(48u64).gcd(&Ubig::from(36u64)), Ubig::from(12u64));
    /// ```
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = &a >> a_tz;
        b = &b >> b_tz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a");
            if b.is_zero() {
                return &a << common;
            }
            b = &b >> b.trailing_zeros();
        }
    }

    /// Number of trailing zero bits (`0` for zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular inverse: finds `x` with `self * x ≡ 1 (mod m)`, or `None`
    /// if `gcd(self, m) != 1`.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// let m = Ubig::from(97u64);
    /// let inv = Ubig::from(31u64).mod_inverse(&m).unwrap();
    /// assert_eq!(Ubig::from(31u64).modmul(&inv, &m), Ubig::one());
    /// ```
    pub fn mod_inverse(&self, m: &Ubig) -> Option<Ubig> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Extended Euclid with sign-tracked Bezout coefficient for `self`.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        if r1.is_zero() {
            return None;
        }
        // t0/t1 track coefficients of `self`; signs kept separately.
        let (mut t0, mut t0_neg) = (Ubig::zero(), false);
        let (mut t1, mut t1_neg) = (Ubig::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1  (signed)
            let qt1 = &q * &t1;
            let (t2, t2_neg) = signed_sub(&t0, t0_neg, &qt1, t1_neg);
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t0_neg = t1_neg;
            t1 = t2;
            t1_neg = t2_neg;
        }
        if !r0.is_one() {
            return None;
        }
        let inv = if t0_neg {
            m.checked_sub(&t0.rem(m))
                .map(|v| if &v == m { Ubig::zero() } else { v })
                .expect("reduced")
        } else {
            t0.rem(m)
        };
        debug_assert_eq!(self.modmul(&inv, m), Ubig::one());
        Some(inv)
    }
}

/// Computes `a*sa - b*sb` as a signed big integer `(magnitude, negative)`
/// where `sa`/`sb` are sign flags (`true` = negative).
fn signed_sub(a: &Ubig, a_neg: bool, b: &Ubig, b_neg: bool) -> (Ubig, bool) {
    match (a_neg, b_neg) {
        // a - b
        (false, false) => match a.checked_sub(b) {
            Some(d) => (d, false),
            None => (b.checked_sub(a).expect("b > a"), true),
        },
        // a + b
        (false, true) => (a + b, false),
        // -(a + b)
        (true, false) => (a + b, true),
        // b - a
        (true, true) => match b.checked_sub(a) {
            Some(d) => (d, false),
            None => (a.checked_sub(b).expect("a > b"), true),
        },
    }
}

// ---------------------------------------------------------------------------
// Operator impls (on references, as Ubig is not Copy)
// ---------------------------------------------------------------------------

impl Add for &Ubig {
    type Output = Ubig;

    fn add(self, rhs: &Ubig) -> Ubig {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let s = short.limbs.get(i).copied().unwrap_or(0);
            limbs.push(adc(long.limbs[i], s, &mut carry));
        }
        if carry != 0 {
            limbs.push(carry);
        }
        Ubig::from_limbs(limbs)
    }
}

impl Sub for &Ubig {
    type Output = Ubig;

    /// # Panics
    ///
    /// Panics on underflow; use [`Ubig::checked_sub`] when the ordering
    /// of the operands is not statically known.
    fn sub(self, rhs: &Ubig) -> Ubig {
        self.checked_sub(rhs)
            .expect("Ubig subtraction underflow; use checked_sub")
    }
}

impl Mul for &Ubig {
    type Output = Ubig;

    fn mul(self, rhs: &Ubig) -> Ubig {
        if self.is_zero() || rhs.is_zero() {
            return Ubig::zero();
        }
        Ubig::from_limbs(karatsuba_mul(&self.limbs, &rhs.limbs))
    }
}

impl Shl<usize> for &Ubig {
    type Output = Ubig;

    fn shl(self, bits: usize) -> Ubig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Ubig::from_limbs(limbs)
    }
}

impl Shl<usize> for Ubig {
    type Output = Ubig;

    fn shl(self, bits: usize) -> Ubig {
        &self << bits
    }
}

impl Shr<usize> for &Ubig {
    type Output = Ubig;

    fn shr(self, bits: usize) -> Ubig {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Ubig::from_limbs(src.to_vec());
        }
        let mut limbs = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            limbs.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
        Ubig::from_limbs(limbs)
    }
}

impl Shr<usize> for Ubig {
    type Output = Ubig;

    fn shr(self, bits: usize) -> Ubig {
        &self >> bits
    }
}

#[cfg(test)]
mod tests {
    use crate::Ubig;

    fn u(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn add_with_carry_chain() {
        let a = Ubig::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let sum = &a + &Ubig::one();
        assert_eq!(sum.to_hex(), "100000000000000000000000000000000");
        assert_eq!(&Ubig::zero() + &a, a);
    }

    #[test]
    fn sub_borrow_chain() {
        let a = Ubig::from_hex("100000000000000000000000000000000").unwrap();
        let d = &a - &Ubig::one();
        assert_eq!(d.to_hex(), "ffffffffffffffffffffffffffffffff");
        assert_eq!(a.checked_sub(&a), Some(Ubig::zero()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &u(1) - &u(2);
    }

    #[test]
    fn mul_small_and_identities() {
        assert_eq!(&u(6) * &u(7), u(42));
        assert_eq!(&u(0) * &u(7), Ubig::zero());
        assert_eq!(&u(1) * &u(7), u(7));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let m = Ubig::from_hex("ffffffffffffffff").unwrap();
        assert_eq!((&m * &m).to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to trigger the Karatsuba path.
        let mut a = Ubig::zero();
        let mut b = Ubig::zero();
        for i in 0..100usize {
            a.set_bit(i * 37 % 4096, true);
            b.set_bit(i * 53 % 4000, true);
        }
        let prod = &a * &b;
        // Verify with an independent identity: (a*b) mod p == ((a mod p)*(b mod p)) mod p
        let p = Ubig::from_hex("ffffffffffffffc5").unwrap();
        assert_eq!(
            prod.rem(&p),
            a.rem(&p).modmul(&b.rem(&p), &p),
            "Karatsuba product inconsistent with modular identity"
        );
        // And by the symmetric product.
        assert_eq!(prod, &b * &a);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = Ubig::from_hex("123456789abcdef0f0debc9a78563412").unwrap();
        for s in [0, 1, 63, 64, 65, 127, 130] {
            assert_eq!((&a << s) >> s, a, "shift {s}");
        }
        assert_eq!(&Ubig::zero() << 100, Ubig::zero());
        assert_eq!(&u(1) >> 1, Ubig::zero());
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = u(1000).div_rem(&u(7));
        assert_eq!((q, r), (u(142), u(6)));
        let (q, r) = u(5).div_rem(&u(10));
        assert_eq!((q, r), (Ubig::zero(), u(5)));
    }

    #[test]
    fn div_rem_knuth_reconstruction() {
        let a = Ubig::from_hex(
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\
             aaf4c8996fb92427ae41e4649b934ca495991b7852b855deadbeef",
        )
        .unwrap();
        let b = Ubig::from_hex("fedcba9876543210fedcba9876543210ff").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_knuth_add_back_case() {
        // Construct the classic add-back trigger: dividend just below
        // divisor * 2^64k with a tricky top configuration.
        let b = Ubig::from_hex("80000000000000000000000000000001").unwrap();
        let a = &(&b << 128) - &Ubig::one();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(&Ubig::zero());
    }

    #[test]
    fn modadd_modsub_wraparound() {
        let m = u(97);
        assert_eq!(u(96).modadd(&u(5), &m), u(4));
        assert_eq!(u(3).modsub(&u(5), &m), u(95));
        assert_eq!(u(5).modsub(&u(5), &m), Ubig::zero());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(u(48).gcd(&u(36)), u(12));
        assert_eq!(u(17).gcd(&u(31)), u(1));
        assert_eq!(u(0).gcd(&u(5)), u(5));
        assert_eq!(u(5).gcd(&u(0)), u(5));
        assert_eq!(u(12).gcd(&u(12)), u(12));
    }

    #[test]
    fn mod_inverse_exists_and_verifies() {
        let m = Ubig::from_hex("fffffffffffffffffffffffffffffff1").unwrap();
        let a = Ubig::from_hex("123456789abcdef").unwrap();
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.modmul(&inv, &m), Ubig::one());
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert!(u(6).mod_inverse(&u(9)).is_none(), "gcd 3");
        assert!(u(5).mod_inverse(&Ubig::one()).is_none());
        assert!(u(0).mod_inverse(&u(7)).is_none());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(u(0).trailing_zeros(), 0);
        assert_eq!(u(8).trailing_zeros(), 3);
        assert_eq!((&u(1) << 200).trailing_zeros(), 200);
    }
}

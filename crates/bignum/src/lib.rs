//! Arbitrary-precision unsigned integer arithmetic for the Secure Spread
//! reproduction.
//!
//! This crate is the bottom-most substrate of the workspace: it stands in
//! for the OpenSSL bignum library that the original Cliques toolkit was
//! built on. It provides everything the group key agreement protocols
//! need — and nothing more:
//!
//! * [`Ubig`] — an unsigned big integer stored as little-endian `u64`
//!   limbs, with schoolbook/Karatsuba multiplication and Knuth Algorithm D
//!   division.
//! * [`Montgomery`] — a reduction context for fast repeated modular
//!   multiplication, used by [`Ubig::modexp`] with a sliding window
//!   (the same algorithm family OpenSSL used at the time of the paper).
//!   The kernels are allocation-free (thread a [`MontScratch`] through
//!   them), squaring has a dedicated half-product kernel, and
//!   [`FixedBase`] serves fixed-base exponentiations (`g^x`) from a
//!   precomputed window table with zero squarings.
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   (safe-)prime generation for RSA key and Diffie–Hellman parameter
//!   generation.
//! * [`RandomSource`] / [`SplitMix64`] — a minimal deterministic entropy
//!   abstraction so that higher layers can run reproducible simulations.
//!
//! # Example
//!
//! ```
//! use gkap_bignum::Ubig;
//!
//! let p = Ubig::from_hex("ffffffffffffffc5").unwrap(); // a 64-bit prime
//! let g = Ubig::from(5u64);
//! let a = Ubig::from(123_456_789u64);
//! let b = Ubig::from(987_654_321u64);
//! // Diffie-Hellman toy exchange: (g^a)^b == (g^b)^a (mod p)
//! let ga = g.modexp(&a, &p);
//! let gb = g.modexp(&b, &p);
//! assert_eq!(ga.modexp(&b, &p), gb.modexp(&a, &p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod montgomery;
pub mod prime;
mod rng;
pub mod stats;
mod ubig;

pub use montgomery::{FixedBase, MontElem, MontScratch, Montgomery};
pub use rng::{RandomSource, SplitMix64};
pub use ubig::{ParseUbigError, Ubig};

//! Montgomery reduction context and windowed modular exponentiation.
//!
//! This reproduces the algorithm family the paper's platform used:
//! "OpenSSL uses Montgomery reduction and the sliding window algorithm to
//! implement the modular exponentiation" (§5). The multiplication kernel
//! is the standard CIOS (coarsely integrated operand scanning) loop.

use crate::ubig::Ubig;

/// Window size (bits) for windowed exponentiation.
const WINDOW: usize = 4;

/// A Montgomery reduction context for a fixed odd modulus.
///
/// Build once per modulus and reuse for many exponentiations — exactly
/// how the protocol layer treats a Diffie–Hellman group.
///
/// # Example
///
/// ```
/// use gkap_bignum::{Montgomery, Ubig};
///
/// let p = Ubig::from_hex("ffffffffffffffc5").unwrap();
/// let ctx = Montgomery::new(&p).unwrap();
/// let g = Ubig::from(5u64);
/// assert_eq!(ctx.modexp(&g, &Ubig::from(3u64)), Ubig::from(125u64));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    modulus: Ubig,
    n: usize,
    /// -modulus^{-1} mod 2^64
    n0_inv: u64,
    /// R^2 mod modulus, R = 2^(64n)
    r2: Vec<u64>,
    /// R mod modulus (the Montgomery form of 1)
    r1: Vec<u64>,
}

impl Montgomery {
    /// Creates a context for `modulus`.
    ///
    /// Returns `None` if the modulus is even or < 3 (Montgomery reduction
    /// requires an odd modulus; use [`Ubig::modexp`] which falls back to
    /// division-based reduction for even moduli).
    pub fn new(modulus: &Ubig) -> Option<Self> {
        if modulus.is_even() || modulus.bit_len() < 2 {
            return None;
        }
        let n = modulus.limbs.len();
        // Inverse of the low limb mod 2^64 by Newton iteration, then negate.
        let m0 = modulus.limbs[0];
        let mut inv: u64 = m0; // correct mod 2^3 already for odd m0? start from m0 (odd) and iterate
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        let r = &Ubig::one() << (64 * n);
        let r1 = pad(&r.rem(modulus), n);
        let r2 = pad(&(&r * &r).rem(modulus), n);
        Some(Montgomery {
            modulus: modulus.clone(),
            n,
            n0_inv,
            r2,
            r1,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.modulus
    }

    /// CIOS Montgomery multiplication: `out = a * b * R^{-1} mod m`.
    /// `a`, `b`, `out` are `n`-limb little-endian, already `< m`.
    fn mont_mul(&self, a: &[u64], b: &[u64], out: &mut Vec<u64>) {
        let n = self.n;
        let m = &self.modulus.limbs;
        let mut t = vec![0u64; n + 2];
        for &bi in b.iter().take(n) {
            // t += a * bi
            let mut carry: u64 = 0;
            for j in 0..n {
                let s = t[j] as u128 + a[j] as u128 * bi as u128 + carry as u128;
                t[j] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[n] as u128 + carry as u128;
            t[n] = s as u64;
            t[n + 1] = t[n + 1].wrapping_add((s >> 64) as u64);

            // u = t[0] * n0_inv mod 2^64; t += u * m; t >>= 64
            let u = t[0].wrapping_mul(self.n0_inv);
            let s0 = t[0] as u128 + u as u128 * m[0] as u128;
            debug_assert_eq!(s0 as u64, 0);
            let mut carry = (s0 >> 64) as u64;
            for j in 1..n {
                let s = t[j] as u128 + u as u128 * m[j] as u128 + carry as u128;
                t[j - 1] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[n] as u128 + carry as u128;
            t[n - 1] = s as u64;
            let s2 = t[n + 1] as u128 + (s >> 64);
            t[n] = s2 as u64;
            t[n + 1] = (s2 >> 64) as u64;
        }
        out.clear();
        out.extend_from_slice(&t[..n]);
        // Conditional subtraction to bring the result below the modulus.
        if t[n] != 0 || ge(out, m) {
            sub_in_place(out, m);
        }
    }

    /// Converts `a` (< m) into Montgomery form.
    fn to_mont(&self, a: &Ubig) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n);
        self.mont_mul(&pad(a, self.n), &self.r2, &mut out);
        out
    }

    /// Montgomery reduction: converts out of Montgomery form and
    /// normalizes to `Ubig`.
    fn redc(&self, a: &[u64]) -> Ubig {
        let one = pad(&Ubig::one(), self.n);
        let mut out = Vec::with_capacity(self.n);
        self.mont_mul(a, &one, &mut out);
        Ubig::from_limbs(out)
    }

    /// Modular multiplication `(a * b) mod m` through the Montgomery
    /// domain (constant context reuse makes this much faster than
    /// [`Ubig::modmul`] for many multiplications by the same modulus).
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let am = self.to_mont(&a.rem(&self.modulus));
        let bm = self.to_mont(&b.rem(&self.modulus));
        let mut prod = Vec::with_capacity(self.n);
        self.mont_mul(&am, &bm, &mut prod);
        self.redc(&prod)
    }

    /// Windowed modular exponentiation: `base^exp mod m`.
    ///
    /// Runs in time proportional to `exp.bit_len()` squarings plus
    /// `exp.bit_len()/WINDOW` multiplications — the same cost profile the
    /// paper's Table 1 counts as one "exponentiation".
    pub fn modexp(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().rem(&self.modulus);
        }
        let base = base.rem(&self.modulus);
        if base.is_zero() {
            return Ubig::zero();
        }
        let bm = self.to_mont(&base);

        // Precompute odd powers bm^1, bm^3, ..., bm^(2^WINDOW - 1).
        let mut bm2 = Vec::with_capacity(self.n);
        self.mont_mul(&bm, &bm, &mut bm2);
        let table_len = 1 << (WINDOW - 1);
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(table_len);
        table.push(bm.clone());
        for i in 1..table_len {
            let mut next = Vec::with_capacity(self.n);
            self.mont_mul(&table[i - 1], &bm2, &mut next);
            table.push(next);
        }

        let mut acc = self.r1.clone(); // Montgomery form of 1
        let mut scratch = Vec::with_capacity(self.n);
        let mut i = exp.bit_len() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                self.mont_mul(&acc.clone(), &acc, &mut scratch);
                std::mem::swap(&mut acc, &mut scratch);
                i -= 1;
                continue;
            }
            // Find the longest window [j..=i] ending in a set bit.
            let j = (i - WINDOW as isize + 1).max(0);
            let mut j = j as usize;
            while !exp.bit(j) {
                j += 1;
            }
            let width = i as usize - j + 1;
            let mut value = 0usize;
            for k in (j..=i as usize).rev() {
                value = (value << 1) | exp.bit(k) as usize;
            }
            for _ in 0..width {
                self.mont_mul(&acc.clone(), &acc, &mut scratch);
                std::mem::swap(&mut acc, &mut scratch);
            }
            self.mont_mul(&acc.clone(), &table[value >> 1], &mut scratch);
            std::mem::swap(&mut acc, &mut scratch);
            i = j as isize - 1;
        }
        self.redc(&acc)
    }
}

impl Ubig {
    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery + sliding window for odd moduli and a plain
    /// square-and-multiply with division-based reduction otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// let p = Ubig::from(1009u64);
    /// assert_eq!(Ubig::from(2u64).modexp(&Ubig::from(10u64), &p), Ubig::from(15u64));
    /// ```
    pub fn modexp(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modexp modulus must be non-zero");
        if m.is_one() {
            return Ubig::zero();
        }
        if let Some(ctx) = Montgomery::new(m) {
            return ctx.modexp(self, exp);
        }
        // Fallback for even moduli: left-to-right square and multiply.
        let mut acc = Ubig::one();
        let base = self.rem(m);
        for i in (0..exp.bit_len()).rev() {
            acc = acc.modmul(&acc, m);
            if exp.bit(i) {
                acc = acc.modmul(&base, m);
            }
        }
        acc
    }
}

fn pad(v: &Ubig, n: usize) -> Vec<u64> {
    let mut out = v.limbs.clone();
    out.resize(n, 0);
    out
}

fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = (a[i] as u128).wrapping_sub(b[i] as u128 + borrow as u128);
        a[i] = s as u64;
        borrow = ((s >> 64) as u64) & 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_tiny_modulus() {
        assert!(Montgomery::new(&Ubig::from(100u64)).is_none());
        assert!(Montgomery::new(&Ubig::one()).is_none());
        assert!(Montgomery::new(&Ubig::zero()).is_none());
        assert!(Montgomery::new(&Ubig::from(3u64)).is_some());
    }

    #[test]
    fn mont_mul_matches_naive() {
        let m = Ubig::from_hex("f6f33d0e9f7c9a1d62b7a8b3c4d5e6f7").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let a = Ubig::from_hex("123456789abcdef0123456789").unwrap();
        let b = Ubig::from_hex("fedcba98765432100fedcba98").unwrap();
        assert_eq!(ctx.mul(&a, &b), a.rem(&m).modmul(&b.rem(&m), &m));
    }

    #[test]
    fn modexp_small_cases() {
        let p = Ubig::from(1009u64);
        assert_eq!(Ubig::from(2u64).modexp(&Ubig::from(0u64), &p), Ubig::one());
        assert_eq!(Ubig::from(2u64).modexp(&Ubig::one(), &p), Ubig::from(2u64));
        assert_eq!(
            Ubig::from(2u64).modexp(&Ubig::from(10u64), &p),
            Ubig::from(1024u64 % 1009)
        );
        assert_eq!(Ubig::zero().modexp(&Ubig::from(5u64), &p), Ubig::zero());
        assert_eq!(
            Ubig::from(5u64).modexp(&Ubig::from(3u64), &Ubig::one()),
            Ubig::zero()
        );
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) == 1 mod p for prime p, a not divisible by p.
        let p = Ubig::from_hex("ffffffffffffffc5").unwrap(); // 2^64 - 59, prime
        let exp = &p - &Ubig::one();
        for a in [2u64, 3, 65537, 0xdeadbeef] {
            assert_eq!(Ubig::from(a).modexp(&exp, &p), Ubig::one(), "a = {a}");
        }
    }

    #[test]
    fn modexp_even_modulus_fallback() {
        let m = Ubig::from(100u64);
        assert_eq!(
            Ubig::from(7u64).modexp(&Ubig::from(13u64), &m),
            Ubig::from(7u64.pow(13) % 100)
        );
    }

    #[test]
    fn modexp_matches_fallback_on_odd_modulus() {
        // Cross-check Montgomery path against the naive path.
        let m = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb925").unwrap();
        let base = Ubig::from_hex("123456789abcdef").unwrap();
        let exp = Ubig::from_hex("fedcba9876543210f0f0f0f0").unwrap();
        let fast = base.modexp(&exp, &m);
        let mut slow = Ubig::one();
        for i in (0..exp.bit_len()).rev() {
            slow = slow.modmul(&slow, &m);
            if exp.bit(i) {
                slow = slow.modmul(&base, &m);
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn dh_commutativity_512bit() {
        // The heart of every protocol in the paper: (g^a)^b == (g^b)^a.
        let p = Ubig::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437",
        )
        .unwrap(); // a 512-bit odd modulus (commutativity holds for any modulus)
        let g = Ubig::from(2u64);
        let a = Ubig::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        let b = Ubig::from_hex("fedcba9876543210ffeeddccbbaa9988").unwrap();
        let ga = g.modexp(&a, &p);
        let gb = g.modexp(&b, &p);
        assert_eq!(ga.modexp(&b, &p), gb.modexp(&a, &p));
    }
}

//! Montgomery reduction context and windowed modular exponentiation.
//!
//! This reproduces the algorithm family the paper's platform used:
//! "OpenSSL uses Montgomery reduction and the sliding window algorithm to
//! implement the modular exponentiation" (§5). The multiplication kernel
//! is the standard CIOS (coarsely integrated operand scanning) loop;
//! squaring uses a dedicated half-product kernel, and fixed-base
//! exponentiation (the `g^x` that dominates every protocol in the paper)
//! can be served from a precomputed window table ([`FixedBase`]).
//!
//! All kernels are allocation-free on the hot path: callers thread a
//! reusable [`MontScratch`] workspace through the multiplication
//! routines, and [`Montgomery::modexp`] ping-pongs two buffers instead
//! of cloning the accumulator each step.

use std::borrow::Cow;

use crate::ubig::Ubig;

/// Window size (bits) for windowed exponentiation (both the sliding
/// window of [`Montgomery::modexp`] and the fixed-base comb of
/// [`FixedBase`]).
const WINDOW: usize = 4;

/// A Montgomery reduction context for a fixed odd modulus.
///
/// Build once per modulus and reuse for many exponentiations — exactly
/// how the protocol layer treats a Diffie–Hellman group.
///
/// # Example
///
/// ```
/// use gkap_bignum::{Montgomery, Ubig};
///
/// let p = Ubig::from_hex("ffffffffffffffc5").unwrap();
/// let ctx = Montgomery::new(&p).unwrap();
/// let g = Ubig::from(5u64);
/// assert_eq!(ctx.modexp(&g, &Ubig::from(3u64)), Ubig::from(125u64));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    modulus: Ubig,
    n: usize,
    /// -modulus^{-1} mod 2^64
    n0_inv: u64,
    /// R^2 mod modulus, R = 2^(64n)
    r2: Vec<u64>,
    /// R mod modulus (the Montgomery form of 1)
    r1: Vec<u64>,
}

/// Reusable workspace for the Montgomery kernels.
///
/// Holds the double-width accumulator the multiplication and squaring
/// loops write into, so the hot path performs zero heap allocations.
/// Obtain one from [`Montgomery::scratch`] and thread it through
/// repeated [`Montgomery::mont_mul`] / [`Montgomery::mont_sqr`] calls.
#[derive(Clone, Debug)]
pub struct MontScratch {
    /// `2n + 1` limbs: the squaring path needs a full double-width
    /// product plus one carry slot; CIOS only touches the first `n + 2`.
    t: Vec<u64>,
}

/// A value in Montgomery form (`a · R mod m`), produced by
/// [`Montgomery::to_mont`] and consumed by the public kernel entry
/// points. Only meaningful with the context that created it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u64>,
}

impl Montgomery {
    /// Creates a context for `modulus`.
    ///
    /// Returns `None` if the modulus is even or < 3 (Montgomery reduction
    /// requires an odd modulus; use [`Ubig::modexp`] which falls back to
    /// division-based reduction for even moduli).
    pub fn new(modulus: &Ubig) -> Option<Self> {
        if modulus.is_even() || modulus.bit_len() < 2 {
            return None;
        }
        let n = modulus.limbs.len();
        // Inverse of the low limb mod 2^64 by Newton iteration, then negate.
        let m0 = modulus.limbs[0];
        let mut inv: u64 = m0; // correct mod 2^3 already for odd m0? start from m0 (odd) and iterate
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        let r = &Ubig::one() << (64 * n);
        let r1 = pad(&r.rem(modulus), n);
        let r2 = pad(&(&r * &r).rem(modulus), n);
        Some(Montgomery {
            modulus: modulus.clone(),
            n,
            n0_inv,
            r2,
            r1,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.modulus
    }

    /// Allocates a kernel workspace sized for this modulus. Reuse it
    /// across calls — that is the whole point.
    pub fn scratch(&self) -> MontScratch {
        MontScratch {
            t: vec![0u64; 2 * self.n + 1],
        }
    }

    /// `a mod m` without dividing when `a` is already reduced (the
    /// common case on the hot path: group elements are always `< p`).
    fn reduced<'a>(&self, a: &'a Ubig) -> Cow<'a, Ubig> {
        if *a < self.modulus {
            Cow::Borrowed(a)
        } else {
            Cow::Owned(a.rem(&self.modulus))
        }
    }

    /// CIOS Montgomery multiplication kernel:
    /// `out = a * b * R^{-1} mod m`. `a`, `b`, `out` are `n`-limb
    /// little-endian, `a` and `b` already `< m`. Allocation-free.
    fn mul_kernel(&self, a: &[u64], b: &[u64], out: &mut [u64], s: &mut MontScratch) {
        crate::stats::record_mont_mul();
        let n = self.n;
        let m = &self.modulus.limbs;
        let t = &mut s.t[..n + 2];
        t.fill(0);
        for &bi in b.iter().take(n) {
            // t += a * bi
            let mut carry: u64 = 0;
            for j in 0..n {
                let s = t[j] as u128 + a[j] as u128 * bi as u128 + carry as u128;
                t[j] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[n] as u128 + carry as u128;
            t[n] = s as u64;
            t[n + 1] = t[n + 1].wrapping_add((s >> 64) as u64);

            // u = t[0] * n0_inv mod 2^64; t += u * m; t >>= 64
            let u = t[0].wrapping_mul(self.n0_inv);
            let s0 = t[0] as u128 + u as u128 * m[0] as u128;
            debug_assert_eq!(s0 as u64, 0);
            let mut carry = (s0 >> 64) as u64;
            for j in 1..n {
                let s = t[j] as u128 + u as u128 * m[j] as u128 + carry as u128;
                t[j - 1] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[n] as u128 + carry as u128;
            t[n - 1] = s as u64;
            let s2 = t[n + 1] as u128 + (s >> 64);
            t[n] = s2 as u64;
            t[n + 1] = (s2 >> 64) as u64;
        }
        out.copy_from_slice(&t[..n]);
        // Conditional subtraction to bring the result below the modulus.
        if t[n] != 0 || ge(out, m) {
            sub_in_place(out, m);
        }
    }

    /// Montgomery squaring kernel: `out = a^2 * R^{-1} mod m`.
    ///
    /// Computes the double-width square with the half-product trick
    /// (each cross term `a[i]·a[j]`, `i < j`, is computed once and
    /// doubled — roughly half the partial products of [`Self::mul_kernel`])
    /// and then folds it with a separated Montgomery reduction pass.
    fn sqr_kernel(&self, a: &[u64], out: &mut [u64], s: &mut MontScratch) {
        crate::stats::record_mont_sqr();
        let n = self.n;
        debug_assert_eq!(a.len(), n);
        {
            let t = &mut s.t[..2 * n];
            t.fill(0);
            // Off-diagonal products, computed once each.
            for i in 0..n {
                let ai = a[i] as u128;
                let mut carry: u64 = 0;
                for j in (i + 1)..n {
                    let v = t[i + j] as u128 + ai * a[j] as u128 + carry as u128;
                    t[i + j] = v as u64;
                    carry = (v >> 64) as u64;
                }
                // First touch of t[i + n] in this pass.
                t[i + n] = carry;
            }
            // Double the off-diagonal sum: it is < a^2 / 2 < 2^(128n - 1),
            // so the shift cannot carry out of 2n limbs.
            let mut high = 0u64;
            for limb in t.iter_mut() {
                let next_high = *limb >> 63;
                *limb = (*limb << 1) | high;
                high = next_high;
            }
            debug_assert_eq!(high, 0);
            // Add the diagonal squares a[i]^2 at position 2i.
            let mut carry: u64 = 0;
            for i in 0..n {
                let sq = a[i] as u128 * a[i] as u128;
                let v = t[2 * i] as u128 + (sq as u64) as u128 + carry as u128;
                t[2 * i] = v as u64;
                let v2 = t[2 * i + 1] as u128 + ((sq >> 64) as u64) as u128 + (v >> 64);
                t[2 * i + 1] = v2 as u64;
                carry = (v2 >> 64) as u64;
            }
            debug_assert_eq!(carry, 0, "a^2 fits in 2n limbs");
        }
        self.reduce_kernel(out, s);
    }

    /// Separated Montgomery reduction of the `2n`-limb value in
    /// `s.t[..2n]`: `out = s.t * R^{-1} mod m`.
    fn reduce_kernel(&self, out: &mut [u64], s: &mut MontScratch) {
        let n = self.n;
        let m = &self.modulus.limbs;
        let t = &mut s.t[..2 * n + 1];
        t[2 * n] = 0;
        for i in 0..n {
            let u = t[i].wrapping_mul(self.n0_inv);
            let mut carry: u64 = 0;
            for j in 0..n {
                let v = t[i + j] as u128 + u as u128 * m[j] as u128 + carry as u128;
                t[i + j] = v as u64;
                carry = (v >> 64) as u64;
            }
            let mut k = i + n;
            while carry != 0 {
                debug_assert!(k <= 2 * n);
                let v = t[k] as u128 + carry as u128;
                t[k] = v as u64;
                carry = (v >> 64) as u64;
                k += 1;
            }
        }
        out.copy_from_slice(&t[n..2 * n]);
        if t[2 * n] != 0 || ge(out, m) {
            sub_in_place(out, m);
        }
    }

    /// Converts `a` into Montgomery form (`a` reduced first if needed).
    pub fn to_mont(&self, a: &Ubig) -> MontElem {
        let mut s = self.scratch();
        MontElem {
            limbs: self.to_mont_limbs(&self.reduced(a), &mut s),
        }
    }

    /// Converts `a` (< m) into Montgomery form limbs.
    fn to_mont_limbs(&self, a: &Ubig, s: &mut MontScratch) -> Vec<u64> {
        debug_assert!(*a < self.modulus);
        let mut out = vec![0u64; self.n];
        self.mul_kernel(&pad(a, self.n), &self.r2, &mut out, s);
        out
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &MontElem) -> Ubig {
        let mut s = self.scratch();
        self.redc(&a.limbs, &mut s)
    }

    /// Montgomery reduction: converts out of Montgomery form and
    /// normalizes to `Ubig`.
    fn redc(&self, a: &[u64], s: &mut MontScratch) -> Ubig {
        crate::stats::record_redc();
        let one = pad(&Ubig::one(), self.n);
        let mut out = vec![0u64; self.n];
        self.mul_kernel(a, &one, &mut out, s);
        Ubig::from_limbs(out)
    }

    /// Montgomery-domain multiplication `out = a · b · R^{-1} mod m`
    /// (all in Montgomery form). Allocation-free given a reusable
    /// scratch and an `out` obtained from [`Montgomery::to_mont`].
    pub fn mont_mul(&self, a: &MontElem, b: &MontElem, out: &mut MontElem, s: &mut MontScratch) {
        out.limbs.resize(self.n, 0);
        self.mul_kernel(&a.limbs, &b.limbs, &mut out.limbs, s);
    }

    /// Montgomery-domain squaring `out = a² · R^{-1} mod m` — the
    /// half-product kernel, ~half the partial products of
    /// [`Montgomery::mont_mul`].
    pub fn mont_sqr(&self, a: &MontElem, out: &mut MontElem, s: &mut MontScratch) {
        out.limbs.resize(self.n, 0);
        self.sqr_kernel(&a.limbs, &mut out.limbs, s);
    }

    /// Modular multiplication `(a * b) mod m` through the Montgomery
    /// domain (constant context reuse makes this much faster than
    /// [`Ubig::modmul`] for many multiplications by the same modulus).
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let mut s = self.scratch();
        let am = self.to_mont_limbs(&self.reduced(a), &mut s);
        let bm = self.to_mont_limbs(&self.reduced(b), &mut s);
        let mut prod = vec![0u64; self.n];
        self.mul_kernel(&am, &bm, &mut prod, &mut s);
        self.redc(&prod, &mut s)
    }

    /// Windowed modular exponentiation: `base^exp mod m`.
    ///
    /// Runs in time proportional to `exp.bit_len()` squarings plus
    /// `exp.bit_len()/WINDOW` multiplications — the same cost profile the
    /// paper's Table 1 counts as one "exponentiation". The ladder is
    /// allocation-free per step: it ping-pongs two buffers and reuses a
    /// single scratch workspace.
    pub fn modexp(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        let mut s = self.scratch();
        self.modexp_with(base, exp, &mut s)
    }

    /// [`Montgomery::modexp`] with a caller-provided workspace (hot
    /// loops performing many exponentiations by the same modulus).
    pub fn modexp_with(&self, base: &Ubig, exp: &Ubig, s: &mut MontScratch) -> Ubig {
        crate::stats::record_modexp();
        if exp.is_zero() {
            return Ubig::one().rem(&self.modulus);
        }
        let base = self.reduced(base);
        if base.is_zero() {
            return Ubig::zero();
        }
        let n = self.n;
        let bm = self.to_mont_limbs(&base, s);

        // Precompute odd powers bm^1, bm^3, ..., bm^(2^WINDOW - 1) in a
        // single flat buffer with stride n (one allocation, contiguous).
        let mut bm2 = vec![0u64; n];
        self.sqr_kernel(&bm, &mut bm2, s);
        let table_len = 1 << (WINDOW - 1);
        let mut table = vec![0u64; table_len * n];
        table[..n].copy_from_slice(&bm);
        let mut next = vec![0u64; n];
        for i in 1..table_len {
            self.mul_kernel(&table[(i - 1) * n..i * n], &bm2, &mut next, s);
            table[i * n..(i + 1) * n].copy_from_slice(&next);
        }

        let mut acc = self.r1.clone(); // Montgomery form of 1
        let mut tmp = next; // reuse: ping-pong partner for acc
        let mut i = exp.bit_len() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                self.sqr_kernel(&acc, &mut tmp, s);
                std::mem::swap(&mut acc, &mut tmp);
                i -= 1;
                continue;
            }
            // Find the longest window [j..=i] ending in a set bit.
            let j = (i - WINDOW as isize + 1).max(0);
            let mut j = j as usize;
            while !exp.bit(j) {
                j += 1;
            }
            let width = i as usize - j + 1;
            let mut value = 0usize;
            for k in (j..=i as usize).rev() {
                value = (value << 1) | exp.bit(k) as usize;
            }
            for _ in 0..width {
                self.sqr_kernel(&acc, &mut tmp, s);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let entry = (value >> 1) * n;
            self.mul_kernel(&acc, &table[entry..entry + n], &mut tmp, s);
            std::mem::swap(&mut acc, &mut tmp);
            i = j as isize - 1;
        }
        self.redc(&acc, s)
    }

    /// Precomputes a fixed-base window table for `base`, covering
    /// exponents up to `max_exp_bits` bits. Exponentiations by this
    /// base then run as pure table multiplications — no squarings —
    /// via [`Montgomery::modexp_fixed`].
    ///
    /// The table holds `ceil(max_exp_bits / w) · (2^w - 1)` Montgomery
    /// residues (`w = 4`), i.e. entry `(i, d)` is `base^(d · 2^(w·i))`.
    pub fn fixed_base(&self, base: &Ubig, max_exp_bits: usize) -> FixedBase {
        let n = self.n;
        let digits = (1usize << WINDOW) - 1;
        let rows = max_exp_bits.div_ceil(WINDOW).max(1);
        let mut s = self.scratch();
        let base_reduced = self.reduced(base).into_owned();
        let mut table = vec![0u64; rows * digits * n];
        let mut row_base = self.to_mont_limbs(&base_reduced, &mut s); // base^(2^(w·i))
        let mut tmp = vec![0u64; n];
        for i in 0..rows {
            if i > 0 {
                // row base ^= 2^WINDOW
                for _ in 0..WINDOW {
                    self.sqr_kernel(&row_base, &mut tmp, &mut s);
                    std::mem::swap(&mut row_base, &mut tmp);
                }
            }
            let off = i * digits * n;
            table[off..off + n].copy_from_slice(&row_base);
            for d in 2..=digits {
                let prev = off + (d - 2) * n;
                self.mul_kernel(&table[prev..prev + n], &row_base, &mut tmp, &mut s);
                table[off + (d - 1) * n..off + d * n].copy_from_slice(&tmp);
            }
        }
        FixedBase {
            base: base_reduced,
            rows,
            table,
        }
    }

    /// Fixed-base exponentiation `fb.base ^ exp mod m` from the
    /// precomputed table: one Montgomery multiplication per non-zero
    /// exponent digit, zero squarings. Falls back to the generic
    /// ladder for exponents wider than the table.
    pub fn modexp_fixed(&self, fb: &FixedBase, exp: &Ubig) -> Ubig {
        let mut s = self.scratch();
        self.modexp_fixed_with(fb, exp, &mut s)
    }

    /// [`Montgomery::modexp_fixed`] with a caller-provided workspace.
    pub fn modexp_fixed_with(&self, fb: &FixedBase, exp: &Ubig, s: &mut MontScratch) -> Ubig {
        crate::stats::record_fixed_base_exp();
        if exp.is_zero() {
            return Ubig::one().rem(&self.modulus);
        }
        if exp.bit_len() > fb.rows * WINDOW {
            return self.modexp_with(&fb.base, exp, s);
        }
        if fb.base.is_zero() {
            return Ubig::zero();
        }
        let n = self.n;
        let digits = (1usize << WINDOW) - 1;
        let mut acc = self.r1.clone(); // Montgomery form of 1
        let mut tmp = vec![0u64; n];
        let rows_needed = exp.bit_len().div_ceil(WINDOW);
        for i in 0..rows_needed {
            let mut d = 0usize;
            for b in 0..WINDOW {
                d |= (exp.bit(i * WINDOW + b) as usize) << b;
            }
            if d == 0 {
                continue;
            }
            let off = (i * digits + (d - 1)) * n;
            self.mul_kernel(&acc, &fb.table[off..off + n], &mut tmp, s);
            std::mem::swap(&mut acc, &mut tmp);
        }
        self.redc(&acc, s)
    }
}

/// A precomputed fixed-base exponentiation table (see
/// [`Montgomery::fixed_base`]). Build once per long-lived base — the
/// protocol layer builds one for the group generator `g` — and reuse
/// for every `g^x`.
#[derive(Clone, Debug)]
pub struct FixedBase {
    /// The (reduced) base, kept for the oversized-exponent fallback.
    base: Ubig,
    /// Number of `WINDOW`-bit digit positions covered.
    rows: usize,
    /// `rows × (2^WINDOW - 1) × n` limbs; entry `(i, d)` at offset
    /// `(i · (2^WINDOW - 1) + d - 1) · n` is `base^(d · 2^(WINDOW·i))`
    /// in Montgomery form.
    table: Vec<u64>,
}

impl FixedBase {
    /// The base this table exponentiates.
    pub fn base(&self) -> &Ubig {
        &self.base
    }

    /// Exponent capacity in bits.
    pub fn max_exp_bits(&self) -> usize {
        self.rows * WINDOW
    }
}

impl Ubig {
    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery + sliding window for odd moduli and a plain
    /// square-and-multiply with division-based reduction otherwise.
    ///
    /// **Performance caveat:** every call builds a fresh [`Montgomery`]
    /// context, which costs two long divisions (`R mod m`, `R² mod m`)
    /// before any ladder step runs. Hot paths that exponentiate by the
    /// same modulus repeatedly should build one context and call
    /// [`Montgomery::modexp`] (or [`Montgomery::modexp_with`] /
    /// [`Montgomery::modexp_fixed`]) instead — that is what the
    /// protocol layer's `DhGroup` does.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// let p = Ubig::from(1009u64);
    /// assert_eq!(Ubig::from(2u64).modexp(&Ubig::from(10u64), &p), Ubig::from(15u64));
    /// ```
    pub fn modexp(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modexp modulus must be non-zero");
        if m.is_one() {
            return Ubig::zero();
        }
        if let Some(ctx) = Montgomery::new(m) {
            return ctx.modexp(self, exp);
        }
        // Fallback for even moduli: left-to-right square and multiply.
        let mut acc = Ubig::one();
        let base = self.rem(m);
        for i in (0..exp.bit_len()).rev() {
            acc = acc.modmul(&acc, m);
            if exp.bit(i) {
                acc = acc.modmul(&base, m);
            }
        }
        acc
    }
}

fn pad(v: &Ubig, n: usize) -> Vec<u64> {
    let mut out = v.limbs.clone();
    out.resize(n, 0);
    out
}

fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = (a[i] as u128).wrapping_sub(b[i] as u128 + borrow as u128);
        a[i] = s as u64;
        borrow = ((s >> 64) as u64) & 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_tiny_modulus() {
        assert!(Montgomery::new(&Ubig::from(100u64)).is_none());
        assert!(Montgomery::new(&Ubig::one()).is_none());
        assert!(Montgomery::new(&Ubig::zero()).is_none());
        assert!(Montgomery::new(&Ubig::from(3u64)).is_some());
    }

    #[test]
    fn mont_mul_matches_naive() {
        let m = Ubig::from_hex("f6f33d0e9f7c9a1d62b7a8b3c4d5e6f7").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let a = Ubig::from_hex("123456789abcdef0123456789").unwrap();
        let b = Ubig::from_hex("fedcba98765432100fedcba98").unwrap();
        assert_eq!(ctx.mul(&a, &b), a.rem(&m).modmul(&b.rem(&m), &m));
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        let m = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            .unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let mut s = ctx.scratch();
        let mut rng = crate::SplitMix64::new(0xdead);
        use crate::rng::RandomSource;
        for _ in 0..50 {
            let a = rng.next_ubig_in_range(&m);
            let am = ctx.to_mont(&a);
            let mut sq = am.clone();
            let mut prod = am.clone();
            ctx.mont_sqr(&am, &mut sq, &mut s);
            ctx.mont_mul(&am, &am, &mut prod, &mut s);
            assert_eq!(sq, prod);
            assert_eq!(ctx.from_mont(&sq), a.modmul(&a, &m));
        }
    }

    #[test]
    fn mont_roundtrip() {
        let m = Ubig::from_hex("f6f33d0e9f7c9a1d62b7a8b3c4d5e6f7").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        for v in [Ubig::zero(), Ubig::one(), Ubig::from(0xdeadbeefu64)] {
            assert_eq!(ctx.from_mont(&ctx.to_mont(&v)), v);
        }
        // Unreduced input is reduced on entry.
        let big = &m + &Ubig::from(5u64);
        assert_eq!(ctx.from_mont(&ctx.to_mont(&big)), Ubig::from(5u64));
    }

    #[test]
    fn modexp_small_cases() {
        let p = Ubig::from(1009u64);
        assert_eq!(Ubig::from(2u64).modexp(&Ubig::from(0u64), &p), Ubig::one());
        assert_eq!(Ubig::from(2u64).modexp(&Ubig::one(), &p), Ubig::from(2u64));
        assert_eq!(
            Ubig::from(2u64).modexp(&Ubig::from(10u64), &p),
            Ubig::from(1024u64 % 1009)
        );
        assert_eq!(Ubig::zero().modexp(&Ubig::from(5u64), &p), Ubig::zero());
        assert_eq!(
            Ubig::from(5u64).modexp(&Ubig::from(3u64), &Ubig::one()),
            Ubig::zero()
        );
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) == 1 mod p for prime p, a not divisible by p.
        let p = Ubig::from_hex("ffffffffffffffc5").unwrap(); // 2^64 - 59, prime
        let exp = &p - &Ubig::one();
        for a in [2u64, 3, 65537, 0xdeadbeef] {
            assert_eq!(Ubig::from(a).modexp(&exp, &p), Ubig::one(), "a = {a}");
        }
    }

    #[test]
    fn modexp_even_modulus_fallback() {
        let m = Ubig::from(100u64);
        assert_eq!(
            Ubig::from(7u64).modexp(&Ubig::from(13u64), &m),
            Ubig::from(7u64.pow(13) % 100)
        );
    }

    #[test]
    fn modexp_matches_fallback_on_odd_modulus() {
        // Cross-check Montgomery path against the naive path.
        let m = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb925").unwrap();
        let base = Ubig::from_hex("123456789abcdef").unwrap();
        let exp = Ubig::from_hex("fedcba9876543210f0f0f0f0").unwrap();
        let fast = base.modexp(&exp, &m);
        let mut slow = Ubig::one();
        for i in (0..exp.bit_len()).rev() {
            slow = slow.modmul(&slow, &m);
            if exp.bit(i) {
                slow = slow.modmul(&base, &m);
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn fixed_base_matches_variable_base() {
        let m = Ubig::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
            .unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let g = Ubig::from(2u64);
        let fb = ctx.fixed_base(&g, m.bit_len());
        use crate::rng::RandomSource;
        let mut rng = crate::SplitMix64::new(7);
        for _ in 0..25 {
            let e = rng.next_ubig_in_range(&m);
            assert_eq!(ctx.modexp_fixed(&fb, &e), ctx.modexp(&g, &e));
        }
        // Edge exponents.
        assert_eq!(ctx.modexp_fixed(&fb, &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.modexp_fixed(&fb, &Ubig::one()), g.rem(&m));
        // Wider than the table: falls back to the generic ladder.
        let wide = &Ubig::one() << (fb.max_exp_bits() + 5);
        assert_eq!(ctx.modexp_fixed(&fb, &wide), ctx.modexp(&g, &wide));
    }

    #[test]
    fn fixed_base_zero_and_degenerate_bases() {
        let m = Ubig::from_hex("f6f33d0e9f7c9a1d62b7a8b3c4d5e6f7").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let fb0 = ctx.fixed_base(&Ubig::zero(), 64);
        assert_eq!(ctx.modexp_fixed(&fb0, &Ubig::from(9u64)), Ubig::zero());
        assert_eq!(ctx.modexp_fixed(&fb0, &Ubig::zero()), Ubig::one());
        let fb1 = ctx.fixed_base(&Ubig::one(), 64);
        assert_eq!(ctx.modexp_fixed(&fb1, &Ubig::from(1234u64)), Ubig::one());
    }

    #[test]
    fn dh_commutativity_512bit() {
        // The heart of every protocol in the paper: (g^a)^b == (g^b)^a.
        let p = Ubig::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437",
        )
        .unwrap(); // a 512-bit odd modulus (commutativity holds for any modulus)
        let g = Ubig::from(2u64);
        let a = Ubig::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        let b = Ubig::from_hex("fedcba9876543210ffeeddccbbaa9988").unwrap();
        let ga = g.modexp(&a, &p);
        let gb = g.modexp(&b, &p);
        assert_eq!(ga.modexp(&b, &p), gb.modexp(&a, &p));
    }
}

//! Probabilistic primality testing and prime generation.
//!
//! Provides what the crypto layer needs: Miller–Rabin testing, random
//! prime generation (for RSA key generation) and safe-prime generation
//! (for small Diffie–Hellman test groups; the production-size DH groups
//! are published constants in `gkap-crypto`).

use crate::montgomery::Montgomery;
use crate::rng::RandomSource;
use crate::ubig::Ubig;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Deterministic Miller–Rabin witnesses sufficient for all `n < 3.3e24`
/// (covers every value we trial-divide plus gives a strong base set for
/// larger candidates before the random rounds).
const FIXED_WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Number of additional random Miller–Rabin rounds for large candidates.
/// 2^-128 error bound together with the fixed witnesses.
const RANDOM_ROUNDS: usize = 24;

/// Returns `true` if `n` is (probably) prime.
///
/// Deterministic for `n < 3.3e24`; for larger `n` the error probability
/// is below 2^-128.
///
/// ```
/// use gkap_bignum::{prime, SplitMix64, Ubig};
/// let mut rng = SplitMix64::new(1);
/// assert!(prime::is_prime(&Ubig::from(65_537u64), &mut rng));
/// assert!(!prime::is_prime(&Ubig::from(65_535u64), &mut rng));
/// ```
pub fn is_prime<R: RandomSource + ?Sized>(n: &Ubig, rng: &mut R) -> bool {
    if n.bit_len() <= 1 {
        return false; // 0, 1
    }
    for &p in &SMALL_PRIMES {
        let pb = Ubig::from(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s.
    let n_minus_1 = n.checked_sub(&Ubig::one()).expect("n >= 2");
    let s = n_minus_1.trailing_zeros();
    let d = &n_minus_1 >> s;

    // Every witness exponentiates by the same modulus: build the
    // Montgomery context (two long divisions) once for all rounds
    // instead of letting each `Ubig::modexp` rebuild it. Candidates
    // here are always odd (trial division removed even `n`).
    let ctx = Montgomery::new(n).expect("candidate is odd and > 3");
    let mut scratch = ctx.scratch();

    let mut witness_passes = |a: &Ubig| -> bool {
        let mut x = ctx.modexp_with(a, &d, &mut scratch);
        if x.is_one() || x == n_minus_1 {
            return true;
        }
        for _ in 1..s {
            x = ctx.mul(&x, &x);
            if x == n_minus_1 {
                return true;
            }
            if x.is_one() {
                return false; // non-trivial sqrt of 1
            }
        }
        false
    };

    for &a in &FIXED_WITNESSES {
        let ab = Ubig::from(a);
        if ab >= n_minus_1 {
            continue;
        }
        if !witness_passes(&ab) {
            return false;
        }
    }
    // Deterministic witnesses settle everything below ~2^81.
    if n.bit_len() <= 81 {
        return true;
    }
    let two = Ubig::from(2u64);
    let span = n_minus_1.checked_sub(&two).expect("n > 4 here");
    for _ in 0..RANDOM_ROUNDS {
        // a in [2, n-2]
        let a = &rng.next_ubig_in_range(&span) + &two;
        if !witness_passes(&a) {
            return false;
        }
    }
    true
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
///
/// ```
/// use gkap_bignum::{prime, SplitMix64};
/// let mut rng = SplitMix64::new(7);
/// let p = prime::random_prime(64, &mut rng);
/// assert_eq!(p.bit_len(), 64);
/// ```
pub fn random_prime<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> Ubig {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = rng.next_ubig_exact_bits(bits);
        candidate.set_bit(0, true); // force odd
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a *safe prime* `p = 2q + 1` (with `q` also prime) of exactly
/// `bits` bits, returning `(p, q)`.
///
/// Safe primes make every quadratic residue a generator of the order-`q`
/// subgroup, the standard Diffie–Hellman parameter shape the paper's
/// 512/1024-bit groups use. This is slow for large sizes — production
/// groups use the published constants in `gkap-crypto` — but is handy for
/// generating small test groups.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn random_safe_prime<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> (Ubig, Ubig) {
    assert!(bits >= 3, "safe primes need at least 3 bits");
    loop {
        let q = random_prime(bits - 1, rng);
        let p = &(&q << 1) + &Ubig::one();
        if p.bit_len() == bits && is_prime(&p, rng) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn small_primes_and_composites() {
        let mut rng = SplitMix64::new(1);
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65_537, 1_000_003];
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 1_000_001, 65_535];
        for p in primes {
            assert!(is_prime(&Ubig::from(p), &mut rng), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&Ubig::from(c), &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        let mut rng = SplitMix64::new(2);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&Ubig::from(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite.
        let mut rng = SplitMix64::new(3);
        let m127 = &(&Ubig::one() << 127) - &Ubig::one();
        assert!(is_prime(&m127, &mut rng));
        let f7 = &(&Ubig::one() << 128) + &Ubig::one();
        assert!(!is_prime(&f7, &mut rng));
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut rng = SplitMix64::new(4);
        for bits in [2usize, 3, 16, 64, 128] {
            let p = random_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = SplitMix64::new(5);
        let (p, q) = random_safe_prime(48, &mut rng);
        assert_eq!(p.bit_len(), 48);
        assert_eq!(p, &(&q << 1) + &Ubig::one());
        assert!(is_prime(&q, &mut rng));
        assert!(is_prime(&p, &mut rng));
    }

    #[test]
    fn deterministic_generation() {
        let p1 = random_prime(64, &mut SplitMix64::new(99));
        let p2 = random_prime(64, &mut SplitMix64::new(99));
        assert_eq!(p1, p2);
    }
}

//! Minimal deterministic entropy abstraction.
//!
//! The simulation layers need reproducible randomness, and the crypto
//! layer needs a pluggable entropy source; [`RandomSource`] is the
//! narrow interface both consume. [`SplitMix64`] is the default
//! deterministic implementation (Steele, Lea & Flood's SplitMix64).

use crate::ubig::Ubig;

/// A source of 64-bit random words.
///
/// Implemented by [`SplitMix64`]; higher layers may adapt any other
/// generator (e.g. `rand` RNGs in tests) by implementing this trait.
pub trait RandomSource {
    /// Returns the next 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Fills `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// Returns a uniformly random integer with *exactly* `bits` bits
    /// (the top bit is forced to 1), e.g. for prime candidates.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    fn next_ubig_exact_bits(&mut self, bits: usize) -> Ubig {
        assert!(bits > 0, "cannot draw a 0-bit integer");
        let mut v = self.next_ubig_below_bits(bits);
        v.set_bit(bits - 1, true);
        v
    }

    /// Returns a uniformly random integer in `[0, 2^bits)`.
    fn next_ubig_below_bits(&mut self, bits: usize) -> Ubig {
        let limbs = bits.div_ceil(64);
        let mut v = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            v.push(self.next_u64());
        }
        let extra = limbs * 64 - bits;
        if extra > 0 {
            let last = v.last_mut().expect("bits > 0 implies at least one limb");
            *last >>= extra;
        }
        Ubig::from_limbs(v)
    }

    /// Returns a uniformly random integer in `[1, bound)` by rejection
    /// sampling. Intended for Diffie–Hellman exponents.
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 1`.
    fn next_ubig_in_range(&mut self, bound: &Ubig) -> Ubig {
        assert!(
            bound > &Ubig::one(),
            "range must contain at least one value"
        );
        let bits = bound.bit_len();
        loop {
            let v = self.next_ubig_below_bits(bits);
            if !v.is_zero() && &v < bound {
                return v;
            }
        }
    }
}

/// SplitMix64: a tiny, high-quality, splittable deterministic generator.
///
/// Used as the reproducibility backbone of every simulation in this
/// workspace. **Not** cryptographically secure — the crypto layer
/// documents where a real deployment must substitute an OS CSPRNG.
///
/// # Example
///
/// ```
/// use gkap_bignum::{RandomSource, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator (used to give each
    /// simulated member its own stream).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 from the reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn determinism_and_split_independence() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let child_a = a.split();
        let child_b = b.split();
        assert_eq!(child_a, child_b);
        assert_ne!(a.next_u64(), SplitMix64::new(8).next_u64());
    }

    #[test]
    fn exact_bits_has_top_bit() {
        let mut r = SplitMix64::new(1);
        for bits in [1usize, 2, 63, 64, 65, 127, 256, 512] {
            let v = r.next_ubig_exact_bits(bits);
            assert_eq!(v.bit_len(), bits, "bits = {bits}");
        }
    }

    #[test]
    fn below_bits_bounded() {
        let mut r = SplitMix64::new(2);
        for _ in 0..100 {
            let v = r.next_ubig_below_bits(10);
            assert!(v < Ubig::from(1024u64));
        }
    }

    #[test]
    fn range_sampling_in_bounds_and_nonzero() {
        let mut r = SplitMix64::new(3);
        let bound = Ubig::from(17u64);
        let mut seen = [false; 17];
        for _ in 0..500 {
            let v = r.next_ubig_in_range(&bound);
            let x = v.to_u64().unwrap() as usize;
            assert!((1..17).contains(&x));
            seen[x] = true;
        }
        assert!(seen[1..17].iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    #[should_panic(expected = "0-bit")]
    fn exact_bits_zero_panics() {
        SplitMix64::new(0).next_ubig_exact_bits(0);
    }
}

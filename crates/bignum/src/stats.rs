//! Thread-local kernel operation counters.
//!
//! The paper attributes rekey cost to cryptographic compute by
//! counting primitive operations (Table 1); the manifest layer does
//! the same one level down, counting the *actual* Montgomery kernel
//! invocations a run performed. This crate sits below the telemetry
//! stack, so the counters are plain thread-local integers: each
//! increment is one add on a `Cell`, cheap enough for the hottest
//! kernels, and the harness samples them with [`take`] around a
//! (single-threaded) run.
//!
//! Counts are per-thread. The experiment harness runs each simulated
//! world to completion on one thread, so bracketing a run with
//! [`take`] yields exact per-run counts regardless of how many worker
//! threads the surrounding grid uses — which is what keeps manifests
//! bit-identical across `--jobs` values.

use std::cell::Cell;

/// Kernel invocation counts since the last [`take`] on this thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelOps {
    /// Full Montgomery products (CIOS `mont_mul` kernel).
    pub mont_mul: u64,
    /// Half-product Montgomery squarings.
    pub mont_sqr: u64,
    /// Montgomery reductions (`redc`).
    pub redc: u64,
    /// Windowed modular exponentiations.
    pub modexp: u64,
    /// Fixed-base exponentiations served from a window table.
    pub fixed_base_exp: u64,
}

impl KernelOps {
    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &KernelOps) -> KernelOps {
        KernelOps {
            mont_mul: self.mont_mul.saturating_sub(earlier.mont_mul),
            mont_sqr: self.mont_sqr.saturating_sub(earlier.mont_sqr),
            redc: self.redc.saturating_sub(earlier.redc),
            modexp: self.modexp.saturating_sub(earlier.modexp),
            fixed_base_exp: self.fixed_base_exp.saturating_sub(earlier.fixed_base_exp),
        }
    }

    /// Element-wise sum: folds another delta into this one. Counts
    /// are plain integers, so merging is associative and commutative —
    /// per-shard deltas can be summed in any order and the total
    /// equals the single-bracket count of the same work.
    pub fn merge(&mut self, other: &KernelOps) {
        self.mont_mul += other.mont_mul;
        self.mont_sqr += other.mont_sqr;
        self.redc += other.redc;
        self.modexp += other.modexp;
        self.fixed_base_exp += other.fixed_base_exp;
    }

    /// `(name, count)` pairs in a fixed order, for manifest rendering.
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("mont_mul", self.mont_mul),
            ("mont_sqr", self.mont_sqr),
            ("redc", self.redc),
            ("modexp", self.modexp),
            ("fixed_base_exp", self.fixed_base_exp),
        ]
    }

    /// Sum of all kernel counts.
    pub fn total(&self) -> u64 {
        self.mont_mul + self.mont_sqr + self.redc + self.modexp + self.fixed_base_exp
    }
}

thread_local! {
    static OPS: Cell<KernelOps> = const { Cell::new(KernelOps {
        mont_mul: 0,
        mont_sqr: 0,
        redc: 0,
        modexp: 0,
        fixed_base_exp: 0,
    }) };
}

/// Current counts on this thread (without resetting).
pub fn snapshot() -> KernelOps {
    OPS.with(Cell::get)
}

/// Drains the counters: returns the counts accumulated since the
/// previous `take` on this thread and resets them to zero.
pub fn take() -> KernelOps {
    OPS.with(|c| c.replace(KernelOps::default()))
}

macro_rules! bump {
    ($fn_name:ident, $field:ident) => {
        #[inline]
        pub(crate) fn $fn_name() {
            OPS.with(|c| {
                let mut ops = c.get();
                ops.$field += 1;
                c.set(ops);
            });
        }
    };
}

bump!(record_mont_mul, mont_mul);
bump!(record_mont_sqr, mont_sqr);
bump!(record_redc, redc);
bump!(record_modexp, modexp);
bump!(record_fixed_base_exp, fixed_base_exp);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_drains_and_since_subtracts() {
        take();
        record_mont_mul();
        record_mont_mul();
        record_mont_sqr();
        record_modexp();
        let a = snapshot();
        assert_eq!((a.mont_mul, a.mont_sqr, a.modexp), (2, 1, 1));
        record_redc();
        let b = snapshot();
        let d = b.since(&a);
        assert_eq!(d.redc, 1);
        assert_eq!(d.mont_mul, 0);
        assert_eq!(take().total(), 5);
        assert_eq!(take(), KernelOps::default(), "drained");
    }

    #[test]
    fn entries_fixed_order() {
        let names: Vec<&str> = KernelOps::default()
            .entries()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            ["mont_mul", "mont_sqr", "redc", "modexp", "fixed_base_exp"]
        );
    }
}

//! The [`Ubig`] unsigned big-integer type: representation, construction,
//! conversions, comparison and bit-level accessors.
//!
//! Arithmetic lives in [`crate::arith`]; modular exponentiation in
//! [`crate::montgomery`].

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with the invariant that the
/// most-significant limb is non-zero (zero is the empty limb vector).
/// All arithmetic is `forbid(unsafe_code)`-pure Rust.
///
/// # Example
///
/// ```
/// use gkap_bignum::Ubig;
/// let a = Ubig::from(10u64);
/// let b = Ubig::from(4u64);
/// assert_eq!((&a * &b).to_string(), "40");
/// assert_eq!((&a - &b).to_string(), "6");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ubig {
    pub(crate) limbs: Vec<u64>,
}

/// Error returned when parsing a [`Ubig`] from a string fails.
///
/// ```
/// use gkap_bignum::Ubig;
/// assert!(Ubig::from_hex("xyz").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUbigError {
    pub(crate) offending: char,
}

impl fmt::Display for ParseUbigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid digit {:?} in big-integer literal",
            self.offending
        )
    }
}

impl Error for ParseUbigError {}

impl Ubig {
    /// The value `0`.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// assert!(Ubig::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Constructs a `Ubig` from little-endian limbs, normalizing away
    /// high zero limbs.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Ubig { limbs }
    }

    /// Borrows the little-endian limb slice (no trailing zero limbs).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Best-effort secret erasure: overwrites every limb with zero,
    /// pins the stores behind [`std::hint::black_box`] so the
    /// optimizer cannot elide them as dead writes, then truncates to
    /// the canonical zero representation.
    ///
    /// "Best effort" because the crate forbids `unsafe`, so there is
    /// no volatile-write guarantee, and intermediate reallocations
    /// during earlier arithmetic may have left copies elsewhere on the
    /// heap. The wrapper type `gkap-crypto::Secret` calls this on drop.
    pub fn zeroize(&mut self) {
        for limb in self.limbs.iter_mut() {
            *limb = 0;
        }
        std::hint::black_box(self.limbs.as_slice());
        self.limbs.clear();
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// assert_eq!(Ubig::from(0b1011u64).bit_len(), 4);
    /// assert_eq!(Ubig::zero().bit_len(), 0);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian indexing; out-of-range bits are 0).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            while self.limbs.last() == Some(&0) {
                self.limbs.pop();
            }
        }
    }

    /// Interprets a big-endian byte string as an integer.
    ///
    /// This is the canonical wire decoding used by the protocol layer.
    ///
    /// ```
    /// # use gkap_bignum::Ubig;
    /// assert_eq!(Ubig::from_be_bytes(&[0x01, 0x00]), Ubig::from(256u64));
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        Ubig::from_limbs(limbs)
    }

    /// Encodes the integer as a minimal big-endian byte string
    /// (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Encodes the integer as a fixed-width big-endian byte string,
    /// left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` bytes.
    pub fn to_be_bytes_padded(&self, width: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(
            raw.len() <= width,
            "value of {} bytes does not fit in {} bytes",
            raw.len(),
            width
        );
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix; case-insensitive;
    /// embedded ASCII whitespace is ignored to allow RFC-style
    /// formatted constants).
    ///
    /// # Errors
    ///
    /// Returns [`ParseUbigError`] on any non-hex, non-whitespace
    /// character.
    pub fn from_hex(s: &str) -> Result<Self, ParseUbigError> {
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c.is_ascii_whitespace() {
                continue;
            }
            let v = c.to_digit(16).ok_or(ParseUbigError { offending: c })?;
            nibbles.push(v as u64);
        }
        let mut limbs = Vec::with_capacity(nibbles.len() / 16 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0;
        for &n in nibbles.iter().rev() {
            cur |= n << shift;
            shift += 4;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        Ok(Ubig::from_limbs(limbs))
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUbigError`] on any non-digit character.
    pub fn from_dec(s: &str) -> Result<Self, ParseUbigError> {
        let mut acc = Ubig::zero();
        let ten = Ubig::from(10u64);
        for c in s.chars() {
            let v = c.to_digit(10).ok_or(ParseUbigError { offending: c })? as u64;
            acc = &(&acc * &ten) + &Ubig::from(v);
        }
        Ok(acc)
    }

    /// Lowercase hexadecimal rendering without a prefix (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns the low 64 bits of the value (zero-extended).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from(v as u64)
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig(0x{})", self.to_hex())
    }
}

impl fmt::Display for Ubig {
    /// Decimal rendering (repeated division by 10^19 chunks).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19-decimal-digit chunks (largest power of ten < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = Ubig::from(CHUNK);
        let mut rest = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.div_rem(&chunk);
            chunks.push(r.low_u64());
            rest = q;
        }
        let mut s = format!("{}", chunks.pop().unwrap());
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::UpperHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex().to_uppercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert!(Ubig::zero().is_even());
        assert!(Ubig::one().is_odd());
        assert_eq!(Ubig::zero(), Ubig::from(0u64));
        assert_eq!(Ubig::default(), Ubig::zero());
    }

    #[test]
    fn bit_len_and_bit_access() {
        let v = Ubig::from_hex("8000000000000000").unwrap();
        assert_eq!(v.bit_len(), 64);
        assert!(v.bit(63));
        assert!(!v.bit(62));
        assert!(!v.bit(64 + 1));
        let w = Ubig::from_hex("10000000000000000").unwrap();
        assert_eq!(w.bit_len(), 65);
        assert!(w.bit(64));
    }

    #[test]
    fn set_bit_roundtrip_and_normalization() {
        let mut v = Ubig::zero();
        v.set_bit(200, true);
        assert_eq!(v.bit_len(), 201);
        v.set_bit(200, false);
        assert!(v.is_zero());
        assert_eq!(v.limbs.len(), 0, "normalization must strip zero limbs");
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["0", "1", "f", "deadbeef", "123456789abcdef0123456789abcdef"] {
            let v = Ubig::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s, "case {s}");
            assert_eq!(Ubig::from_hex(&v.to_hex()).unwrap(), v);
        }
        // Leading zeros parse but do not render.
        assert_eq!(Ubig::from_hex("000ff").unwrap().to_hex(), "ff");
    }

    #[test]
    fn hex_ignores_whitespace() {
        let a = Ubig::from_hex("dead beef\n  cafe").unwrap();
        let b = Ubig::from_hex("deadbeefcafe").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hex_rejects_garbage() {
        let err = Ubig::from_hex("12g4").unwrap_err();
        assert_eq!(err.offending, 'g');
        assert!(err.to_string().contains('g'));
    }

    #[test]
    fn decimal_parse_and_display() {
        let v = Ubig::from_dec("340282366920938463463374607431768211456").unwrap(); // 2^128
        assert_eq!(v.bit_len(), 129);
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
        assert_eq!(Ubig::from_dec("0").unwrap(), Ubig::zero());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = Ubig::from_hex("0102030405060708090a").unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(Ubig::from_be_bytes(&bytes), v);
        assert_eq!(Ubig::from_be_bytes(&[]), Ubig::zero());
        assert!(Ubig::zero().to_be_bytes().is_empty());
    }

    #[test]
    fn be_bytes_padded() {
        let v = Ubig::from(0x0102u64);
        assert_eq!(v.to_be_bytes_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn be_bytes_padded_overflow_panics() {
        Ubig::from(0x010203u64).to_be_bytes_padded(2);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = Ubig::from_hex("ffffffffffffffff").unwrap();
        let b = Ubig::from_hex("10000000000000000").unwrap();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        let c = Ubig::from_hex("20000000000000000").unwrap();
        assert!(b < c, "same limb count compares by magnitude");
    }

    #[test]
    fn u64_conversions() {
        assert_eq!(Ubig::from(42u64).to_u64(), Some(42));
        let big = Ubig::from_hex("10000000000000000").unwrap();
        assert_eq!(big.to_u64(), None);
        assert_eq!(big.low_u64(), 0);
        assert_eq!(Ubig::from(7u32), Ubig::from(7u64));
        assert_eq!(Ubig::from(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Ubig::zero()), "Ubig(0x0)");
        assert_eq!(format!("{:x}", Ubig::from(255u64)), "ff");
        assert_eq!(format!("{:X}", Ubig::from(255u64)), "FF");
    }
}

//! Property-based tests for the bignum substrate.

use gkap_bignum::{prime, RandomSource, SplitMix64, Ubig};
use proptest::prelude::*;

/// Strategy: arbitrary Ubig up to ~256 bits, biased toward interesting
/// edge shapes (zero, one, powers of two, all-ones limbs).
fn ubig() -> impl Strategy<Value = Ubig> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 0..32).prop_map(|b| Ubig::from_be_bytes(&b)),
        1 => (0usize..250).prop_map(|k| &Ubig::one() << k),
        1 => (0usize..250).prop_map(|k| (&Ubig::one() << k).checked_sub(&Ubig::one()).unwrap()),
        1 => Just(Ubig::zero()),
        1 => Just(Ubig::one()),
    ]
}

fn ubig_nonzero() -> impl Strategy<Value = Ubig> {
    ubig().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in ubig(), b in ubig()) {
        prop_assert_eq!((&a + &b).checked_sub(&b), Some(a));
    }

    #[test]
    fn mul_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_reconstructs(a in ubig(), b in ubig_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in ubig(), s in 0usize..200) {
        prop_assert_eq!(&a << s, &a * &(&Ubig::one() << s));
    }

    #[test]
    fn shr_is_div_by_power_of_two(a in ubig(), s in 0usize..200) {
        let (q, _) = a.div_rem(&(&Ubig::one() << s));
        prop_assert_eq!(&a >> s, q);
    }

    #[test]
    fn bytes_roundtrip(a in ubig()) {
        prop_assert_eq!(Ubig::from_be_bytes(&a.to_be_bytes()), a.clone());
        let padded = a.to_be_bytes_padded(40);
        prop_assert_eq!(Ubig::from_be_bytes(&padded), a);
    }

    #[test]
    fn hex_roundtrip(a in ubig()) {
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a.clone());
        prop_assert_eq!(Ubig::from_dec(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in ubig(), b in ubig()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn gcd_divides_both(a in ubig_nonzero(), b in ubig_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn gcd_matches_euclid(a in ubig(), b in ubig_nonzero()) {
        // Binary GCD against the classic Euclidean algorithm.
        let (mut x, mut y) = (a.clone(), b.clone());
        while !y.is_zero() {
            let r = x.rem(&y);
            x = y;
            y = r;
        }
        prop_assert_eq!(a.gcd(&b), x);
    }

    #[test]
    fn modexp_product_rule(a in ubig(), x in ubig(), y in ubig(), m in ubig()) {
        // a^(x+y) == a^x * a^y (mod m), odd modulus path
        let mut m = &(&m << 1) + &Ubig::one(); // force odd
        if m.is_one() { m = Ubig::from(3u64); }
        let lhs = a.modexp(&(&x + &y), &m);
        let rhs = a.modexp(&x, &m).modmul(&a.modexp(&y, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modexp_montgomery_matches_naive(a in ubig(), e in ubig(), m in ubig()) {
        let mut m = &(&m << 1) + &Ubig::one();
        if m.is_one() { m = Ubig::from(3u64); }
        let fast = a.modexp(&e, &m);
        let mut slow = Ubig::one().rem(&m);
        let base = a.rem(&m);
        for i in (0..e.bit_len()).rev() {
            slow = slow.modmul(&slow, &m);
            if e.bit(i) {
                slow = slow.modmul(&base, &m);
            }
        }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn mod_inverse_verifies_or_shares_factor(a in ubig_nonzero(), m in ubig()) {
        let m = &(&m << 1) + &Ubig::from(3u64); // odd, >= 3
        match a.mod_inverse(&m) {
            Some(inv) => {
                prop_assert!(inv < m);
                prop_assert_eq!(a.modmul(&inv, &m), Ubig::one());
            }
            None => prop_assert!(a.gcd(&m) > Ubig::one()),
        }
    }

    #[test]
    fn dh_commutes(seed in any::<u64>()) {
        // (g^a)^b == (g^b)^a on a random 64-bit prime-ish modulus.
        let mut rng = SplitMix64::new(seed);
        let p = prime::random_prime(48, &mut rng);
        let g = Ubig::from(2u64);
        let a = rng.next_ubig_in_range(&p);
        let b = rng.next_ubig_in_range(&p);
        let ga = g.modexp(&a, &p);
        let gb = g.modexp(&b, &p);
        prop_assert_eq!(ga.modexp(&b, &p), gb.modexp(&a, &p));
    }

    #[test]
    fn fermat_on_generated_primes(seed in any::<u64>(), bits in 8usize..64) {
        let mut rng = SplitMix64::new(seed);
        let p = prime::random_prime(bits, &mut rng);
        let span = p.checked_sub(&Ubig::from(2u64)).unwrap();
        let a = &rng.next_ubig_in_range(&span) + &Ubig::one(); // a in [2, p-1)
        let exp = p.checked_sub(&Ubig::one()).unwrap();
        prop_assert_eq!(a.modexp(&exp, &p), Ubig::one());
    }
}

#[test]
fn modexp_large_operand_sanity() {
    // A full-size (1024-bit) exponentiation completes and verifies the
    // product rule — guards against window/carry bugs at realistic sizes.
    let mut rng = SplitMix64::new(0xabcd);
    let m = {
        let mut m = rng.next_ubig_exact_bits(1024);
        m.set_bit(0, true);
        m
    };
    let a = rng.next_ubig_below_bits(1024);
    let x = rng.next_ubig_below_bits(512);
    let y = rng.next_ubig_below_bits(512);
    let lhs = a.modexp(&(&x + &y), &m);
    let rhs = a.modexp(&x, &m).modmul(&a.modexp(&y, &m), &m);
    assert_eq!(lhs, rhs);
}

proptest! {
    #[test]
    fn mont_sqr_equals_mont_mul_self(seed in any::<u64>(), bits in 65usize..320) {
        // The dedicated squaring kernel must agree with the general
        // multiplication kernel on every input, at every limb count.
        use gkap_bignum::Montgomery;
        let mut rng = SplitMix64::new(seed);
        let mut m = rng.next_ubig_exact_bits(bits);
        m.set_bit(0, true); // odd modulus
        let ctx = Montgomery::new(&m).unwrap();
        let mut scratch = ctx.scratch();
        let a = rng.next_ubig_in_range(&m);
        let am = ctx.to_mont(&a);
        let mut sq = am.clone();
        let mut prod = am.clone();
        ctx.mont_sqr(&am, &mut sq, &mut scratch);
        ctx.mont_mul(&am, &am, &mut prod, &mut scratch);
        prop_assert_eq!(&sq, &prod);
        prop_assert_eq!(ctx.from_mont(&sq), a.modmul(&a, &m));
    }

    #[test]
    fn fixed_base_equals_variable_base(seed in any::<u64>(), bits in 65usize..256) {
        use gkap_bignum::Montgomery;
        let mut rng = SplitMix64::new(seed);
        let mut m = rng.next_ubig_exact_bits(bits);
        m.set_bit(0, true);
        let ctx = Montgomery::new(&m).unwrap();
        let g = &rng.next_ubig_in_range(&m) + &Ubig::one();
        let fb = ctx.fixed_base(&g, m.bit_len());
        let e = rng.next_ubig_in_range(&m);
        prop_assert_eq!(ctx.modexp_fixed(&fb, &e), ctx.modexp(&g, &e));
    }
}

//! Protocol selection advice, codifying the paper's conclusions.
//!
//! The Secure Spread framework "allows the system to assign different
//! key agreement protocols to different groups" (§1.2). This module
//! turns §6.3's guidance into an executable policy — and, when a
//! definitive answer matters, into a measurement: the advisor can run
//! the actual simulation for a candidate workload and pick the winner.

use gkap_gcs::GcsConfig;

use crate::experiment::{
    run_join, run_leave_weighted, run_merge, run_partition, ExperimentConfig, SuiteKind,
};
use crate::protocols::ProtocolKind;

/// The network regime a group operates in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkKind {
    /// Low-delay network (sub-millisecond links): computation
    /// dominates.
    Lan,
    /// High-delay network (tens of milliseconds and beyond):
    /// communication rounds dominate.
    Wan,
}

/// The expected mix of membership events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventMix {
    /// Mostly joins and leaves of single members (the common case the
    /// paper measures).
    JoinLeave,
    /// Frequent partitions and merges (flaky connectivity).
    PartitionMerge,
}

/// A workload description for protocol selection.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Network regime.
    pub network: NetworkKind,
    /// Dominant event mix.
    pub events: EventMix,
    /// Typical group size.
    pub group_size: usize,
}

/// Static advice from the paper's conclusions (§6.3/§7): no
/// simulation, just the published guidance.
///
/// * Small LAN groups: BD's simplicity is competitive, but TGDH/STR
///   already win in this implementation; the paper picks TGDH overall.
/// * LAN at any size: TGDH ("the best performing protocol overall").
/// * WAN join/leave: TGDH/CKD cluster at the top; TGDH is preferred
///   for its contributory key (CKD is not contributory).
/// * WAN with frequent partitions: TGDH's multi-round partition is its
///   weak spot; STR (single-round partition) is the better choice.
///
/// ```
/// use gkap_core::advisor::{advise, EventMix, NetworkKind, Workload};
/// use gkap_core::protocols::ProtocolKind;
/// let w = Workload { network: NetworkKind::Lan, events: EventMix::JoinLeave, group_size: 30 };
/// assert_eq!(advise(&w), ProtocolKind::Tgdh);
/// ```
pub fn advise(workload: &Workload) -> ProtocolKind {
    match (workload.network, workload.events) {
        (NetworkKind::Lan, _) => ProtocolKind::Tgdh,
        (NetworkKind::Wan, EventMix::JoinLeave) => ProtocolKind::Tgdh,
        (NetworkKind::Wan, EventMix::PartitionMerge) => ProtocolKind::Str,
    }
}

/// One protocol's measured score for a workload.
#[derive(Clone, Debug)]
pub struct Score {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Weighted mean event time (virtual ms) over the workload mix.
    pub mean_ms: f64,
}

/// Empirical advice: simulates the workload for every protocol on the
/// given testbed and returns the ranking (best first).
///
/// The event mix is weighted per [`EventMix`]: `JoinLeave` scores
/// `(join + leave) / 2`; `PartitionMerge` scores
/// `(join + leave + partition + merge) / 4` with half-group
/// partitions/merges.
///
/// # Panics
///
/// Panics if any protocol fails the workload (a bug, not a policy
/// outcome).
pub fn rank_by_measurement(gcs: &GcsConfig, workload: &Workload) -> Vec<Score> {
    let n = workload.group_size.max(3);
    let mut scores: Vec<Score> = ProtocolKind::all()
        .into_iter()
        .map(|protocol| {
            let cfg = ExperimentConfig {
                protocol,
                gcs: gcs.clone(),
                suite: SuiteKind::Sim512,
                seed: 0xadu64 << 32 | n as u64,
                confirm_keys: false,
                telemetry: false,
            };
            let join = run_join(&cfg, n);
            let leave = run_leave_weighted(&cfg, n);
            assert!(join.ok && leave.ok, "{protocol} failed the workload");
            let mean_ms = match workload.events {
                EventMix::JoinLeave => (join.elapsed_ms + leave.elapsed_ms) / 2.0,
                EventMix::PartitionMerge => {
                    let p = run_partition(&cfg, n, (n / 2).max(1).min(n - 1));
                    let half = (n / 2).max(1);
                    let m = run_merge(&cfg, n - half, half);
                    assert!(p.ok && m.ok, "{protocol} failed partition/merge");
                    (join.elapsed_ms + leave.elapsed_ms + p.elapsed_ms + m.elapsed_ms) / 4.0
                }
            };
            Score { protocol, mean_ms }
        })
        .collect();
    scores.sort_by(|a, b| a.mean_ms.partial_cmp(&b.mean_ms).expect("finite"));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_advice_matches_paper() {
        let lan = Workload {
            network: NetworkKind::Lan,
            events: EventMix::JoinLeave,
            group_size: 40,
        };
        assert_eq!(advise(&lan), ProtocolKind::Tgdh);
        let wan_churn = Workload {
            network: NetworkKind::Wan,
            events: EventMix::PartitionMerge,
            group_size: 20,
        };
        assert_eq!(advise(&wan_churn), ProtocolKind::Str);
    }

    #[test]
    fn measured_ranking_lan_join_leave() {
        let w = Workload {
            network: NetworkKind::Lan,
            events: EventMix::JoinLeave,
            group_size: 30,
        };
        let ranking = rank_by_measurement(&gkap_gcs::testbed::lan(), &w);
        assert_eq!(ranking.len(), 5);
        // TGDH or STR lead on the LAN; BD and GDH trail at this size.
        let top = ranking[0].protocol;
        assert!(
            top == ProtocolKind::Tgdh || top == ProtocolKind::Str,
            "unexpected LAN winner {top}"
        );
        let last = ranking[4].protocol;
        assert!(
            last == ProtocolKind::Bd || last == ProtocolKind::Gdh,
            "unexpected LAN loser {last}"
        );
        // Sorted ascending.
        assert!(ranking.windows(2).all(|w| w[0].mean_ms <= w[1].mean_ms));
    }

    #[test]
    fn measured_ranking_wan_partition_merge_penalizes_gdh() {
        let w = Workload {
            network: NetworkKind::Wan,
            events: EventMix::PartitionMerge,
            group_size: 12,
        };
        let ranking = rank_by_measurement(&gkap_gcs::testbed::wan(), &w);
        let gdh_pos = ranking
            .iter()
            .position(|s| s.protocol == ProtocolKind::Gdh)
            .expect("present");
        assert!(
            gdh_pos >= 3,
            "GDH's m-round merge must rank poorly on the WAN"
        );
    }
}

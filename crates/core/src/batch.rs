//! Membership-event batching: coalescing joins and leaves that arrive
//! close together in virtual time into one cascaded agreement round
//! per group.
//!
//! The paper's §7 discussion of cascaded events — and the follow-on
//! tree-GKA work — identify batching as the amortization lever for
//! high-churn workloads: one agreement round over k changes costs far
//! less than k rounds. The batcher is a pure function from a churn
//! schedule to a batch schedule, so the same inputs always produce
//! the same batches regardless of parallelism.
//!
//! A batch opens when the first event of a group arrives and closes
//! `window` later; every event of that group inside the window joins
//! the batch. A window of zero degenerates to exactly one event per
//! batch, flushed at the event's own instant — byte-for-byte the
//! engine's historical one-event-per-round behaviour.

use gkap_gcs::{ClientId, GroupId};
use gkap_sim::Duration;

/// What a single churn event does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// A new client joins the group.
    Join(ClientId),
    /// An existing member leaves the group.
    Leave(ClientId),
}

/// One scheduled membership event, at a virtual-time offset from the
/// start of the measured run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnEvent {
    /// Offset from the start of the measured run.
    pub at: Duration,
    /// The group the event targets.
    pub group: GroupId,
    /// Join or leave, and of whom.
    pub kind: ChurnKind,
}

/// A coalesced batch: every event of one group that fell inside one
/// batching window, to be injected as a single membership change.
#[derive(Clone, Debug, Default)]
pub struct MembershipBatch {
    /// The group this batch belongs to.
    pub group: GroupId,
    /// When the first event of the batch arrived.
    pub opened_at: Duration,
    /// When the batch flushes (injection instant): `opened_at +
    /// window`, or `opened_at` itself for a zero window.
    pub flush_at: Duration,
    /// Clients joining in this batch.
    pub joined: Vec<ClientId>,
    /// Members leaving in this batch.
    pub left: Vec<ClientId>,
    /// Raw events coalesced into the batch, including join/leave
    /// pairs that cancelled out.
    pub events: usize,
    /// Arrival offset of every coalesced event (for batch-wait
    /// attribution), in arrival order; cancelled pairs included.
    pub arrivals: Vec<Duration>,
}

/// Coalesces a churn schedule into per-group membership batches.
#[derive(Clone, Copy, Debug)]
pub struct EventBatcher {
    window: Duration,
}

impl EventBatcher {
    /// A batcher with the given coalescing window.
    pub fn new(window: Duration) -> Self {
        EventBatcher { window }
    }

    /// The coalescing window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Coalesces `events` (any order) into batches, returned in global
    /// flush order (`flush_at`, then group id — a total order, so the
    /// injection sequence is deterministic).
    ///
    /// A client that joins and leaves (or leaves and joins) within one
    /// batch cancels out: the group never observes it, exactly as a
    /// real batching daemon would collapse the pair. A batch whose
    /// changes all cancel is dropped — its events still count toward
    /// throughput via [`MembershipBatch::events`] of surviving batches
    /// only, so callers should count raw events themselves.
    pub fn coalesce(&self, events: &[ChurnEvent]) -> Vec<MembershipBatch> {
        let mut sorted: Vec<&ChurnEvent> = events.iter().collect();
        sorted.sort_by_key(|e| (e.at, e.group));

        let mut open: std::collections::BTreeMap<GroupId, MembershipBatch> =
            std::collections::BTreeMap::new();
        let mut done: Vec<MembershipBatch> = Vec::new();
        for ev in sorted {
            if let Some(batch) = open.get_mut(&ev.group) {
                if self.window > Duration::ZERO && ev.at <= batch.opened_at + self.window {
                    apply(batch, ev);
                    continue;
                }
                done.push(open.remove(&ev.group).unwrap_or_default());
            }
            let mut batch = MembershipBatch {
                group: ev.group,
                opened_at: ev.at,
                flush_at: ev.at + self.window,
                ..MembershipBatch::default()
            };
            apply(&mut batch, ev);
            open.insert(ev.group, batch);
        }
        done.extend(open.into_values());

        // Join/leave pairs inside one batch cancel; empty batches drop.
        for batch in &mut done {
            let cancelled: Vec<ClientId> = batch
                .joined
                .iter()
                .copied()
                .filter(|c| batch.left.contains(c))
                .collect();
            batch.joined.retain(|c| !cancelled.contains(c));
            batch.left.retain(|c| !cancelled.contains(c));
        }
        done.retain(|b| !b.joined.is_empty() || !b.left.is_empty());
        done.sort_by_key(|b| (b.flush_at, b.group));
        done
    }
}

fn apply(batch: &mut MembershipBatch, ev: &ChurnEvent) {
    batch.events += 1;
    batch.arrivals.push(ev.at);
    match ev.kind {
        ChurnKind::Join(c) => batch.joined.push(c),
        ChurnKind::Leave(c) => batch.left.push(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, group: GroupId, kind: ChurnKind) -> ChurnEvent {
        ChurnEvent {
            at: Duration::from_micros(at_us),
            group,
            kind,
        }
    }

    #[test]
    fn window_zero_is_one_event_per_batch() {
        let batcher = EventBatcher::new(Duration::ZERO);
        let events = [
            ev(10, 0, ChurnKind::Join(5)),
            ev(10, 0, ChurnKind::Leave(1)),
            ev(20, 0, ChurnKind::Join(6)),
        ];
        let batches = batcher.coalesce(&events);
        assert_eq!(batches.len(), 3);
        for (batch, event) in batches.iter().zip(&events) {
            assert_eq!(batch.events, 1);
            assert_eq!(batch.flush_at, event.at);
            assert_eq!(batch.opened_at, event.at);
        }
    }

    #[test]
    fn events_inside_window_coalesce_per_group() {
        let batcher = EventBatcher::new(Duration::from_micros(100));
        let batches = batcher.coalesce(&[
            ev(10, 0, ChurnKind::Join(5)),
            ev(60, 0, ChurnKind::Leave(1)),
            ev(60, 1, ChurnKind::Join(9)),  // other group: own batch
            ev(200, 0, ChurnKind::Join(6)), // outside group 0's window
        ]);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].group, 0);
        assert_eq!(batches[0].joined, vec![5]);
        assert_eq!(batches[0].left, vec![1]);
        assert_eq!(batches[0].events, 2);
        assert_eq!(batches[0].flush_at, Duration::from_micros(110));
        assert_eq!(batches[1].group, 1);
        assert_eq!(batches[2].joined, vec![6]);
    }

    #[test]
    fn join_leave_pair_cancels_and_empty_batches_drop() {
        let batcher = EventBatcher::new(Duration::from_micros(100));
        let batches = batcher.coalesce(&[
            ev(10, 0, ChurnKind::Join(5)),
            ev(20, 0, ChurnKind::Leave(5)),
        ]);
        assert!(batches.is_empty());

        let batches = batcher.coalesce(&[
            ev(10, 0, ChurnKind::Join(5)),
            ev(20, 0, ChurnKind::Leave(5)),
            ev(30, 0, ChurnKind::Leave(2)),
        ]);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].joined.is_empty());
        assert_eq!(batches[0].left, vec![2]);
        assert_eq!(batches[0].events, 3);
    }

    #[test]
    fn flush_order_is_total() {
        let batcher = EventBatcher::new(Duration::from_micros(50));
        let batches =
            batcher.coalesce(&[ev(10, 1, ChurnKind::Join(9)), ev(10, 0, ChurnKind::Join(5))]);
        assert_eq!(batches.len(), 2);
        // Same flush instant: group id breaks the tie.
        assert_eq!(batches[0].group, 0);
        assert_eq!(batches[1].group, 1);
    }
}

//! Minimal binary codec for protocol messages.
//!
//! Hand-rolled (no serde) so the wire format is explicit, compact and
//! identical to what a C implementation circa 2002 would have sent:
//! big-endian integers and length-prefixed byte strings.

use bytes::Bytes;
use gkap_bignum::Ubig;

/// Encoding buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

/// Error produced when decoding malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was reading when input ran out or was invalid.
    pub context: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed protocol message while reading {}",
            self.context
        )
    }
}

impl std::error::Error for DecodeError {}

impl Enc {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed big integer (big-endian magnitude).
    pub fn ubig(&mut self, v: &Ubig) -> &mut Self {
        self.bytes(&v.to_be_bytes())
    }

    /// Finishes encoding.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoding cursor.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError { context });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4, context)?.try_into().expect("4"),
        ))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8, context)?.try_into().expect("8"),
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let len = self.u32(context)? as usize;
        self.take(len, context)
    }

    /// Reads a length-prefixed big integer.
    pub fn ubig(&mut self, context: &'static str) -> Result<Ubig, DecodeError> {
        Ok(Ubig::from_be_bytes(self.bytes(context)?))
    }

    /// Asserts that all input has been consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DecodeError {
                context: "trailing garbage",
            })
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let big = Ubig::from_hex("deadbeefcafebabe0123456789").unwrap();
        let mut e = Enc::new();
        e.u8(7)
            .u32(0xAABBCCDD)
            .u64(42)
            .bytes(b"hello")
            .ubig(&big)
            .ubig(&Ubig::zero());
        let wire = e.finish();
        let mut d = Dec::new(&wire);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xAABBCCDD);
        assert_eq!(d.u64("c").unwrap(), 42);
        assert_eq!(d.bytes("d").unwrap(), b"hello");
        assert_eq!(d.ubig("e").unwrap(), big);
        assert_eq!(d.ubig("f").unwrap(), Ubig::zero());
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_with_context() {
        let mut e = Enc::new();
        e.u32(1000); // claims 1000 bytes follow
        let wire = e.finish();
        let mut d = Dec::new(&wire);
        let err = d.bytes("payload").unwrap_err();
        assert_eq!(err.context, "payload");
        assert!(err.to_string().contains("payload"));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut e = Enc::new();
        e.u8(1).u8(2);
        let wire = e.finish();
        let mut d = Dec::new(&wire);
        d.u8("x").unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn empty_and_lengths() {
        let e = Enc::new();
        assert!(e.is_empty());
        let mut e = Enc::new();
        e.u8(1);
        assert_eq!(e.len(), 1);
        let wire = e.finish();
        let d = Dec::new(&wire);
        assert_eq!(d.remaining(), 1);
    }
}

//! The virtual-time cost model and operation counters.
//!
//! The simulation executes real cryptography on a small, fast DH group
//! but *charges* virtual time according to the paper's measured per-op
//! costs on its 666 MHz Pentium III platform (§6.1.1). This separates
//! protocol correctness (always real) from timing (modelled,
//! deterministic, host-independent).

use gkap_sim::Duration;
use serde::{Deserialize, Serialize};

/// Per-operation virtual-time costs.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// One full modular exponentiation in the DH group.
    pub exp: Duration,
    /// One modular multiplication (the unit of BD's hidden cost: a
    /// small-exponent exponentiation with exponent `e` costs about
    /// `1.5 * log2(e)` multiplications with square-and-multiply).
    pub modmul: Duration,
    /// One RSA signature (1024-bit, CRT).
    pub sign: Duration,
    /// One RSA signature verification (1024-bit, e = 3).
    pub verify: Duration,
    /// Per-received-message processing overhead at a member
    /// (unmarshalling, dispatch — §6.1.3 notes BD "deteriorates
    /// rapidly since … broadcasts add up").
    pub recv_overhead: Duration,
    /// Symmetric encryption/decryption of one group-key blob
    /// (CKD's key distribution unit).
    pub symmetric: Duration,
    /// One modular inverse of an exponent (GDH factor-out, BD round 2).
    pub inverse: Duration,
}

impl CostModel {
    /// The paper's platform constants for 512-bit Diffie–Hellman
    /// (§6.1.1: exponentiation ≈ 1.7 ms; RSA-1024 sign ≈ 9.4 ms,
    /// verify with e = 3 ≈ 1 ms — §6.1.1 notes verification is "relatively expensive" at scale even with e = 3).
    pub fn paper_512() -> Self {
        let exp = Duration::from_millis_f64(1.7);
        CostModel {
            exp,
            // square-and-multiply: ~1.5 * 512 multiplications per exp.
            modmul: Duration::from_millis_f64(1.7 / (1.5 * 512.0)),
            sign: Duration::from_millis_f64(9.4),
            verify: Duration::from_millis_f64(1.0),
            recv_overhead: Duration::from_micros(150),
            symmetric: Duration::from_micros(20),
            inverse: Duration::from_micros(50),
        }
    }

    /// The paper's platform constants for 1024-bit Diffie–Hellman
    /// (exponentiation ≈ 7.3 ms).
    pub fn paper_1024() -> Self {
        let exp = Duration::from_millis_f64(7.3);
        CostModel {
            exp,
            modmul: Duration::from_millis_f64(7.3 / (1.5 * 1024.0)),
            sign: Duration::from_millis_f64(9.4),
            verify: Duration::from_millis_f64(1.0),
            recv_overhead: Duration::from_micros(150),
            symmetric: Duration::from_micros(20),
            inverse: Duration::from_micros(50),
        }
    }

    /// A zero-cost model: pure protocol-correctness tests that do not
    /// care about virtual time.
    pub fn zero() -> Self {
        CostModel {
            exp: Duration::ZERO,
            modmul: Duration::ZERO,
            sign: Duration::ZERO,
            verify: Duration::ZERO,
            recv_overhead: Duration::ZERO,
            symmetric: Duration::ZERO,
            inverse: Duration::ZERO,
        }
    }

    /// The same model with DSA signatures instead of RSA e = 3:
    /// signing gets cheaper (one exponentiation plus change), but
    /// verification — performed by *every* receiver of *every*
    /// message — costs two full exponentiations. §6.1.1: "expensive
    /// signature verification (e.g., as in DSA) noticeably degrades
    /// performance".
    pub fn with_dsa_signatures(mut self) -> Self {
        self.sign = Duration::from_millis_f64(self.exp.as_millis_f64() * 1.2);
        self.verify = Duration::from_millis_f64(self.exp.as_millis_f64() * 2.2);
        self
    }

    /// Cost of one exponentiation with a *small* exponent `e` (BD's
    /// step 3): `~1.5 * bit_len(e)` modular multiplications.
    pub fn small_exp(&self, e: u64) -> Duration {
        let bits = 64 - e.leading_zeros() as u64;
        self.modmul * (bits + bits / 2)
    }
}

/// Cryptographic and communication operation counters.
///
/// Accumulated per member; the experiment drivers diff them around an
/// event and aggregate across members to validate the closed forms of
/// Table 1 (see [`crate::costs_table`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Full modular exponentiations.
    pub exp: u64,
    /// Small-exponent exponentiations (BD step 3 hidden cost).
    pub small_exp: u64,
    /// Modular inverses of exponents.
    pub inverse: u64,
    /// RSA signatures produced.
    pub sign: u64,
    /// RSA signatures verified.
    pub verify: u64,
    /// Symmetric encryptions/decryptions (CKD key blobs).
    pub symmetric: u64,
    /// Agreed multicasts sent.
    pub multicast: u64,
    /// Unicasts sent (Agreed or FIFO).
    pub unicast: u64,
}

impl OpCounts {
    /// Element-wise difference `self - earlier` (for around-event
    /// accounting).
    ///
    /// # Panics
    ///
    /// Panics if any counter of `earlier` exceeds the corresponding
    /// counter of `self` (counters are monotone).
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            exp: self.exp - earlier.exp,
            small_exp: self.small_exp - earlier.small_exp,
            inverse: self.inverse - earlier.inverse,
            sign: self.sign - earlier.sign,
            verify: self.verify - earlier.verify,
            symmetric: self.symmetric - earlier.symmetric,
            multicast: self.multicast - earlier.multicast,
            unicast: self.unicast - earlier.unicast,
        }
    }

    /// Element-wise sum (for aggregating across members).
    pub fn add(&mut self, other: &OpCounts) {
        self.exp += other.exp;
        self.small_exp += other.small_exp;
        self.inverse += other.inverse;
        self.sign += other.sign;
        self.verify += other.verify;
        self.symmetric += other.symmetric;
        self.multicast += other.multicast;
        self.unicast += other.unicast;
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.multicast + self.unicast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_ordered_sensibly() {
        let m512 = CostModel::paper_512();
        let m1024 = CostModel::paper_1024();
        assert!(m1024.exp > m512.exp);
        assert!(m512.verify < m512.sign);
        // ~4.3x ratio between 1024- and 512-bit exponentiation.
        let ratio = m1024.exp.as_millis_f64() / m512.exp.as_millis_f64();
        assert!((4.0..4.6).contains(&ratio));
    }

    #[test]
    fn small_exp_cost_tracks_exponent_size() {
        let m = CostModel::paper_512();
        assert!(m.small_exp(50) > m.small_exp(2));
        assert!(
            m.small_exp(50) < m.exp,
            "small exponent is far below a full exp"
        );
        assert_eq!(m.small_exp(0), Duration::ZERO);
        // Paper: "373 1024-bit modular multiplications" for ~n=50 and
        // 1024-bit modulus; our per-exp accounting gives n * ~1.5*6
        // muls = ~9 muls each -> ~450 for 50 members. Same order.
        let m1024 = CostModel::paper_1024();
        let muls_per = m1024.small_exp(50).as_millis_f64() / m1024.modmul.as_millis_f64();
        assert!((6.0..12.0).contains(&muls_per));
    }

    #[test]
    fn counts_diff_and_sum() {
        let mut a = OpCounts {
            exp: 5,
            sign: 2,
            ..Default::default()
        };
        let b = OpCounts {
            exp: 2,
            sign: 1,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.exp, 3);
        assert_eq!(d.sign, 1);
        a.add(&b);
        assert_eq!(a.exp, 7);
        assert_eq!(a.messages(), 0);
        let m = OpCounts {
            multicast: 2,
            unicast: 3,
            ..Default::default()
        };
        assert_eq!(m.messages(), 5);
    }

    #[test]
    #[should_panic]
    fn since_panics_on_regression() {
        let a = OpCounts {
            exp: 1,
            ..Default::default()
        };
        let b = OpCounts {
            exp: 2,
            ..Default::default()
        };
        let _ = a.since(&b);
    }
}

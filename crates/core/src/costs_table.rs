//! Table 1 of the paper — communication and computation costs — in two
//! forms:
//!
//! * [`paper_rows`]: the paper's own *serial* cost formulas (the table
//!   as printed), evaluated for given group parameters, used by the
//!   reproduction harness to regenerate Table 1;
//! * [`expected_aggregate`]: exact closed forms for the *aggregate*
//!   operation counts our implementations produce across all members,
//!   which the test suite checks against live counters (GDH, CKD and
//!   BD have shape-independent counts; TGDH and STR depend on tree
//!   shape and are bounded rather than pinned).

use crate::cost::OpCounts;
use crate::protocols::ProtocolKind;

/// The membership events of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupEvent {
    /// One member joins a group of `n`.
    Join,
    /// One member leaves a group of `n`.
    Leave,
    /// `m` members merge into a group of `n`.
    Merge(usize),
    /// `p` members are partitioned away from a group of `n`.
    Partition(usize),
}

impl GroupEvent {
    /// Resulting group size for a starting size of `n`.
    ///
    /// # Panics
    ///
    /// Panics if the event would empty the group.
    pub fn size_after(&self, n: usize) -> usize {
        match self {
            GroupEvent::Join => n + 1,
            GroupEvent::Leave => n.checked_sub(1).expect("leave from empty"),
            GroupEvent::Merge(m) => n + m,
            GroupEvent::Partition(p) => n.checked_sub(*p).expect("partition too large"),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GroupEvent::Join => "join",
            GroupEvent::Leave => "leave",
            GroupEvent::Merge(_) => "merge",
            GroupEvent::Partition(_) => "partition",
        }
    }
}

/// One row of the paper's Table 1: serial communication and
/// computation costs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRow {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Event.
    pub event: GroupEvent,
    /// Communication rounds.
    pub rounds: u64,
    /// Total messages.
    pub messages: u64,
    /// Unicasts among them.
    pub unicasts: u64,
    /// Multicasts among them.
    pub multicasts: u64,
    /// Serial exponentiations (the paper's headline computation cost).
    pub serial_exps: u64,
    /// Serial signatures.
    pub serial_signatures: u64,
    /// Serial verifications.
    pub serial_verifications: u64,
}

fn h(n: usize) -> u64 {
    // Key-tree height bound used by the paper for TGDH (< 2 log2 n).
    (n.max(2) as f64).log2().ceil() as u64
}

/// The paper's Table 1, evaluated for a group of size `n` (before the
/// event), `m` merging members and `p` partitioned members.
///
/// Formulas follow §5 of the paper; where the available text is
/// ambiguous the derivation from the protocol definitions in §4 is
/// used (documented in EXPERIMENTS.md).
pub fn paper_rows(n: usize, m: usize, p: usize) -> Vec<TableRow> {
    let n64 = n as u64;
    let m64 = m as u64;
    let p64 = p as u64;
    let ht = h(n);
    vec![
        // ---------------- GDH ----------------
        TableRow {
            protocol: ProtocolKind::Gdh,
            event: GroupEvent::Join,
            rounds: 4,
            messages: n64 + 3,
            unicasts: n64 + 1,
            multicasts: 2,
            serial_exps: n64 + 3,
            serial_signatures: 4,
            serial_verifications: n64 + 3,
        },
        TableRow {
            protocol: ProtocolKind::Gdh,
            event: GroupEvent::Leave,
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: n64 - 1,
            serial_signatures: 1,
            serial_verifications: 1,
        },
        TableRow {
            protocol: ProtocolKind::Gdh,
            event: GroupEvent::Merge(m),
            rounds: m64 + 3,
            messages: n64 + 2 * m64 + 1,
            unicasts: n64 + 2 * m64 - 1,
            multicasts: 2,
            serial_exps: n64 + 2 * m64 + 1,
            serial_signatures: m64 + 3,
            serial_verifications: n64 + 2 * m64 + 1,
        },
        TableRow {
            protocol: ProtocolKind::Gdh,
            event: GroupEvent::Partition(p),
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: n64 - p64,
            serial_signatures: 1,
            serial_verifications: 1,
        },
        // ---------------- TGDH ----------------
        TableRow {
            protocol: ProtocolKind::Tgdh,
            event: GroupEvent::Join,
            rounds: 2,
            messages: 3,
            unicasts: 0,
            multicasts: 3,
            serial_exps: 3 * ht / 2,
            serial_signatures: 2,
            serial_verifications: 3,
        },
        TableRow {
            protocol: ProtocolKind::Tgdh,
            event: GroupEvent::Leave,
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: 3 * ht / 2,
            serial_signatures: 1,
            serial_verifications: 1,
        },
        TableRow {
            protocol: ProtocolKind::Tgdh,
            event: GroupEvent::Merge(m),
            rounds: 2,
            messages: 3,
            unicasts: 0,
            multicasts: 3,
            serial_exps: 3 * ht / 2,
            serial_signatures: 2,
            serial_verifications: 3,
        },
        TableRow {
            protocol: ProtocolKind::Tgdh,
            event: GroupEvent::Partition(p),
            rounds: ht.min(p64.max(1)),
            messages: 2 * ht,
            unicasts: 0,
            multicasts: 2 * ht,
            serial_exps: 3 * ht,
            serial_signatures: 2,
            serial_verifications: ht,
        },
        // ---------------- STR ----------------
        TableRow {
            protocol: ProtocolKind::Str,
            event: GroupEvent::Join,
            rounds: 2,
            messages: 3,
            unicasts: 0,
            multicasts: 3,
            serial_exps: 7,
            serial_signatures: 2,
            serial_verifications: 3,
        },
        TableRow {
            protocol: ProtocolKind::Str,
            event: GroupEvent::Leave,
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: 3 * n64 / 2 + 2,
            serial_signatures: 1,
            serial_verifications: 1,
        },
        TableRow {
            protocol: ProtocolKind::Str,
            event: GroupEvent::Merge(m),
            rounds: 2,
            messages: 3,
            unicasts: 0,
            multicasts: 3,
            serial_exps: 4 * m64 + 2,
            serial_signatures: 2,
            serial_verifications: 3,
        },
        TableRow {
            protocol: ProtocolKind::Str,
            event: GroupEvent::Partition(p),
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: 3 * (n64 - p64) / 2 + 2,
            serial_signatures: 1,
            serial_verifications: 1,
        },
        // ---------------- BD ----------------
        TableRow {
            protocol: ProtocolKind::Bd,
            event: GroupEvent::Join,
            rounds: 2,
            messages: 2 * (n64 + 1),
            unicasts: 0,
            multicasts: 2 * (n64 + 1),
            serial_exps: 3,
            serial_signatures: 2,
            serial_verifications: 2 * n64,
        },
        TableRow {
            protocol: ProtocolKind::Bd,
            event: GroupEvent::Leave,
            rounds: 2,
            messages: 2 * (n64 - 1),
            unicasts: 0,
            multicasts: 2 * (n64 - 1),
            serial_exps: 3,
            serial_signatures: 2,
            serial_verifications: 2 * (n64 - 2),
        },
        TableRow {
            protocol: ProtocolKind::Bd,
            event: GroupEvent::Merge(m),
            rounds: 2,
            messages: 2 * (n64 + m64),
            unicasts: 0,
            multicasts: 2 * (n64 + m64),
            serial_exps: 3,
            serial_signatures: 2,
            serial_verifications: 2 * (n64 + m64 - 1),
        },
        TableRow {
            protocol: ProtocolKind::Bd,
            event: GroupEvent::Partition(p),
            rounds: 2,
            messages: 2 * (n64 - p64),
            unicasts: 0,
            multicasts: 2 * (n64 - p64),
            serial_exps: 3,
            serial_signatures: 2,
            serial_verifications: 2 * (n64 - p64 - 1),
        },
        // ---------------- CKD ----------------
        TableRow {
            protocol: ProtocolKind::Ckd,
            event: GroupEvent::Join,
            rounds: 3,
            messages: 3,
            unicasts: 2,
            multicasts: 1,
            serial_exps: n64 + 2,
            serial_signatures: 3,
            serial_verifications: 3,
        },
        TableRow {
            protocol: ProtocolKind::Ckd,
            event: GroupEvent::Leave,
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: n64 - 1,
            serial_signatures: 1,
            serial_verifications: 1,
        },
        TableRow {
            protocol: ProtocolKind::Ckd,
            event: GroupEvent::Merge(m),
            rounds: 3,
            messages: m64 + 2,
            unicasts: m64,
            multicasts: 2,
            serial_exps: n64 + m64 + 1,
            serial_signatures: 3,
            serial_verifications: m64 + 2,
        },
        TableRow {
            protocol: ProtocolKind::Ckd,
            event: GroupEvent::Partition(p),
            rounds: 1,
            messages: 1,
            unicasts: 0,
            multicasts: 1,
            serial_exps: n64 - p64,
            serial_signatures: 1,
            serial_verifications: 1,
        },
    ]
}

/// Exact expected *aggregate* operation counts (summed over all
/// members) for the protocols whose counts are independent of tree
/// shape. `n` is the group size before the event. Returns `None` for
/// TGDH/STR (tree-shape dependent; the tests bound those instead).
pub fn expected_aggregate(kind: ProtocolKind, event: GroupEvent, n: usize) -> Option<OpCounts> {
    let after = event.size_after(n) as u64;
    match (kind, event) {
        (ProtocolKind::Gdh, GroupEvent::Join) | (ProtocolKind::Gdh, GroupEvent::Merge(_)) => {
            let m = match event {
                GroupEvent::Join => 1u64,
                GroupEvent::Merge(m) => m as u64,
                _ => unreachable!(),
            };
            let nn = after; // n + m
            Some(OpCounts {
                // controller refresh (1) + chain (m-1) + factor-outs
                // (nn-1) + new controller partials (nn-1) + everyone's
                // final key (nn).
                exp: 1 + (m - 1) + (nn - 1) + (nn - 1) + nn,
                inverse: nn - 1,
                sign: nn + m + 1,
                verify: m + 3 * (nn - 1),
                multicast: 2,
                unicast: m + nn - 1,
                ..Default::default()
            })
        }
        (ProtocolKind::Gdh, GroupEvent::Leave) | (ProtocolKind::Gdh, GroupEvent::Partition(_)) => {
            Some(OpCounts {
                exp: 2 * after - 1,
                inverse: 1,
                sign: 1,
                verify: after - 1,
                multicast: 1,
                unicast: 0,
                ..Default::default()
            })
        }
        (ProtocolKind::Bd, _) => {
            let nn = after;
            if nn < 2 {
                return None;
            }
            Some(OpCounts {
                exp: 3 * nn,
                small_exp: nn * (nn - 2),
                inverse: nn,
                sign: 2 * nn,
                verify: 2 * nn * (nn - 1),
                multicast: 2 * nn,
                unicast: 0,
                ..Default::default()
            })
        }
        (ProtocolKind::Ckd, GroupEvent::Join) => {
            let nn = after;
            Some(OpCounts {
                // controller pub (1) + controller pairwise (nn-1) +
                // joiner response (1) + every member pairwise (nn-1).
                exp: 2 * nn,
                sign: 3,
                verify: nn + 1,
                symmetric: 2 * (nn - 1),
                multicast: 1,
                unicast: 2,
                ..Default::default()
            })
        }
        (ProtocolKind::Ckd, GroupEvent::Merge(m)) => {
            let nn = after;
            let m = m as u64;
            Some(OpCounts {
                exp: 1 + (nn - 1) + m + (nn - 1),
                sign: 2 + m,
                // Broadcast invite verified by nn-1 receivers, m
                // responses by the controller, final dist by nn-1.
                verify: (nn - 1) + m + (nn - 1),
                symmetric: 2 * (nn - 1),
                multicast: 2,
                unicast: m,
                ..Default::default()
            })
        }
        (ProtocolKind::Ckd, GroupEvent::Leave) | (ProtocolKind::Ckd, GroupEvent::Partition(_)) => {
            // Continuing-controller case (the experiment weights the
            // controller-leave case separately).
            let nn = after;
            Some(OpCounts {
                exp: 2 * nn - 1,
                sign: 1,
                verify: nn - 1,
                symmetric: 2 * (nn - 1),
                multicast: 1,
                unicast: 0,
                ..Default::default()
            })
        }
        _ => None,
    }
}

/// Renders the paper's Table 1 for given parameters as an aligned
/// text table.
pub fn render_table1(n: usize, m: usize, p: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Table 1 — communication and computation costs (n={n}, m={m}, p={p})\n"
    ));
    out.push_str(&format!(
        "{:<6} {:<10} {:>7} {:>9} {:>9} {:>11} {:>7} {:>6} {:>8}\n",
        "proto", "event", "rounds", "messages", "unicasts", "multicasts", "exps", "sigs", "verifs"
    ));
    for row in paper_rows(n, m, p) {
        out.push_str(&format!(
            "{:<6} {:<10} {:>7} {:>9} {:>9} {:>11} {:>7} {:>6} {:>8}\n",
            row.protocol.name(),
            row.event.name(),
            row.rounds,
            row.messages,
            row.unicasts,
            row.multicasts,
            row.serial_exps,
            row.serial_signatures,
            row.serial_verifications
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_after() {
        assert_eq!(GroupEvent::Join.size_after(5), 6);
        assert_eq!(GroupEvent::Leave.size_after(5), 4);
        assert_eq!(GroupEvent::Merge(3).size_after(5), 8);
        assert_eq!(GroupEvent::Partition(2).size_after(5), 3);
    }

    #[test]
    #[should_panic]
    fn partition_larger_than_group_panics() {
        GroupEvent::Partition(6).size_after(5);
    }

    #[test]
    fn rows_cover_all_protocol_event_pairs() {
        let rows = paper_rows(10, 3, 2);
        assert_eq!(rows.len(), 20);
        for kind in ProtocolKind::all() {
            assert_eq!(rows.iter().filter(|r| r.protocol == kind).count(), 4);
        }
    }

    #[test]
    fn table1_orderings_hold() {
        // Qualitative statements of §5 for a representative size.
        let rows = paper_rows(20, 5, 5);
        let get = |k: ProtocolKind, e: &str| {
            rows.iter()
                .find(|r| r.protocol == k && r.event.name() == e)
                .expect("row")
                .clone()
        };
        // BD is the most expensive in messages for every event.
        for e in ["join", "leave", "merge", "partition"] {
            for k in [
                ProtocolKind::Gdh,
                ProtocolKind::Tgdh,
                ProtocolKind::Str,
                ProtocolKind::Ckd,
            ] {
                assert!(
                    get(ProtocolKind::Bd, e).messages >= get(k, e).messages,
                    "BD vs {k} on {e}"
                );
            }
        }
        // GDH merge needs the most rounds.
        assert!(get(ProtocolKind::Gdh, "merge").rounds > get(ProtocolKind::Tgdh, "merge").rounds);
        // TGDH leave beats GDH/CKD/STR in exponentiations.
        assert!(
            get(ProtocolKind::Tgdh, "leave").serial_exps
                < get(ProtocolKind::Gdh, "leave").serial_exps
        );
        assert!(
            get(ProtocolKind::Tgdh, "leave").serial_exps
                < get(ProtocolKind::Str, "leave").serial_exps
        );
        // STR join is constant and small.
        assert_eq!(get(ProtocolKind::Str, "join").serial_exps, 7);
        // Leave in GDH/STR/CKD/TGDH is one message.
        for k in [
            ProtocolKind::Gdh,
            ProtocolKind::Str,
            ProtocolKind::Ckd,
            ProtocolKind::Tgdh,
        ] {
            assert_eq!(get(k, "leave").messages, 1, "{k}");
        }
    }

    #[test]
    fn render_contains_all_protocols() {
        let t = render_table1(10, 2, 2);
        for k in ProtocolKind::all() {
            assert!(t.contains(k.name()));
        }
    }
}

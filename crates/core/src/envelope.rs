//! Signed protocol-message envelopes.
//!
//! "Every protocol message is signed by its sender and verified by all
//! receivers" (§3.2 of the paper). The envelope binds the sender, the
//! view (epoch) the message belongs to, and the protocol body; the
//! signature covers all three, which is the paper's defence against
//! impersonation and replay of old-view messages.

use bytes::Bytes;
use gkap_gcs::ClientId;

use crate::codec::{Dec, DecodeError, Enc};
use crate::suite::CryptoSuite;

/// A signed, epoch-tagged protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending member.
    pub sender: ClientId,
    /// View id this message belongs to.
    pub epoch: u64,
    /// Encoded protocol body.
    pub body: Bytes,
    /// Signature over (sender, epoch, body).
    pub sig: Vec<u8>,
}

/// Reasons envelope decoding or verification fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Wire format malformed.
    Malformed(DecodeError),
    /// Signature did not verify.
    BadSignature,
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Malformed(e) => write!(f, "malformed envelope: {e}"),
            EnvelopeError::BadSignature => write!(f, "envelope signature verification failed"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

fn signed_region(sender: ClientId, epoch: u64, body: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(sender as u32).u64(epoch).bytes(body);
    e.finish().to_vec()
}

impl Envelope {
    /// Creates and signs an envelope.
    pub fn seal(suite: &CryptoSuite, sender: ClientId, epoch: u64, body: Bytes) -> Self {
        let sig = suite.sign(&signed_region(sender, epoch, &body));
        Envelope {
            sender,
            epoch,
            body,
            sig,
        }
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u32(self.sender as u32)
            .u64(self.epoch)
            .bytes(&self.body)
            .bytes(&self.sig);
        e.finish()
    }

    /// Parses wire bytes (without verifying the signature).
    ///
    /// # Errors
    ///
    /// Returns [`EnvelopeError::Malformed`] on bad framing.
    pub fn decode(wire: &[u8]) -> Result<Self, EnvelopeError> {
        let mut d = Dec::new(wire);
        let parse = (|| -> Result<Envelope, DecodeError> {
            let sender = d.u32("sender")? as ClientId;
            let epoch = d.u64("epoch")?;
            let body = Bytes::copy_from_slice(d.bytes("body")?);
            let sig = d.bytes("sig")?.to_vec();
            Ok(Envelope {
                sender,
                epoch,
                body,
                sig,
            })
        })();
        let env = parse.map_err(EnvelopeError::Malformed)?;
        d.finish().map_err(EnvelopeError::Malformed)?;
        Ok(env)
    }

    /// Verifies the signature.
    ///
    /// # Errors
    ///
    /// Returns [`EnvelopeError::BadSignature`] on mismatch.
    pub fn verify(&self, suite: &CryptoSuite) -> Result<(), EnvelopeError> {
        suite
            .verify(
                &signed_region(self.sender, self.epoch, &self.body),
                &self.sig,
            )
            .map_err(|_| EnvelopeError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_encode_decode_verify() {
        let suite = CryptoSuite::sim_512();
        let env = Envelope::seal(&suite, 3, 7, Bytes::from_static(b"body"));
        let wire = env.encode();
        let back = Envelope::decode(&wire).unwrap();
        assert_eq!(back, env);
        back.verify(&suite).unwrap();
    }

    #[test]
    fn tampering_any_field_breaks_signature() {
        let suite = CryptoSuite::sim_512();
        let env = Envelope::seal(&suite, 3, 7, Bytes::from_static(b"body"));
        let mut wrong_sender = env.clone();
        wrong_sender.sender = 4;
        assert_eq!(
            wrong_sender.verify(&suite),
            Err(EnvelopeError::BadSignature)
        );
        let mut wrong_epoch = env.clone();
        wrong_epoch.epoch = 8;
        assert_eq!(wrong_epoch.verify(&suite), Err(EnvelopeError::BadSignature));
        let mut wrong_body = env;
        wrong_body.body = Bytes::from_static(b"evil");
        assert_eq!(wrong_body.verify(&suite), Err(EnvelopeError::BadSignature));
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(matches!(
            Envelope::decode(b"ab"),
            Err(EnvelopeError::Malformed(_))
        ));
        // Valid prefix with trailing garbage.
        let suite = CryptoSuite::sim_512();
        let mut wire = Envelope::seal(&suite, 0, 0, Bytes::new()).encode().to_vec();
        wire.push(0xFF);
        assert!(matches!(
            Envelope::decode(&wire),
            Err(EnvelopeError::Malformed(_))
        ));
    }

    #[test]
    fn real_rsa_envelope_roundtrip() {
        let suite = CryptoSuite::real_512();
        let env = Envelope::seal(&suite, 1, 2, Bytes::from_static(b"x"));
        env.verify(&suite).unwrap();
        let mut bad = env;
        bad.body = Bytes::from_static(b"y");
        assert!(bad.verify(&suite).is_err());
    }
}

//! Experiment drivers: the machinery behind every figure of the paper.
//!
//! Each driver builds a simulated world (LAN or WAN testbed), forms a
//! group of the requested size, injects one membership event, and
//! measures the *total elapsed time* "from the moment the group
//! membership event happens until … the application is notified about
//! the membership change and the new key" (§6) — membership service
//! plus key agreement, in virtual milliseconds.

use std::rc::Rc;

use gkap_gcs::{ClientId, GcsConfig, SimWorld};
use gkap_sim::stats::{Figure, Series, Summary};
use gkap_sim::SimTime;
use gkap_telemetry::{Actor, Event, EventKind, Telemetry};

use crate::cost::OpCounts;
use crate::member::SecureMember;
use crate::protocols::ProtocolKind;
use crate::suite::CryptoSuite;

/// Which cryptographic suite an experiment runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteKind {
    /// Real math on a small group, costs charged at 512-bit rates.
    Sim512,
    /// Costs charged at 1024-bit rates.
    Sim1024,
    /// 512-bit rates with DSA signature costs (signature ablation).
    Sim512Dsa,
    /// Zero-cost (correctness-only tests).
    FastZero,
}

impl SuiteKind {
    fn build(self) -> CryptoSuite {
        match self {
            SuiteKind::Sim512 => CryptoSuite::sim_512(),
            SuiteKind::Sim1024 => CryptoSuite::sim_1024(),
            SuiteKind::Sim512Dsa => CryptoSuite::sim_512_dsa(),
            SuiteKind::FastZero => CryptoSuite::fast_zero(),
        }
    }

    /// Index into the per-thread suite cache.
    fn cache_slot(self) -> usize {
        match self {
            SuiteKind::Sim512 => 0,
            SuiteKind::Sim1024 => 1,
            SuiteKind::Sim512Dsa => 2,
            SuiteKind::FastZero => 3,
        }
    }

    /// A shared, per-thread instance of this suite. Building a suite
    /// precomputes fixed-base exponentiation tables and Montgomery
    /// contexts; a multi-group world would otherwise rebuild them per
    /// group. A [`CryptoSuite`] is immutable and holds no RNG state
    /// (modeled signatures derive nonces from the data), so sharing
    /// one instance across groups — and across runs on the same
    /// worker thread — cannot change any result.
    pub fn shared(self) -> Rc<CryptoSuite> {
        thread_local! {
            static CACHE: std::cell::RefCell<[Option<Rc<CryptoSuite>>; 4]> =
                const { std::cell::RefCell::new([None, None, None, None]) };
        }
        CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let slot = &mut cache[self.cache_slot()];
            match slot {
                Some(suite) => Rc::clone(suite),
                None => {
                    let suite = Rc::new(self.build());
                    *slot = Some(Rc::clone(&suite));
                    suite
                }
            }
        })
    }

    /// Figure label ("DH 512 bits" / "DH 1024 bits").
    pub fn label(self) -> &'static str {
        match self {
            SuiteKind::Sim512 => "DH 512 bits",
            SuiteKind::Sim1024 => "DH 1024 bits",
            SuiteKind::Sim512Dsa => "DH 512 bits, DSA signatures",
            SuiteKind::FastZero => "zero-cost",
        }
    }
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// The group communication configuration (testbed).
    pub gcs: GcsConfig,
    /// The cryptographic suite/cost model.
    pub suite: SuiteKind,
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Whether members broadcast key-confirmation digests after each
    /// event (§5; off in the paper's measured configuration).
    pub confirm_keys: bool,
    /// Whether to capture a cross-layer telemetry trace of the run.
    /// Off by default: recording is keyed by virtual time and never
    /// perturbs results, but the event log costs real memory.
    pub telemetry: bool,
}

impl ExperimentConfig {
    /// Zero-cost LAN configuration (fast correctness tests).
    pub fn lan_fast(protocol: ProtocolKind) -> Self {
        ExperimentConfig {
            protocol,
            gcs: gkap_gcs::testbed::lan(),
            suite: SuiteKind::FastZero,
            seed: 0x5eed,
            confirm_keys: false,
            telemetry: false,
        }
    }

    /// The paper's LAN testbed with the given parameter size.
    pub fn lan(protocol: ProtocolKind, suite: SuiteKind) -> Self {
        ExperimentConfig {
            protocol,
            gcs: gkap_gcs::testbed::lan(),
            suite,
            seed: 0x5eed,
            confirm_keys: false,
            telemetry: false,
        }
    }

    /// The paper's WAN testbed.
    pub fn wan(protocol: ProtocolKind, suite: SuiteKind) -> Self {
        ExperimentConfig {
            protocol,
            gcs: gkap_gcs::testbed::wan(),
            suite,
            seed: 0x5eed,
            confirm_keys: false,
            telemetry: false,
        }
    }
}

/// Outcome of a single membership-event measurement.
#[derive(Clone, Debug)]
pub struct EventOutcome {
    /// Whether every member completed and all keys agree.
    pub ok: bool,
    /// Inject → last member's key completion (virtual ms).
    pub elapsed_ms: f64,
    /// Inject → last member's view delivery (virtual ms) — the
    /// membership-service share of the total.
    pub membership_ms: f64,
    /// Aggregate operation counts for the event across all members.
    pub counts: OpCounts,
    /// Group size after the event.
    pub size_after: usize,
}

/// Outcome of group formation (bootstrap) checks.
#[derive(Clone, Debug)]
pub struct FormationOutcome {
    /// All members computed identical group keys.
    pub all_agreed: bool,
    /// Number of members.
    pub size: usize,
}

/// Which member leaves in a leave experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaveTarget {
    /// The member in the middle of the view (STR's average case; the
    /// default for every protocol).
    Middle,
    /// The oldest member (CKD's expensive controller-leave case).
    Oldest,
    /// The newest member (GDH's controller).
    Newest,
}

fn build_world(
    cfg: &ExperimentConfig,
    initial: usize,
    extra: usize,
) -> (SimWorld, Rc<CryptoSuite>) {
    let suite = cfg.suite.shared();
    let mut world = SimWorld::new(cfg.gcs.clone());
    let telemetry = if cfg.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    world.set_telemetry(telemetry.clone());
    for i in 0..(initial + extra) {
        let mut member = SecureMember::new(
            cfg.protocol,
            Rc::clone(&suite),
            cfg.seed ^ ((i as u64 + 1) * 0x9e37_79b9),
            Some(cfg.seed),
        );
        member.set_key_confirmation(cfg.confirm_keys);
        member.set_telemetry(telemetry.clone());
        world.add_client(Box::new(member));
    }
    world.install_initial_view_of((0..initial).collect());
    world.run_until_quiescent();
    (world, suite)
}

fn snapshot_counts(world: &SimWorld, ids: &[ClientId]) -> Vec<OpCounts> {
    ids.iter()
        .map(|&c| *world.client::<SecureMember>(c).counts())
        .collect()
}

/// Timing skeleton of one measured event, kept alongside the
/// [`EventOutcome`] so traced runs can decompose the latency.
#[derive(Clone, Copy, Debug)]
struct EventTiming {
    /// When the membership change was injected.
    inject: SimTime,
    /// Last member's view delivery.
    last_view: SimTime,
    /// Last member's key completion.
    last_key: SimTime,
    /// The *critical member*: the one whose key completed last (its
    /// activity is the run's critical path).
    critical: ClientId,
}

/// Runs the event measurement: injects a view change and waits for all
/// `wait_for` members to complete epoch 2.
fn measure_event_timed(
    world: &mut SimWorld,
    joined: Vec<ClientId>,
    left: Vec<ClientId>,
    wait_for: Vec<ClientId>,
) -> (EventOutcome, EventTiming) {
    measure_timed(world, |w| w.inject_change(joined, left), wait_for)
}

/// The measurement core, generic over how the membership event is
/// caused: a direct view change, or a fault (daemon crash) whose
/// recovery evicts members. Waits for all `wait_for` members to
/// complete the next epoch.
fn measure_timed(
    world: &mut SimWorld,
    inject_event: impl FnOnce(&mut SimWorld),
    wait_for: Vec<ClientId>,
) -> (EventOutcome, EventTiming) {
    let target_epoch = world.view().expect("initial view installed").id + 1;
    let before = snapshot_counts(world, &wait_for);
    let inject = world.now();
    let group_size = wait_for.len();
    world.telemetry().record(|| Event {
        at: inject,
        dur: gkap_sim::Duration::ZERO,
        actor: Actor::World,
        kind: EventKind::MembershipEvent {
            action: "inject",
            group_size,
        },
    });
    inject_event(world);
    let complete = |w: &SimWorld| {
        wait_for.iter().all(|&c| {
            w.client::<SecureMember>(c)
                .completion(target_epoch)
                .is_some()
        })
    };
    // Run until everyone has the key (or the world goes quiescent —
    // a protocol deadlock).
    world.run_while(|w| !complete(w));
    let done = complete(world);

    let mut counts = OpCounts::default();
    for (i, &c) in wait_for.iter().enumerate() {
        counts.add(&world.client::<SecureMember>(c).counts().since(&before[i]));
    }
    let mut last_key = SimTime::ZERO;
    let mut last_view = SimTime::ZERO;
    let mut critical = wait_for.first().copied().unwrap_or(0);
    let mut agree = done;
    let mut secret: Option<gkap_bignum::Ubig> = None;
    for &c in &wait_for {
        let m = world.client::<SecureMember>(c);
        if m.protocol_error().is_some() {
            agree = false;
        }
        if let Some(t) = m.completion(target_epoch) {
            if t > last_key {
                critical = c;
            }
            last_key = last_key.max(t);
        }
        if let Some(t) = m.view_time(target_epoch) {
            last_view = last_view.max(t);
        }
        match (m.secret(target_epoch), &secret) {
            (Some(s), None) => secret = Some(s.clone()),
            (Some(s), Some(prev)) if s != prev => agree = false,
            (None, _) => agree = false,
            _ => {}
        }
    }
    world.telemetry().record(|| Event {
        at: last_key,
        dur: gkap_sim::Duration::ZERO,
        actor: Actor::World,
        kind: EventKind::MembershipEvent {
            action: "key_established",
            group_size,
        },
    });
    let outcome = EventOutcome {
        ok: agree,
        elapsed_ms: last_key.as_millis_f64() - inject.as_millis_f64(),
        membership_ms: last_view.as_millis_f64() - inject.as_millis_f64(),
        counts,
        size_after: wait_for.len(),
    };
    (
        outcome,
        EventTiming {
            inject,
            last_view,
            last_key,
            critical,
        },
    )
}

/// [`measure_event_timed`] without the timing skeleton.
fn measure_event(
    world: &mut SimWorld,
    joined: Vec<ClientId>,
    left: Vec<ClientId>,
    wait_for: Vec<ClientId>,
) -> EventOutcome {
    measure_event_timed(world, joined, left, wait_for).0
}

/// Forms a group of `n` members and verifies all keys agree.
pub fn run_formation(cfg: &ExperimentConfig, n: usize) -> FormationOutcome {
    let (world, _suite) = build_world(cfg, n, 0);
    let mut all_agreed = true;
    let mut secret: Option<gkap_bignum::Ubig> = None;
    for c in 0..n {
        let m = world.client::<SecureMember>(c);
        match (m.secret(1), &secret) {
            (Some(s), None) => secret = Some(s.clone()),
            (Some(s), Some(prev)) if s != prev => all_agreed = false,
            (None, _) => all_agreed = false,
            _ => {}
        }
    }
    FormationOutcome {
        all_agreed,
        size: n,
    }
}

/// Measures a join: a group of `n - 1` members admits one more.
/// The reported size (figure x-coordinate) is `n`, the size after.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn run_join(cfg: &ExperimentConfig, n: usize) -> EventOutcome {
    assert!(n >= 2, "join needs an existing group");
    let (mut world, _suite) = build_world(cfg, n - 1, 1);
    let joiner = n - 1;
    measure_event(&mut world, vec![joiner], vec![], (0..n).collect())
}

/// Measures a leave from a group of `n` members.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn run_leave(cfg: &ExperimentConfig, n: usize, target: LeaveTarget) -> EventOutcome {
    assert!(n >= 2, "leave needs at least two members");
    let (mut world, _suite) = build_world(cfg, n, 0);
    let view: Vec<ClientId> = world.view().expect("view").members.clone();
    let leaver = match target {
        LeaveTarget::Middle => view[view.len() / 2],
        LeaveTarget::Oldest => view[0],
        LeaveTarget::Newest => *view.last().expect("non-empty"),
    };
    let remaining: Vec<ClientId> = view.into_iter().filter(|&c| c != leaver).collect();
    measure_event(&mut world, vec![], vec![leaver], remaining)
}

/// The paper's leave measurement: the average case (middle member),
/// with CKD weighting in the controller-leave case at probability
/// `1/n` (§6.1.2).
pub fn run_leave_weighted(cfg: &ExperimentConfig, n: usize) -> EventOutcome {
    let mid = run_leave(cfg, n, LeaveTarget::Middle);
    if cfg.protocol != ProtocolKind::Ckd {
        return mid;
    }
    let ctrl = run_leave(cfg, n, LeaveTarget::Oldest);
    let nf = n as f64;
    EventOutcome {
        ok: mid.ok && ctrl.ok,
        elapsed_ms: (mid.elapsed_ms * (nf - 1.0) + ctrl.elapsed_ms) / nf,
        membership_ms: (mid.membership_ms * (nf - 1.0) + ctrl.membership_ms) / nf,
        counts: mid.counts, // dominant case
        size_after: mid.size_after,
    }
}

/// Decomposition of one event's total latency into the paper's §6
/// cost categories, in virtual milliseconds. The four components sum
/// to `elapsed_ms` exactly (the network share is the remainder after
/// accounting for the others on the critical path).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Inject → last key completion (the figure quantity).
    pub elapsed_ms: f64,
    /// Membership-service share: inject → last view delivery.
    pub membership_ms: f64,
    /// Critical member's charged cryptographic compute.
    pub crypto_ms: f64,
    /// Critical member's non-crypto protocol processing: handler CPU
    /// time plus scheduler queueing, net of the crypto share.
    pub rounds_ms: f64,
    /// Time the critical path spent waiting on the network (and on
    /// other members' compute): the remainder.
    pub network_ms: f64,
}

impl Breakdown {
    /// Sum of the four components (equals `elapsed_ms` by
    /// construction, up to floating-point rounding).
    pub fn total_ms(&self) -> f64 {
        self.membership_ms + self.crypto_ms + self.rounds_ms + self.network_ms
    }
}

/// A fully traced event measurement: the standard outcome, the raw
/// event log, and the latency decomposition.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// The standard measurement outcome.
    pub outcome: EventOutcome,
    /// Every telemetry event captured during the run (all layers).
    pub events: Vec<Event>,
    /// The critical-path latency decomposition.
    pub breakdown: Breakdown,
}

/// Computes the latency decomposition from the event log and the
/// measured timing skeleton.
///
/// The critical member (last key completion) defines the critical
/// path. Within the window `[inject, last_key]`:
/// * `crypto` is the sum of its `CryptoOp` durations;
/// * `rounds` is its `HandlerSpan` busy + queue-wait time net of the
///   crypto share (protocol bookkeeping, serialization, GCS handler
///   work);
/// * `membership` is inject → last view delivery;
/// * `network` is the remainder, so the four always sum to `elapsed`.
///
/// Components are clamped to be non-negative; when the remainder
/// would be negative (compute overlapping the membership window) the
/// deficit is taken out of `rounds` so the sum stays exact.
fn compute_breakdown(events: &[Event], t: &EventTiming) -> Breakdown {
    let lo = t.inject.as_nanos() as f64;
    let hi = t.last_key.as_nanos() as f64;
    let overlap = |at: SimTime, dur: gkap_sim::Duration| -> f64 {
        let a = at.as_nanos() as f64;
        let b = a + dur.as_nanos() as f64;
        (b.min(hi) - a.max(lo)).max(0.0)
    };
    let mut crypto_ns = 0.0;
    let mut busy_ns = 0.0;
    let mut wait_ns = 0.0;
    for ev in events {
        if ev.actor != Actor::Client(t.critical) {
            continue;
        }
        match ev.kind {
            EventKind::CryptoOp { .. } => crypto_ns += overlap(ev.at, ev.dur),
            EventKind::HandlerSpan { wait } => {
                busy_ns += overlap(ev.at, ev.dur);
                let at = ev.at.as_nanos() as f64;
                if at >= lo && at <= hi {
                    wait_ns += wait.as_nanos() as f64;
                }
            }
            _ => {}
        }
    }
    let ms = 1.0 / 1_000_000.0;
    let elapsed = (hi - lo) * ms;
    let membership = (t.last_view.as_nanos() as f64 - lo).max(0.0) * ms;
    let mut crypto = crypto_ns * ms;
    let mut rounds = ((busy_ns + wait_ns) * ms - crypto).max(0.0);
    let mut network = elapsed - membership - crypto - rounds;
    if network < 0.0 {
        // Compute overlapped the membership window: absorb the
        // deficit so columns stay non-negative and the sum exact.
        let mut deficit = -network;
        network = 0.0;
        let take = deficit.min(rounds);
        rounds -= take;
        deficit -= take;
        crypto = (crypto - deficit).max(0.0);
    }
    Breakdown {
        elapsed_ms: elapsed,
        membership_ms: membership,
        crypto_ms: crypto,
        rounds_ms: rounds,
        network_ms: network,
    }
}

/// [`run_join`] with telemetry forced on: returns the outcome plus
/// the event log and latency breakdown.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn run_join_traced(cfg: &ExperimentConfig, n: usize) -> TraceRun {
    assert!(n >= 2, "join needs an existing group");
    let mut cfg = cfg.clone();
    cfg.telemetry = true;
    let (mut world, _suite) = build_world(&cfg, n - 1, 1);
    let joiner = n - 1;
    let (outcome, timing) = measure_event_timed(&mut world, vec![joiner], vec![], (0..n).collect());
    let events = world.telemetry().events();
    let breakdown = compute_breakdown(&events, &timing);
    TraceRun {
        outcome,
        events,
        breakdown,
    }
}

/// [`run_leave`] with telemetry forced on.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn run_leave_traced(cfg: &ExperimentConfig, n: usize, target: LeaveTarget) -> TraceRun {
    assert!(n >= 2, "leave needs at least two members");
    let mut cfg = cfg.clone();
    cfg.telemetry = true;
    let (mut world, _suite) = build_world(&cfg, n, 0);
    let view: Vec<ClientId> = world.view().expect("view").members.clone();
    let leaver = match target {
        LeaveTarget::Middle => view[view.len() / 2],
        LeaveTarget::Oldest => view[0],
        LeaveTarget::Newest => *view.last().expect("non-empty"),
    };
    let remaining: Vec<ClientId> = view.into_iter().filter(|&c| c != leaver).collect();
    let (outcome, timing) = measure_event_timed(&mut world, vec![], vec![leaver], remaining);
    let events = world.telemetry().events();
    let breakdown = compute_breakdown(&events, &timing);
    TraceRun {
        outcome,
        events,
        breakdown,
    }
}

/// Traced daemon crash: from a group of `n`, the middle member's
/// machine dies. Elapsed runs from the crash to the last survivor's
/// key for the eviction view — it includes the crash-detection
/// timeout, ring reformation, and the eviction membership change, so
/// traced summaries can attribute recovery time separately from the
/// agreement itself.
///
/// # Panics
///
/// Panics if `n < 3` (the crash must leave a group behind).
pub fn run_crash_traced(cfg: &ExperimentConfig, n: usize) -> TraceRun {
    assert!(n >= 3, "crash needs survivors to re-key");
    let mut cfg = cfg.clone();
    cfg.telemetry = true;
    let (mut world, _suite) = build_world(&cfg, n, 0);
    let view: Vec<ClientId> = world.view().expect("view").members.clone();
    // One daemon per machine: crashing the victim's machine kills
    // every member it hosts.
    let machine = world.client_machine(view[view.len() / 2]);
    let survivors: Vec<ClientId> = view
        .into_iter()
        .filter(|&c| world.client_machine(c) != machine)
        .collect();
    let (outcome, timing) = measure_timed(&mut world, |w| w.inject_crash(machine), survivors);
    let events = world.telemetry().events();
    let breakdown = compute_breakdown(&events, &timing);
    TraceRun {
        outcome,
        events,
        breakdown,
    }
}

/// Measures a partition: `p` members (spread across the view) leave a
/// group of `n` at once.
///
/// # Panics
///
/// Panics if `p >= n` or `p == 0`.
pub fn run_partition(cfg: &ExperimentConfig, n: usize, p: usize) -> EventOutcome {
    assert!(p > 0 && p < n, "partition must leave a non-empty remainder");
    let (mut world, _suite) = build_world(cfg, n, 0);
    let view: Vec<ClientId> = world.view().expect("view").members.clone();
    // Evict members at evenly spread positions (not a contiguous
    // block — network partitions cut across the logical view).
    let stride = n as f64 / p as f64;
    let mut leaving: Vec<ClientId> = (0..p)
        .map(|i| view[((i as f64 + 0.5) * stride) as usize % n])
        .collect();
    leaving.dedup();
    let remaining: Vec<ClientId> = view.into_iter().filter(|c| !leaving.contains(c)).collect();
    measure_event(&mut world, vec![], leaving, remaining)
}

/// Measures a merge: a previously separate component of `m` members
/// (with its own established key) merges into a group of `n`.
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn run_merge(cfg: &ExperimentConfig, n: usize, m: usize) -> EventOutcome {
    assert!(n > 0 && m > 0, "merge needs two non-empty groups");
    let (mut world, _suite) = build_world(cfg, n, m);
    let component: Vec<ClientId> = (n..n + m).collect();
    // Pre-seed the merging component's protocol state (they formed a
    // group elsewhere before the network healed).
    let comp_seed = cfg.seed ^ 0xc0ffee;
    for &c in &component {
        world
            .client_mut::<SecureMember>(c)
            .preseed_component(&component, c, comp_seed);
    }
    measure_event(&mut world, component, vec![], (0..n + m).collect())
}

/// Scrambles the group with `churn` random join+leave pairs before an
/// experiment ("Secure Spread must first be run … with a random
/// sequence of joins and leaves in order to generate a random-looking
/// tree", §6.1.2). Keeps the member count constant; returns the ids of
/// the current members afterwards.
fn apply_churn(world: &mut SimWorld, churn: usize, seed: u64) -> Vec<ClientId> {
    use gkap_bignum::{RandomSource, SplitMix64};
    let mut rng = SplitMix64::new(seed ^ 0xc4u64);
    for step in 0..churn {
        let members = world.view().expect("view").members.clone();
        // One member (never the whole group) leaves…
        let leaver = members[(rng.next_u64() as usize + step) % members.len()];
        world.inject_leave(leaver);
        world.run_until_quiescent();
        // …and a fresh client joins (departed members never rejoin:
        // their protocol state is stale by design).
        let fresh = next_unused_client(world);
        world.inject_join(fresh);
        world.run_until_quiescent();
    }
    world.view().expect("view").members.clone()
}

/// The lowest client id that has never been in a view (provisioned by
/// the caller as churn spares).
fn next_unused_client(world: &SimWorld) -> ClientId {
    let members = &world.view().expect("view").members;
    let mut c = 0;
    loop {
        if !members.contains(&c) && world.client::<SecureMember>(c).epoch() == 0 {
            return c;
        }
        c += 1;
    }
}

/// `run_join` after `churn` random join/leave pairs have scrambled the
/// group state (tree-shape ablation; §6.1.2's "truly fair comparison").
pub fn run_join_churned(cfg: &ExperimentConfig, n: usize, churn: usize) -> EventOutcome {
    assert!(n >= 2, "join needs an existing group");
    let (mut world, _suite) = build_world(cfg, n - 1, churn + 1);
    apply_churn(&mut world, churn, cfg.seed);
    let joiner = next_unused_client(&world);
    let members = world.view().expect("view").members.clone();
    let mut wait_for = members;
    wait_for.push(joiner);
    measure_event(&mut world, vec![joiner], vec![], wait_for)
}

/// `run_leave` (middle member) after churn scrambling.
pub fn run_leave_churned(cfg: &ExperimentConfig, n: usize, churn: usize) -> EventOutcome {
    assert!(n >= 2, "leave needs at least two members");
    let (mut world, _suite) = build_world(cfg, n, churn);
    apply_churn(&mut world, churn, cfg.seed);
    let members = world.view().expect("view").members.clone();
    let leaver = members[members.len() / 2];
    let wait_for: Vec<ClientId> = members.into_iter().filter(|&c| c != leaver).collect();
    measure_event(&mut world, vec![], vec![leaver], wait_for)
}

/// Measures *real* initial key agreement (IKA): `n` members form a
/// group from scratch, running the actual protocol (no transparent
/// bootstrap). Reported time runs from the initial view installation
/// to the last member's key completion.
pub fn run_real_formation(cfg: &ExperimentConfig, n: usize) -> EventOutcome {
    let suite = cfg.suite.shared();
    let mut world = SimWorld::new(cfg.gcs.clone());
    let telemetry = if cfg.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    world.set_telemetry(telemetry.clone());
    for i in 0..n {
        let mut member = SecureMember::new(
            cfg.protocol,
            Rc::clone(&suite),
            cfg.seed ^ ((i as u64 + 1) * 0x9e37_79b9),
            None, // no bootstrap: run the protocol for real
        );
        member.set_telemetry(telemetry.clone());
        world.add_client(Box::new(member));
    }
    let members: Vec<ClientId> = (0..n).collect();
    let before = snapshot_counts(&world, &members);
    world.install_initial_view_of(members.clone());
    world.run_until_quiescent();

    let mut counts = OpCounts::default();
    for (i, &c) in members.iter().enumerate() {
        counts.add(&world.client::<SecureMember>(c).counts().since(&before[i]));
    }
    let mut last_key = SimTime::ZERO;
    let mut last_view = SimTime::ZERO;
    let mut agree = true;
    let mut secret: Option<gkap_bignum::Ubig> = None;
    for &c in &members {
        let m = world.client::<SecureMember>(c);
        if m.protocol_error().is_some() {
            agree = false;
        }
        match m.completion(1) {
            Some(t) => last_key = last_key.max(t),
            None => agree = false,
        }
        if let Some(t) = m.view_time(1) {
            last_view = last_view.max(t);
        }
        match (m.secret(1), &secret) {
            (Some(s), None) => secret = Some(s.clone()),
            (Some(s), Some(prev)) if s != prev => agree = false,
            (None, _) => agree = false,
            _ => {}
        }
    }
    EventOutcome {
        ok: agree,
        elapsed_ms: last_key.as_millis_f64(),
        membership_ms: last_view.as_millis_f64(),
        counts,
        size_after: n,
    }
}

/// Like [`run_join_churned`]/[`run_leave_churned`] but with a custom
/// protocol factory (the TGDH AVL-policy ablation). Returns
/// `(join_outcome, leave_outcome, tree_height_after_churn)` — height
/// is only populated when the engine is a [`crate::protocols::tgdh::Tgdh`].
pub fn run_churned_with_factory(
    cfg: &ExperimentConfig,
    factory: &dyn Fn() -> Box<dyn crate::protocols::GkaProtocol>,
    n: usize,
    churn: usize,
) -> (EventOutcome, Option<usize>) {
    let suite = cfg.suite.shared();
    let mut world = SimWorld::new(cfg.gcs.clone());
    let extra = churn + 1;
    for i in 0..(n - 1 + extra) {
        let member = SecureMember::with_protocol(
            factory(),
            Rc::clone(&suite),
            cfg.seed ^ ((i as u64 + 1) * 0x9e37_79b9),
            Some(cfg.seed),
        );
        world.add_client(Box::new(member));
    }
    world.install_initial_view_of((0..n - 1).collect());
    world.run_until_quiescent();
    apply_churn(&mut world, churn, cfg.seed);
    let members = world.view().expect("view").members.clone();
    let height = world
        .client::<SecureMember>(members[0])
        .protocol_as::<crate::protocols::tgdh::Tgdh>()
        .map(|t| t.tree_height());
    let joiner = next_unused_client(&world);
    let mut wait_for = members;
    wait_for.push(joiner);
    let outcome = measure_event(&mut world, vec![joiner], vec![], wait_for);
    (outcome, height)
}

/// Builds one figure: elapsed time vs group size for all five
/// protocols plus the membership-service baseline.
///
/// `measure` maps `(config, size)` to an outcome; `sizes` is the
/// x-axis; `reps` runs per point with varied seeds. Serial —
/// equivalent to [`build_figure_jobs`] with one worker.
pub fn build_figure(
    title: &str,
    gcs: &GcsConfig,
    suite: SuiteKind,
    sizes: &[usize],
    reps: u32,
    measure: impl Fn(&ExperimentConfig, usize) -> EventOutcome + Sync,
) -> Figure {
    build_figure_jobs(title, gcs, suite, sizes, reps, 1, measure)
}

/// [`build_figure`] with the (protocol, size, rep) cells fanned across
/// `jobs` workers.
///
/// Each cell's seed depends only on its coordinates, and results are
/// folded in the serial loop's iteration order, so the produced figure
/// is **bit-identical** for every `jobs` value (asserted by the
/// harness's determinism test).
pub fn build_figure_jobs(
    title: &str,
    gcs: &GcsConfig,
    suite: SuiteKind,
    sizes: &[usize],
    reps: u32,
    jobs: usize,
    measure: impl Fn(&ExperimentConfig, usize) -> EventOutcome + Sync,
) -> Figure {
    // Flatten the grid in serial iteration order…
    let mut cells: Vec<(ProtocolKind, usize)> = Vec::new();
    for kind in ProtocolKind::all() {
        for &size in sizes {
            for _rep in 0..reps {
                cells.push((kind, size));
            }
        }
    }
    let outcomes = crate::par::run_indexed(jobs, cells.len(), |i| {
        let (kind, size) = cells[i];
        let rep = (i % reps as usize) as u64;
        let cfg = ExperimentConfig {
            protocol: kind,
            gcs: gcs.clone(),
            suite,
            seed: 0x5eed ^ ((rep + 1) << 32) ^ size as u64,
            confirm_keys: false,
            telemetry: false,
        };
        measure(&cfg, size)
    });
    // …and fold the index-ordered results exactly as the serial loop
    // accumulated them (Welford summaries are order-sensitive).
    let mut fig = Figure::new(title);
    let mut membership = Series::new("Membership");
    let mut membership_points: Vec<(f64, Summary)> =
        sizes.iter().map(|&s| (s as f64, Summary::new())).collect();
    let mut idx = 0;
    for kind in ProtocolKind::all() {
        let mut series = Series::new(kind.name());
        for (si, &size) in sizes.iter().enumerate() {
            let mut summary = Summary::new();
            for rep in 0..reps {
                let outcome = &outcomes[idx];
                idx += 1;
                assert!(
                    outcome.ok,
                    "{kind} failed at size {size} (rep {rep}) in {title}"
                );
                summary.add(outcome.elapsed_ms);
                membership_points[si].1.add(outcome.membership_ms);
            }
            series.push(size as f64, summary);
        }
        fig.push(series);
    }
    for (x, s) in membership_points {
        membership.push(x, s);
    }
    fig.push(membership);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_kinds_build() {
        assert_eq!(SuiteKind::Sim512.build().nominal_bits(), 512);
        assert_eq!(SuiteKind::Sim1024.label(), "DH 1024 bits");
    }

    #[test]
    fn config_presets() {
        let lan = ExperimentConfig::lan_fast(ProtocolKind::Bd);
        assert_eq!(lan.gcs.topology.site_count(), 1);
        let wan = ExperimentConfig::wan(ProtocolKind::Gdh, SuiteKind::Sim512);
        assert_eq!(wan.gcs.topology.site_count(), 3);
    }
}

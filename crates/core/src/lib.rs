//! The paper's contribution: five group key agreement protocols for
//! dynamic peer groups, integrated with a (simulated) group
//! communication system — a reproduction of *"On the Performance of
//! Group Key Agreement Protocols"* (Amir, Kim, Nita-Rotaru, Tsudik;
//! ICDCS 2002).
//!
//! # Architecture
//!
//! ```text
//!  experiment::*  — drivers that reproduce the paper's figures
//!        │
//!  SecureMember   — a gkap-gcs Client: signs/verifies every protocol
//!        │          message, tracks epochs and key-completion times,
//!        │          charges virtual CPU per cryptographic operation
//!        │
//!  protocols::*   — GDH, CKD, TGDH, STR, BD state machines
//!        │
//!  CryptoSuite    — DH group + signature scheme + cost model
//! ```
//!
//! Each protocol implements [`protocols::GkaProtocol`]: a message-driven
//! state machine reacting to membership views (join / leave / merge /
//! partition) and signed protocol messages, eventually producing a
//! shared group secret. All five provide the same interface, so a
//! group can be configured with any of them — the "multiple protocol
//! framework" contribution of the paper.
//!
//! The [`session`] module turns an established group secret into
//! data-confidentiality services (AES-128-CTR + HMAC-SHA-256), playing
//! the role of the Secure Spread library's encrypted messaging.
//!
//! # Example: five members agree on a key with TGDH
//!
//! ```
//! use gkap_core::experiment::{run_formation, ExperimentConfig};
//! use gkap_core::protocols::ProtocolKind;
//!
//! let cfg = ExperimentConfig::lan_fast(ProtocolKind::Tgdh);
//! let outcome = run_formation(&cfg, 5);
//! assert!(outcome.all_agreed, "all members computed the same key");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod batch;
pub mod codec;
pub mod cost;
pub mod costs_table;
pub mod envelope;
pub mod experiment;
pub mod member;
pub mod par;
pub mod protocols;
pub mod scale;
pub mod scenario;
pub mod session;
pub mod suite;
pub mod testkit;
pub mod tree;

pub use cost::{CostModel, OpCounts};
pub use member::{AgreementPhase, SecureMember, DEFAULT_MAX_RESTARTS};
pub use protocols::{GkaError, GkaProtocol, ProtocolError, ProtocolKind};
pub use suite::{CryptoSuite, SigMode};

//! [`SecureMember`] — the Secure Spread member process.
//!
//! Wires a [`GkaProtocol`] state machine into the group communication
//! system: verifies every received protocol message's signature,
//! filters stale epochs and buffers early ones, charges virtual CPU,
//! and records the instants at which views arrive and keys complete —
//! the raw measurements behind every figure in the paper.

use std::rc::Rc;

use gkap_bignum::{SplitMix64, Ubig};
use gkap_crypto::kdf::SessionKeys;
use gkap_gcs::{Client, ClientCtx, ClientId, Delivery, View};
use gkap_sim::{Duration, SimTime};
use gkap_telemetry::{Actor, CryptoOpKind, Event, EventKind, SendClass, Telemetry};

use crate::cost::OpCounts;
use crate::envelope::Envelope;
use crate::protocols::{GkaCtx, GkaError, GkaProtocol, ProtocolKind, SendKind, Transport};
use crate::suite::CryptoSuite;

/// Adapter: protocol sends go out through the GCS client context.
struct GcsTransport<'a, 'b> {
    ctx: &'a mut ClientCtx<'b>,
}

impl Transport for GcsTransport<'_, '_> {
    fn my_id(&self) -> ClientId {
        self.ctx.id()
    }

    fn send_wire(&mut self, kind: SendKind, wire: bytes::Bytes) {
        match kind {
            SendKind::Multicast => self.ctx.multicast_agreed(wire),
            SendKind::UnicastAgreed(to) => self.ctx.unicast_agreed(to, wire),
            SendKind::UnicastFifo(to) => self.ctx.unicast_fifo(to, wire),
        }
    }

    fn charge(&mut self, cost: Duration) {
        self.ctx.charge_cpu(cost);
    }
}

/// Where a member's current key agreement stands.
///
/// Views drive the transitions: entering a view starts an agreement
/// (`Running`); establishing its key converges it; a newer view
/// arriving first aborts it and — within the restart budget — restarts
/// it in the new epoch. Exhausting the budget is *reported* (a
/// [`GkaError`] plus a `give_up` fault event), never hidden.
///
/// ```text
/// Idle → Running → Converged
///          ↓  ↑ (next view)
///       Aborted → Restarting → Running → …
///          ↓ (budget exhausted)
///       GivenUp (terminal)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgreementPhase {
    /// No view has been delivered yet.
    Idle,
    /// A re-keying for the current epoch is in flight.
    Running,
    /// The in-flight agreement was superseded by a newer view.
    Aborted,
    /// A superseded agreement is being re-run in the newer epoch.
    Restarting,
    /// The current epoch's group key is established.
    Converged,
    /// The restart budget is exhausted; this member stopped trying.
    GivenUp,
}

/// Default number of consecutive aborted agreements a member tolerates
/// before giving up (see [`SecureMember::set_max_restarts`]).
pub const DEFAULT_MAX_RESTARTS: u64 = 16;

/// A member of a secure group: protocol engine + measurement hooks.
pub struct SecureMember {
    id: Option<ClientId>,
    suite: Rc<CryptoSuite>,
    protocol: Box<dyn GkaProtocol>,
    counts: OpCounts,
    rng: SplitMix64,
    epoch: u64,
    /// Seed for transparent bootstrap of the *initial* view (None =>
    /// run the real formation protocol, which only GDH/CKD/BD support
    /// for an n-way initial view).
    initial_seed: Option<u64>,
    /// Buffered messages from epochs we have not entered yet.
    pending: Vec<Envelope>,
    /// `(epoch, instant)` when each view was delivered to us.
    view_times: Vec<(u64, SimTime)>,
    /// `(epoch, instant)` when the group key for that epoch was ready
    /// (CPU completion, including core contention).
    completions: Vec<(u64, SimTime)>,
    /// Epoch whose completion awaits the CPU-completion stamp.
    awaiting_stamp: Option<u64>,
    /// The established secrets per epoch (tests compare across members).
    secrets: Vec<(u64, Ubig)>,
    /// Whether to broadcast a key-confirmation digest after completing
    /// each epoch (§5's "form of key confirmation").
    confirm_keys: bool,
    /// Confirmations received per epoch.
    confirmations: Vec<(u64, usize)>,
    /// Confirmations that arrived before our own key did.
    pending_confirms: Vec<(u64, Vec<u8>)>,
    /// First protocol error, if any (experiments assert none).
    error: Option<GkaError>,
    /// Where the current agreement stands.
    phase: AgreementPhase,
    /// Consecutive agreements aborted by a superseding view (reset to
    /// zero on convergence).
    restarts: u64,
    /// Restart budget: one more abort than this gives up.
    max_restarts: u64,
    /// Telemetry sink (disabled by default; the experiment harness
    /// shares the world's handle here when tracing is requested).
    telemetry: Telemetry,
}

impl std::fmt::Debug for SecureMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureMember")
            .field("id", &self.id)
            .field("protocol", &self.protocol.kind().name())
            .field("epoch", &self.epoch)
            .field("completions", &self.completions.len())
            .finish()
    }
}

impl SecureMember {
    /// Creates a member running `kind` with the given suite. `seed`
    /// derives the member's private randomness; `initial_seed` (if
    /// set) transparently bootstraps the first view's key.
    pub fn new(
        kind: ProtocolKind,
        suite: Rc<CryptoSuite>,
        seed: u64,
        initial_seed: Option<u64>,
    ) -> Self {
        SecureMember::with_protocol(kind.create(), suite, seed, initial_seed)
    }

    /// Creates a member around a custom protocol engine (e.g. the
    /// AVL-policy TGDH variant).
    pub fn with_protocol(
        protocol: Box<dyn GkaProtocol>,
        suite: Rc<CryptoSuite>,
        seed: u64,
        initial_seed: Option<u64>,
    ) -> Self {
        SecureMember {
            id: None,
            protocol,
            suite,
            counts: OpCounts::default(),
            rng: SplitMix64::new(seed),
            epoch: 0,
            initial_seed,
            pending: Vec::new(),
            view_times: Vec::new(),
            completions: Vec::new(),
            awaiting_stamp: None,
            secrets: Vec::new(),
            confirm_keys: false,
            confirmations: Vec::new(),
            pending_confirms: Vec::new(),
            error: None,
            phase: AgreementPhase::Idle,
            restarts: 0,
            max_restarts: DEFAULT_MAX_RESTARTS,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Shares a telemetry sink with this member (pass the `SimWorld`'s
    /// handle so all layers record into one stream).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Enables key confirmation: after establishing each epoch's key,
    /// the member broadcasts a digest of it and checks every other
    /// member's digest (detecting divergence at the cost of one extra
    /// all-to-all broadcast round).
    pub fn set_key_confirmation(&mut self, on: bool) {
        self.confirm_keys = on;
    }

    /// Confirmations received for `epoch`.
    pub fn confirmations(&self, epoch: u64) -> usize {
        self.confirmations
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    fn confirm_digest(epoch: u64, secret: &Ubig) -> Vec<u8> {
        use gkap_crypto::sha::{Digest, Sha256};
        let mut h = Sha256::new();
        h.update(b"confirm");
        h.update(&epoch.to_be_bytes());
        h.update(&secret.to_be_bytes());
        h.finalize()
    }

    fn record_confirmation(&mut self, epoch: u64, digest: &[u8]) {
        match self.secret(epoch) {
            Some(secret) => {
                // Constant-time: a digest mismatch must not leak how
                // much of the expected digest a forgery matched.
                if !gkap_crypto::hmac::ct_eq(&Self::confirm_digest(epoch, secret), digest) {
                    self.record_error(GkaError::Protocol("key confirmation mismatch"));
                    return;
                }
                match self.confirmations.iter_mut().find(|(e, _)| *e == epoch) {
                    Some((_, n)) => *n += 1,
                    None => self.confirmations.push((epoch, 1)),
                }
            }
            None => self.pending_confirms.push((epoch, digest.to_vec())),
        }
    }

    /// Pre-seeds this member's protocol state as part of a component
    /// (a previously separate group about to merge). Must be called
    /// before the member sees any view.
    pub fn preseed_component(&mut self, members: &[ClientId], me: ClientId, seed: u64) {
        self.protocol.bootstrap(&self.suite, members, me, seed);
    }

    /// The operation counters accumulated so far.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Instant the key for `epoch` completed, if it has.
    pub fn completion(&self, epoch: u64) -> Option<SimTime> {
        self.completions
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|&(_, t)| t)
    }

    /// Instant the view for `epoch` was delivered, if it was.
    pub fn view_time(&self, epoch: u64) -> Option<SimTime> {
        self.view_times
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|&(_, t)| t)
    }

    /// The group secret for `epoch`, if established.
    pub fn secret(&self, epoch: u64) -> Option<&Ubig> {
        self.secrets
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, s)| s)
    }

    /// Derived symmetric session keys for the latest completed epoch.
    pub fn session_keys(&self) -> Option<SessionKeys> {
        self.secrets
            .last()
            .map(|(_, s)| SessionKeys::from_group_secret(s))
    }

    /// The latest epoch this member has entered.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// First protocol error encountered, if any.
    pub fn protocol_error(&self) -> Option<&GkaError> {
        self.error.as_ref()
    }

    /// Where the current agreement stands.
    pub fn phase(&self) -> AgreementPhase {
        self.phase
    }

    /// Consecutive agreements aborted by superseding views (zeroed on
    /// every convergence).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Caps how many consecutive aborted agreements this member rides
    /// out before entering [`AgreementPhase::GivenUp`].
    pub fn set_max_restarts(&mut self, n: u64) {
        self.max_restarts = n;
    }

    /// The epoch of the last view installed at this member (the
    /// view-synchrony invariant compares this across survivors).
    pub fn last_view_epoch(&self) -> Option<u64> {
        self.view_times.last().map(|&(e, _)| e)
    }

    /// Which protocol this member runs.
    pub fn protocol_kind(&self) -> ProtocolKind {
        self.protocol.kind()
    }

    /// Borrows the protocol engine downcast to its concrete type
    /// (diagnostics; e.g. reading the TGDH tree height).
    pub fn protocol_as<T: GkaProtocol>(&self) -> Option<&T> {
        (self.protocol.as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    fn record_error(&mut self, e: GkaError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn after_handler(&mut self, ctx: &mut ClientCtx<'_>) {
        let Some(secret) = self.protocol.group_secret() else {
            return;
        };
        let already = self.secrets.iter().any(|(e, _)| *e == self.epoch);
        if already {
            return;
        }
        let secret = secret.clone();
        let epoch = self.epoch;
        self.secrets.push((epoch, secret.clone()));
        self.awaiting_stamp = Some(epoch);
        self.phase = AgreementPhase::Converged;
        self.restarts = 0;
        // Settle confirmations that raced ahead of our own key.
        let pending: Vec<Vec<u8>> = {
            let (now, later): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending_confirms)
                .into_iter()
                .partition(|(e, _)| *e == epoch);
            self.pending_confirms = later;
            now.into_iter().map(|(_, d)| d).collect()
        };
        for d in pending {
            self.record_confirmation(epoch, &d);
        }
        if self.confirm_keys {
            let body = crate::protocols::ProtocolMsg::KeyConfirm {
                digest: Self::confirm_digest(epoch, &secret),
            }
            .encode();
            self.counts.sign += 1;
            ctx.charge_cpu(self.suite.cost().sign);
            self.note_crypto(ctx, CryptoOpKind::Sign, self.suite.cost().sign);
            let env = Envelope::seal(&self.suite, ctx.id(), epoch, body);
            self.counts.multicast += 1;
            self.note_event(
                ctx,
                EventKind::MessageSend {
                    class: SendClass::Multicast,
                },
            );
            ctx.multicast_agreed(env.encode());
        }
    }

    /// Records one telemetry event at the handler's virtual time with
    /// this member as the actor (free when telemetry is disabled).
    fn note_event(&self, ctx: &ClientCtx<'_>, kind: EventKind) {
        self.note_span(ctx, Duration::ZERO, kind);
    }

    fn note_span(&self, ctx: &ClientCtx<'_>, dur: Duration, kind: EventKind) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let at = ctx.now();
        let actor = Actor::Client(ctx.id());
        self.telemetry.record(|| Event {
            at,
            dur,
            actor,
            kind,
        });
    }

    fn note_crypto(&self, ctx: &ClientCtx<'_>, op: CryptoOpKind, cost: Duration) {
        self.note_span(
            ctx,
            cost,
            EventKind::CryptoOp {
                op,
                bits: self.suite.nominal_bits() as u32,
            },
        );
    }

    fn dispatch_wire(&mut self, ctx: &mut ClientCtx<'_>, env: Envelope) {
        if env.sender == ctx.id() {
            return; // own multicast echoed back
        }
        // Verification cost is paid by every receiver (§3.2), plus
        // fixed per-message processing overhead.
        self.counts.verify += 1;
        ctx.charge_cpu(self.suite.cost().verify);
        ctx.charge_cpu(self.suite.cost().recv_overhead);
        self.note_crypto(ctx, CryptoOpKind::Verify, self.suite.cost().verify);
        self.note_crypto(
            ctx,
            CryptoOpKind::RecvOverhead,
            self.suite.cost().recv_overhead,
        );
        if env.verify(&self.suite).is_err() {
            self.record_error(GkaError::Protocol("bad signature"));
            return;
        }
        let msg = match crate::protocols::ProtocolMsg::decode(&env.body) {
            Ok(m) => m,
            Err(_) => {
                self.record_error(GkaError::Protocol("malformed body"));
                return;
            }
        };
        if let crate::protocols::ProtocolMsg::KeyConfirm { digest } = &msg {
            self.record_confirmation(env.epoch, digest);
            return;
        }
        let now = ctx.now();
        let mut transport = GcsTransport { ctx };
        let mut gka = GkaCtx {
            transport: &mut transport,
            suite: &self.suite,
            counts: &mut self.counts,
            rng: &mut self.rng,
            epoch: self.epoch,
            telemetry: self.telemetry.clone(),
            now,
        };
        if let Err(e) = self.protocol.on_msg(&mut gka, env.sender, msg) {
            self.record_error(e);
        }
        self.after_handler(ctx);
    }
}

impl Client for SecureMember {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View) {
        self.id = Some(ctx.id());

        // A view arriving while the previous epoch's agreement is
        // still in flight supersedes it: abort, then (budget
        // permitting) restart in the new epoch.
        if self.phase == AgreementPhase::Running {
            self.phase = AgreementPhase::Aborted;
            self.note_event(
                ctx,
                EventKind::Fault {
                    action: "abort",
                    target: ctx.id(),
                },
            );
            self.restarts += 1;
            if self.restarts > self.max_restarts {
                self.phase = AgreementPhase::GivenUp;
                self.record_error(GkaError::Protocol("restart budget exhausted"));
                self.note_event(
                    ctx,
                    EventKind::Fault {
                        action: "give_up",
                        target: ctx.id(),
                    },
                );
            } else {
                self.phase = AgreementPhase::Restarting;
                self.note_event(
                    ctx,
                    EventKind::Fault {
                        action: "restart",
                        target: ctx.id(),
                    },
                );
            }
        }

        // Rejoin after a partition healed: this member merges back as
        // a fresh singleton — stale keys from before the partition
        // must not leak into the new agreement.
        if view.joined.contains(&ctx.id()) && !self.view_times.is_empty() {
            self.protocol.reset();
            self.pending.clear();
        }

        self.epoch = view.id;
        self.view_times.push((view.id, ctx.now()));
        self.note_event(
            ctx,
            EventKind::MembershipEvent {
                action: "view_delivered",
                group_size: view.members.len(),
            },
        );
        if self.phase == AgreementPhase::GivenUp {
            return; // reported above; stop participating
        }
        self.phase = AgreementPhase::Running;

        let is_initial = view.joined.len() == view.members.len();
        if is_initial {
            if let Some(seed) = self.initial_seed {
                // Transparent bootstrap: the group starts keyed, free
                // of charge (no experiment measures initial formation
                // through this path; see DESIGN.md).
                self.protocol
                    .bootstrap(&self.suite, &view.members, ctx.id(), seed);
                self.after_handler(ctx);
                return;
            }
        }

        let now = ctx.now();
        let mut transport = GcsTransport { ctx };
        let mut gka = GkaCtx {
            transport: &mut transport,
            suite: &self.suite,
            counts: &mut self.counts,
            rng: &mut self.rng,
            epoch: self.epoch,
            telemetry: self.telemetry.clone(),
            now,
        };
        if let Err(e) = self.protocol.on_view(&mut gka, view) {
            self.record_error(e);
        }
        self.after_handler(ctx);

        // Drain any messages that raced ahead of this view.
        let ready: Vec<Envelope> = {
            let epoch = self.epoch;
            let (now, later): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|e| e.epoch == epoch);
            self.pending = later;
            now
        };
        for env in ready {
            self.dispatch_wire(ctx, env);
        }
    }

    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, msg: &Delivery) {
        if self.phase == AgreementPhase::GivenUp {
            return; // no longer participating
        }
        let env = match Envelope::decode(&msg.payload) {
            Ok(e) => e,
            Err(_) => {
                self.record_error(GkaError::Protocol("malformed envelope"));
                return;
            }
        };
        if env.epoch < self.epoch {
            return; // stale epoch: superseded by a newer view
        }
        if env.epoch > self.epoch {
            self.pending.push(env); // we have not seen that view yet
            return;
        }
        self.dispatch_wire(ctx, env);
    }

    fn on_cpu_complete(&mut self, end: SimTime) {
        if let Some(epoch) = self.awaiting_stamp.take() {
            self.completions.push((epoch, end));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_accessors() {
        let suite = Rc::new(CryptoSuite::fast_zero());
        let m = SecureMember::new(ProtocolKind::Bd, suite, 1, Some(7));
        assert_eq!(m.protocol_kind(), ProtocolKind::Bd);
        assert_eq!(m.epoch(), 0);
        assert!(m.completion(1).is_none());
        assert!(m.secret(1).is_none());
        assert!(m.protocol_error().is_none());
        assert!(m.session_keys().is_none());
        assert!(format!("{m:?}").contains("BD"));
    }
}

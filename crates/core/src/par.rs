//! Deterministic fan-out for embarrassingly parallel experiment grids.
//!
//! Every figure in the paper is a grid of independent cells — one
//! simulated world per (protocol, group size, repetition) — whose
//! seeds depend only on the cell coordinates, never on execution
//! order. [`run_indexed`] exploits that: it fans the cells across a
//! worker pool (`std::thread::scope`, no external dependencies) and
//! hands the results back **in index order**, so callers can fold
//! them exactly as the serial loop would have and produce bit-identical
//! output.
//!
//! Workers also account their busy time into a process-wide counter so
//! the harness can report the *serial-equivalent* time (what the run
//! would have cost on one core) next to the wall time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Nanoseconds of worker compute accumulated since the last
/// [`take_busy_nanos`] call.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Drains the busy-time counter: returns the nanoseconds of worker
/// compute accumulated since the previous call and resets it to zero.
///
/// The harness brackets each figure with this to report the
/// serial-equivalent cost of a parallel run. Cells are timed by wall
/// clock (std exposes no portable per-thread CPU clock), so the figure
/// is accurate while `jobs` ≤ cores and overstates compute when the
/// host is oversubscribed.
pub fn take_busy_nanos() -> u64 {
    BUSY_NANOS.swap(0, Ordering::Relaxed)
}

/// The host's available parallelism (falling back to 1 when it
/// cannot be determined).
fn hardware_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The default worker count: the `GKAP_JOBS` environment variable if
/// set to a positive integer, otherwise the host's available
/// parallelism. An explicit `--jobs` flag always wins over both —
/// this is only the *default* the CLI falls back to.
pub fn default_jobs() -> usize {
    jobs_from_env(std::env::var("GKAP_JOBS").ok().as_deref())
}

/// Pure core of [`default_jobs`], split out so tests can exercise the
/// parsing without mutating process environment.
pub(crate) fn jobs_from_env(var: Option<&str>) -> usize {
    match var.map(str::trim).filter(|s| !s.is_empty()) {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("warning: ignoring GKAP_JOBS={s:?} (want a positive integer)");
                hardware_jobs()
            }),
        None => hardware_jobs(),
    }
}

/// Runs `work(0..count)` across `jobs` workers and returns the results
/// in index order.
///
/// Work is distributed dynamically (an atomic next-index counter), so
/// slow cells — large groups, lossy retransmission storms — do not
/// stall a statically partitioned stripe. Because results come back
/// ordered by index, any fold over them reproduces the serial loop's
/// accumulation order exactly; with order-independent seeds this makes
/// parallel figure output bit-identical to `jobs = 1`.
///
/// `jobs <= 1` (or a single cell) runs inline on the caller's thread —
/// no spawn, same busy-time accounting.
///
/// # Panics
///
/// Propagates panics from `work` (a failed in-cell assertion aborts
/// the whole grid, as the serial loop would).
pub fn run_indexed<T, F>(jobs: usize, count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Clamp to the hardware: asking for more workers than cores only
    // oversubscribes the host, and because cells are timed by wall
    // clock it would also overstate the busy-time counter (preempted
    // wall time is not compute). The *requested* value still reaches
    // the manifest environment block, so a run records what was asked.
    let jobs = jobs.max(1).min(count.max(1)).min(hardware_jobs());
    if jobs == 1 {
        let t0 = Instant::now();
        let out: Vec<T> = (0..count).map(&work).collect();
        BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let t0 = Instant::now();
                let v = work(i);
                BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *slots[i].lock().expect("result slot") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker did not poison the slot")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(jobs, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{jobs}");
        }
    }

    #[test]
    fn more_jobs_than_cells_is_fine() {
        assert_eq!(run_indexed(16, 2, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn busy_time_accumulates() {
        take_busy_nanos();
        let _ = run_indexed(2, 8, |i| {
            // Do a little real work so the counter moves.
            (0..1000u64).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        assert!(take_busy_nanos() > 0);
        // Drained: second take sees (almost) nothing new.
        assert_eq!(take_busy_nanos(), 0);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn env_override_parses_positive_integers_only() {
        assert_eq!(jobs_from_env(Some("3")), 3);
        assert_eq!(jobs_from_env(Some(" 12 ")), 12);
        let hw = hardware_jobs();
        assert_eq!(jobs_from_env(None), hw, "unset falls back to hardware");
        assert_eq!(jobs_from_env(Some("")), hw, "empty is as good as unset");
        assert_eq!(jobs_from_env(Some("0")), hw, "zero workers is nonsense");
        assert_eq!(jobs_from_env(Some("many")), hw, "garbage is ignored");
    }
}

//! Burmester–Desmedt (BD), §4.5 of the paper.
//!
//! BD is fully symmetric: no controllers or sponsors, and the same two
//! all-to-all broadcast rounds handle every membership change. Each
//! member performs only three full exponentiations — plus the "hidden"
//! cost the paper analyses in §5: assembling the key from the round-2
//! values takes Θ(n) small-exponent exponentiations, and the 2n
//! broadcasts are what make BD deteriorate on larger groups.
//!
//! The key is `K = g^{r_1 r_2 + r_2 r_3 + … + r_n r_1}`:
//!
//! 1. every member broadcasts `z_i = g^{r_i}`;
//! 2. every member broadcasts `X_i = (z_{i+1} / z_{i-1})^{r_i}`;
//! 3. every member computes
//!    `K = z_{i-1}^{n·r_i} · X_i^{n-1} · X_{i+1}^{n-2} ⋯ X_{i+n-2}`.

use std::collections::BTreeMap;

use gkap_bignum::Ubig;
use gkap_crypto::Secret;
use gkap_gcs::{ClientId, View};

use crate::protocols::{
    bootstrap_exponent, GkaCtx, GkaError, GkaProtocol, ProtocolKind, ProtocolMsg, SendKind,
};
use crate::suite::CryptoSuite;

/// BD protocol engine for one member.
pub struct Bd {
    me: Option<ClientId>,
    members: Vec<ClientId>,
    my_r: Option<Ubig>,
    z: BTreeMap<ClientId, Ubig>,
    x: BTreeMap<ClientId, Ubig>,
    sent_round2: bool,
    secret: Option<Secret<Ubig>>,
}

impl std::fmt::Debug for Bd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bd")
            .field("me", &self.me)
            .field("secret", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Bd {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Bd {
            me: None,
            members: Vec::new(),
            my_r: None,
            z: BTreeMap::new(),
            x: BTreeMap::new(),
            sent_round2: false,
            secret: None,
        }
    }

    fn position(&self, m: ClientId) -> Result<usize, GkaError> {
        self.members
            .iter()
            .position(|&x| x == m)
            .ok_or(GkaError::Protocol("member not in view"))
    }

    fn neighbour(&self, pos: usize, offset: isize) -> ClientId {
        let n = self.members.len().max(1) as isize;
        let idx = ((pos as isize + offset) % n + n) % n;
        self.members.get(idx as usize).copied().unwrap_or(0)
    }

    /// Round 2 once all z values are present.
    fn maybe_round2(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        if self.sent_round2 || self.z.len() < self.members.len() {
            return Ok(());
        }
        ctx.mark_round("BD", 2);
        let me = ctx.me();
        let pos = self.position(me)?;
        let next = self.neighbour(pos, 1);
        let prev = self.neighbour(pos, -1);
        let z_next = self
            .z
            .get(&next)
            .cloned()
            .ok_or(GkaError::MissingState("neighbour z value"))?;
        let z_prev = self
            .z
            .get(&prev)
            .cloned()
            .ok_or(GkaError::MissingState("neighbour z value"))?;
        let p = ctx.suite.group().modulus().clone();
        // Group-element inversion of z_prev (extended Euclid, charged
        // as an inverse, not an exponentiation).
        ctx.charge_inverse();
        let z_prev_inv = z_prev
            .mod_inverse(&p)
            .ok_or(GkaError::Protocol("non-invertible z value"))?;
        let ratio = ctx.modmul(&z_next, &z_prev_inv);
        let r = self
            .my_r
            .clone()
            .ok_or(GkaError::MissingState("no session random"))?;
        let x = ctx.exp(&ratio, &r);
        self.x.insert(me, x.clone());
        self.sent_round2 = true;
        ctx.send(SendKind::Multicast, &ProtocolMsg::BdRound2 { x });
        self.maybe_finish(ctx)
    }

    /// Key assembly once all X values are present.
    fn maybe_finish(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        let n = self.members.len();
        if self.x.len() < n || self.z.len() < n || self.secret.is_some() {
            return Ok(());
        }
        let me = ctx.me();
        let pos = self.position(me)?;
        let prev = self.neighbour(pos, -1);
        let r = self
            .my_r
            .clone()
            .ok_or(GkaError::MissingState("no session random"))?;
        let q = ctx.suite.group().order();
        // A = z_{i-1}^{n * r_i}: one full exponentiation.
        let e = r.modmul(&Ubig::from(n as u64), q);
        let z_prev = self
            .z
            .get(&prev)
            .cloned()
            .ok_or(GkaError::MissingState("neighbour z value"))?;
        let mut acc = ctx.exp(&z_prev, &e);
        // Multiply X_{i+j}^{n-1-j} for j = 0..n-1 (the last factor has
        // exponent 1 — a plain multiplication).
        for j in 0..(n.saturating_sub(1)) {
            let m = self.neighbour(pos, j as isize);
            let exp = (n - 1 - j) as u64;
            let xv = self
                .x
                .get(&m)
                .cloned()
                .ok_or(GkaError::MissingState("member X value"))?;
            let term = if exp == 1 {
                xv
            } else {
                ctx.exp_small(&xv, exp)
            };
            acc = ctx.modmul(&acc, &term);
        }
        self.secret = Some(Secret::new(acc));
        Ok(())
    }
}

impl Default for Bd {
    fn default() -> Self {
        Bd::new()
    }
}

impl GkaProtocol for Bd {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Bd
    }

    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError> {
        // Identical handling for every membership event.
        self.me = Some(ctx.me());
        self.members = view.members.clone();
        self.z.clear();
        self.x.clear();
        self.sent_round2 = false;
        self.secret = None;
        ctx.mark_round("BD", 1);
        let r = ctx.fresh_exponent();
        let z = ctx.exp_g(&r);
        self.my_r = Some(r.clone());
        self.z.insert(ctx.me(), z.clone());
        if self.members.len() == 1 {
            // Degenerate single-member group: K = g^{r·r}.
            let q = ctx.suite.group().order();
            let e = r.modmul(&r, q);
            let g = ctx.suite.group().generator().clone();
            self.secret = Some(Secret::new(ctx.exp(&g, &e)));
            return Ok(());
        }
        ctx.send(SendKind::Multicast, &ProtocolMsg::BdRound1 { z });
        Ok(())
    }

    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError> {
        match msg {
            ProtocolMsg::BdRound1 { z } => {
                if !self.members.contains(&sender) {
                    return Err(GkaError::UnexpectedMessage("BD z from non-member"));
                }
                self.z.insert(sender, z);
                self.maybe_round2(ctx)
            }
            ProtocolMsg::BdRound2 { x } => {
                if !self.members.contains(&sender) {
                    return Err(GkaError::UnexpectedMessage("BD X from non-member"));
                }
                self.x.insert(sender, x);
                self.maybe_finish(ctx)
            }
            _ => Err(GkaError::UnexpectedMessage("not a BD message")),
        }
    }

    fn group_secret(&self) -> Option<&Ubig> {
        self.secret.as_ref().map(|s| s.expose())
    }

    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64) {
        // K = g^{sum r_i r_{i+1}} computed directly in the exponent.
        let q = suite.group().order();
        let rs: Vec<Ubig> = members
            .iter()
            .map(|&m| bootstrap_exponent(suite, seed, m))
            .collect();
        let mut e = Ubig::zero();
        // Cyclic neighbour pairs (r_i, r_{i+1 mod n}).
        for (a, b) in rs.iter().zip(rs.iter().cycle().skip(1)) {
            e = e.modadd(&a.modmul(b, q), q);
        }
        self.me = Some(me);
        self.members = members.to_vec();
        self.my_r = members
            .iter()
            .position(|&m| m == me)
            .and_then(|i| rs.get(i).cloned());
        self.secret = Some(Secret::new(suite.group().exp_g(&e)));
    }

    fn reset(&mut self) {
        *self = Bd::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_agrees_and_is_cyclic() {
        let suite = CryptoSuite::fast_zero();
        let members = vec![0, 1, 2, 3, 4];
        let mut secrets = Vec::new();
        for &m in &members {
            let mut p = Bd::new();
            p.bootstrap(&suite, &members, m, 9);
            secrets.push(p.group_secret().unwrap().clone());
        }
        assert!(secrets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn neighbour_wraps_around() {
        let mut p = Bd::new();
        p.members = vec![10, 20, 30];
        assert_eq!(p.neighbour(0, -1), 30);
        assert_eq!(p.neighbour(2, 1), 10);
        assert_eq!(p.neighbour(1, 1), 30);
    }
}

//! Centralized Key Distribution (CKD), §4.2 of the paper.
//!
//! One member — the *controller*, always the oldest member — generates
//! the group secret and distributes it to every member encrypted under
//! a pairwise Diffie–Hellman key. The controller refreshes its own DH
//! contribution at every re-key (providing key freshness/PFS), so each
//! distribution costs the controller one exponentiation per member —
//! which is why the paper finds CKD's cost "comparable to GDH" and its
//! curves scale linearly with the group size.
//!
//! * **Join/merge**: the controller invites the new members with its
//!   fresh public value (one unicast for a join, one broadcast for a
//!   merge); each new member replies with its own public value over
//!   the cheap FIFO channel (the pairwise channels that keep CKD
//!   competitive on the WAN, §6.2.2); the controller then broadcasts
//!   the new secret encrypted per member.
//! * **Leave/partition**: the controller re-keys directly (one round,
//!   one broadcast). If the controller itself left, the new controller
//!   (the next-oldest member) must first re-establish pairwise
//!   channels with everyone — the expensive case the paper weights in
//!   (§6.1.2).

use std::collections::{BTreeMap, BTreeSet};

use gkap_bignum::{RandomSource, Ubig};
use gkap_crypto::aes::ctr_xor;
use gkap_crypto::kdf;
use gkap_crypto::Secret;
use gkap_gcs::{ClientId, View};

use crate::protocols::{
    bootstrap_exponent, GkaCtx, GkaError, GkaProtocol, ProtocolKind, ProtocolMsg, SendKind,
};
use crate::suite::CryptoSuite;

/// Fixed width (bytes) of the encrypted group-secret blobs.
const BLOB_LEN: usize = 64;

fn blob_nonce(epoch: u64, member: ClientId) -> [u8; 12] {
    use gkap_crypto::sha::{Digest, Sha256};
    let mut h = Sha256::new();
    h.update(b"ckd-nonce");
    h.update(&epoch.to_be_bytes());
    h.update(&(member as u64).to_be_bytes());
    let mut nonce = [0u8; 12];
    for (dst, src) in nonce.iter_mut().zip(h.finalize()) {
        *dst = src;
    }
    nonce
}

fn blob_key(pairwise: &Ubig) -> [u8; 16] {
    let mut key = [0u8; 16];
    for (dst, src) in key
        .iter_mut()
        .zip(kdf::derive(pairwise, b"ckd-pairwise", 16))
    {
        *dst = src;
    }
    key
}

/// CKD protocol engine for one member.
pub struct Ckd {
    me: Option<ClientId>,
    members: Vec<ClientId>,
    /// My long-term-ish pairwise DH exponent (refreshed when invited).
    my_exp: Option<Ubig>,
    /// My public value `g^{my_exp}`.
    my_pub: Option<Ubig>,
    /// Member public values known to me (complete at the controller).
    pubs: BTreeMap<ClientId, Ubig>,
    /// Members whose responses the controller is still waiting for.
    awaiting: BTreeSet<ClientId>,
    /// The controller's current private exponent (fresh per re-key).
    controller_exp: Option<Ubig>,
    /// `g^{controller_exp}` (computed once per re-key).
    controller_pub: Option<Ubig>,
    secret: Option<Secret<Ubig>>,
}

impl std::fmt::Debug for Ckd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ckd")
            .field("me", &self.me)
            .field("secret", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Ckd {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Ckd {
            me: None,
            members: Vec::new(),
            my_exp: None,
            my_pub: None,
            pubs: BTreeMap::new(),
            awaiting: BTreeSet::new(),
            controller_exp: None,
            controller_pub: None,
            secret: None,
        }
    }

    /// The controller — the oldest member — or `None` for an empty
    /// membership (a cascaded view can leave a member with no group).
    fn controller(&self) -> Option<ClientId> {
        self.members.first().copied()
    }

    /// Controller-side: distribute a fresh secret to all members,
    /// assuming `pubs` covers everyone.
    fn distribute(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        ctx.mark_round("CKD", 3);
        let me = ctx.me();
        let x = self
            .controller_exp
            .clone()
            .ok_or(GkaError::MissingState("controller has no fresh exponent"))?;
        let controller_pub = self.controller_pub.clone().ok_or(GkaError::MissingState(
            "controller public value not derived",
        ))?;
        // Fresh group secret (a random value; not contributory).
        let secret = ctx.rng.next_ubig_in_range(ctx.suite.group().modulus());
        let secret_bytes = secret.to_be_bytes_padded(BLOB_LEN);
        let mut blobs = Vec::with_capacity(self.members.len() - 1);
        for &m in &self.members {
            if m == me {
                continue;
            }
            let their_pub = self
                .pubs
                .get(&m)
                .ok_or(GkaError::Protocol("missing member public value"))?;
            let pairwise = ctx.exp(their_pub, &x);
            ctx.charge_symmetric(1);
            let ct = ctr_xor(
                &blob_key(&pairwise),
                &blob_nonce(ctx.epoch, m),
                0,
                secret_bytes.clone(),
            );
            blobs.push((m, ct));
        }
        ctx.send(
            SendKind::Multicast,
            &ProtocolMsg::CkdKeyDist {
                controller_pub,
                blobs,
            },
        );
        self.secret = Some(Secret::new(secret));
        Ok(())
    }

    /// Controller-side: begin a re-key, inviting any members whose
    /// public values we do not have.
    fn start_rekey(&mut self, ctx: &mut GkaCtx<'_>, invite: Vec<ClientId>) -> Result<(), GkaError> {
        ctx.mark_round("CKD", 1);
        let x = ctx.fresh_exponent();
        let controller_pub = ctx.exp_g(&x);
        self.controller_pub = Some(controller_pub.clone());
        self.controller_exp = Some(x);
        self.awaiting = invite.iter().copied().collect();
        if self.awaiting.is_empty() {
            return self.distribute(ctx);
        }
        let msg = ProtocolMsg::CkdInvite {
            controller_pub,
            invited: invite.clone(),
        };
        if let [only] = invite.as_slice() {
            ctx.send(SendKind::UnicastFifo(*only), &msg);
        } else {
            ctx.send(SendKind::Multicast, &msg);
        }
        Ok(())
    }
}

impl Default for Ckd {
    fn default() -> Self {
        Ckd::new()
    }
}

impl GkaProtocol for Ckd {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Ckd
    }

    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError> {
        let me = ctx.me();
        self.me = Some(me);
        let was_controller = self.members.first().map(|&c| c == me).unwrap_or(false);
        self.members = view.members.clone();
        self.secret = None;
        for l in &view.left {
            self.pubs.remove(l);
        }
        let Some(controller) = self.controller() else {
            return Ok(()); // empty view: nothing to key
        };
        if me != controller {
            return Ok(()); // wait for invite / key distribution
        }

        // I am the controller for this view.
        let became_controller = !was_controller;
        let invite: Vec<ClientId> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != me)
            .filter(|m| became_controller || !self.pubs.contains_key(m) || view.joined.contains(m))
            .collect();
        // A brand-new controller must re-establish every channel
        // (§4.2: "the new group controller must first establish secure
        // channels with all of remaining group members").
        if became_controller {
            self.pubs.clear();
        }
        self.start_rekey(ctx, invite)
    }

    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError> {
        match msg {
            ProtocolMsg::CkdInvite { invited, .. } => {
                if Some(sender) != self.controller() {
                    return Err(GkaError::UnexpectedMessage("invite from a non-controller"));
                }
                if !invited.contains(&ctx.me()) {
                    return Ok(()); // broadcast invite addressed to others
                }
                // Refresh our pairwise contribution and respond over
                // the direct channel.
                ctx.mark_round("CKD", 2);
                let x = ctx.fresh_exponent();
                let member_pub = ctx.exp_g(&x);
                self.my_exp = Some(x);
                self.my_pub = Some(member_pub.clone());
                ctx.send(
                    SendKind::UnicastFifo(sender),
                    &ProtocolMsg::CkdResponse { member_pub },
                );
                Ok(())
            }
            ProtocolMsg::CkdResponse { member_pub } => {
                if self.controller().is_none() || self.me != self.controller() {
                    return Err(GkaError::UnexpectedMessage("response at a non-controller"));
                }
                ctx.suite
                    .group()
                    .validate_public(&gkap_crypto::dh::DhPublic(member_pub.clone()))
                    .map_err(|_| GkaError::Protocol("invalid member public value"))?;
                self.pubs.insert(sender, member_pub);
                self.awaiting.remove(&sender);
                if self.awaiting.is_empty() && self.secret.is_none() {
                    self.distribute(ctx)?;
                }
                Ok(())
            }
            ProtocolMsg::CkdKeyDist {
                controller_pub,
                blobs,
            } => {
                if Some(sender) != self.controller() {
                    return Err(GkaError::UnexpectedMessage(
                        "key dist from a non-controller",
                    ));
                }
                let me = ctx.me();
                let x = self
                    .my_exp
                    .clone()
                    .ok_or(GkaError::MissingState("no pairwise exponent"))?;
                let pairwise = ctx.exp(&controller_pub, &x);
                let (_, ct) = blobs
                    .iter()
                    .find(|(m, _)| *m == me)
                    .ok_or(GkaError::Protocol("no blob for me"))?
                    .clone();
                ctx.charge_symmetric(1);
                let pt = ctr_xor(&blob_key(&pairwise), &blob_nonce(ctx.epoch, me), 0, ct);
                if pt.len() != BLOB_LEN {
                    return Err(GkaError::Protocol("blob length mismatch"));
                }
                self.secret = Some(Secret::new(Ubig::from_be_bytes(&pt)));
                Ok(())
            }
            _ => Err(GkaError::UnexpectedMessage("not a CKD message")),
        }
    }

    fn group_secret(&self) -> Option<&Ubig> {
        self.secret.as_ref().map(|s| s.expose())
    }

    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64) {
        let group = suite.group();
        self.me = Some(me);
        self.members = members.to_vec();
        self.pubs.clear();
        for &m in members {
            let x = bootstrap_exponent(suite, seed, m);
            let p = group.exp_g(&x);
            if m == me {
                self.my_exp = Some(x.clone());
                self.my_pub = Some(p.clone());
            }
            self.pubs.insert(m, p);
        }
        // The bootstrap controller's exponent doubles as the seed for
        // the initial group secret (derived, deterministic).
        let Some(&controller) = members.first() else {
            return;
        };
        let cx = bootstrap_exponent(suite, seed, controller);
        self.controller_exp = if me == controller {
            Some(cx.clone())
        } else {
            None
        };
        let shared = group.exp_g(&cx.modmul(&cx, group.order()));
        self.secret = Some(Secret::new(shared));
    }

    fn reset(&mut self) {
        *self = Ckd::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_agrees() {
        let suite = CryptoSuite::fast_zero();
        let members = vec![2, 7, 9];
        let mut secrets = Vec::new();
        for &m in &members {
            let mut p = Ckd::new();
            p.bootstrap(&suite, &members, m, 5);
            secrets.push(p.group_secret().unwrap().clone());
        }
        assert!(secrets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn blob_primitives_roundtrip() {
        let pairwise = Ubig::from(123456u64);
        let key = blob_key(&pairwise);
        let nonce = blob_nonce(4, 2);
        let secret = Ubig::from(0xDEADBEEFu64).to_be_bytes_padded(BLOB_LEN);
        let ct = ctr_xor(&key, &nonce, 0, secret.clone());
        assert_ne!(ct, secret);
        assert_eq!(ctr_xor(&key, &nonce, 0, ct), secret);
        // Nonces are domain-separated per epoch and member.
        assert_ne!(blob_nonce(4, 2), blob_nonce(5, 2));
        assert_ne!(blob_nonce(4, 2), blob_nonce(4, 3));
    }
}

//! Group Diffie–Hellman (Cliques GDH IKA.3), §4.1 of the paper.
//!
//! The group secret is `g^{r_1 r_2 … r_n}`. It is never transmitted;
//! instead the *group controller* (always the most recent member)
//! builds and broadcasts a list of partial keys
//! `K_j = g^{∏_{i≠j} r_i}`, from which each member computes the secret
//! with one exponentiation.
//!
//! * **Merge** (join is the 1-member case): the current controller
//!   refreshes its contribution and unicasts the accumulated token
//!   through the chain of new members; the last new member broadcasts
//!   it; every member factors its own contribution out and unicasts
//!   the result back (Agreed-ordered — the round the paper identifies
//!   as GDH's WAN bottleneck, §6.2.2); the new controller exponentiates
//!   each factor-out with its fresh contribution and broadcasts the
//!   partial-key list.
//! * **Leave / partition**: the controller refreshes its contribution,
//!   rescales every remaining partial key by `r'/r` and broadcasts the
//!   reduced list — one round, one message.

use std::collections::BTreeMap;

use gkap_bignum::Ubig;
use gkap_crypto::Secret;
use gkap_gcs::{ClientId, View};

use crate::protocols::{
    bootstrap_exponent, GkaCtx, GkaError, GkaProtocol, ProtocolKind, ProtocolMsg, SendKind,
};
use crate::suite::CryptoSuite;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Stage {
    Idle,
    /// A new member waiting for the chain token (its position among
    /// the new members is implied by the membership lists).
    AwaitChain,
    /// Waiting for the last new member's token broadcast.
    AwaitBroadcast,
    /// The new controller collecting factor-out values.
    AwaitFactorOuts,
    /// Waiting for the final partial-key list.
    AwaitPartialKeys,
}

/// GDH IKA.3 protocol engine for one member.
pub struct Gdh {
    me: Option<ClientId>,
    /// This member's current secret contribution `r`.
    my_exp: Option<Ubig>,
    /// Latest partial-key list `member -> g^{∏_{i≠member} r_i}`
    /// (every member caches the controller's last broadcast so any
    /// member can take over as controller).
    partial_keys: BTreeMap<ClientId, Ubig>,
    secret: Option<Secret<Ubig>>,
    stage: Stage,
    members: Vec<ClientId>,
    new_members: Vec<ClientId>,
    /// Collected factor-out values (new controller only).
    factor_outs: BTreeMap<ClientId, Ubig>,
    /// The broadcast token (kept by the new controller as its own
    /// partial key).
    broadcast_token: Option<Ubig>,
    /// Joiners to merge after a combined leave+join view finishes its
    /// leave phase (cascaded handling).
    pending_merge: Vec<ClientId>,
}

impl std::fmt::Debug for Gdh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gdh")
            .field("me", &self.me)
            .field("secret", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Gdh {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Gdh {
            me: None,
            my_exp: None,
            partial_keys: BTreeMap::new(),
            secret: None,
            stage: Stage::Idle,
            members: Vec::new(),
            new_members: Vec::new(),
            factor_outs: BTreeMap::new(),
            broadcast_token: None,
            pending_merge: Vec::new(),
        }
    }

    /// Old members (current view minus the ones being merged in).
    fn old_members(&self) -> Vec<ClientId> {
        self.members
            .iter()
            .copied()
            .filter(|m| !self.new_members.contains(m))
            .collect()
    }

    fn start_leave(&mut self, ctx: &mut GkaCtx<'_>, left: &[ClientId]) -> Result<(), GkaError> {
        for l in left {
            self.partial_keys.remove(l);
        }
        self.secret = None;
        // The leave phase involves only the surviving *old* members;
        // any simultaneously joining members wait for the merge phase.
        let old_members: Vec<ClientId> = self
            .members
            .iter()
            .copied()
            .filter(|m| !self.pending_merge.contains(m))
            .collect();
        let controller = *old_members
            .last()
            .ok_or(GkaError::MissingState("no surviving members"))?;
        if ctx.me() != controller {
            self.stage = Stage::AwaitPartialKeys;
            return Ok(());
        }
        // Controller: refresh own contribution and rescale the list.
        ctx.mark_round("GDH", 1);
        let old_r = self
            .my_exp
            .clone()
            .ok_or(GkaError::MissingState("controller lacks a contribution"))?;
        if self.partial_keys.len() != old_members.len() {
            return Err(GkaError::MissingState(
                "controller lacks the partial-key list",
            ));
        }
        let fresh = ctx.fresh_exponent();
        let q = ctx.suite.group().order().clone();
        let delta = ctx.invert_exponent(&old_r).modmul(&fresh, &q);
        let me = ctx.me();
        let mut new_list = BTreeMap::new();
        for (&m, k) in &self.partial_keys {
            if m == me {
                // K_me does not contain r_me; it is unaffected.
                new_list.insert(m, k.clone());
            } else {
                new_list.insert(m, ctx.exp(k, &delta));
            }
        }
        self.my_exp = Some(fresh.clone());
        self.partial_keys = new_list;
        let k_me = self
            .partial_keys
            .get(&me)
            .cloned()
            .ok_or(GkaError::MissingState("own partial key"))?;
        self.secret = Some(Secret::new(ctx.exp(&k_me, &fresh)));
        let entries: Vec<(ClientId, Ubig)> = self
            .partial_keys
            .iter()
            .map(|(&m, k)| (m, k.clone()))
            .collect();
        ctx.send(
            SendKind::Multicast,
            &ProtocolMsg::GdhPartialKeys { entries },
        );
        self.stage = Stage::Idle;
        self.maybe_start_pending_merge(ctx)
    }

    fn start_merge(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        self.secret = None;
        let me = ctx.me();
        let old = self.old_members();
        let old_controller = *old
            .last()
            .ok_or(GkaError::MissingState("merge without an existing group"))?;
        if me == old_controller {
            // Refresh contribution: token = K_me^{r'} = g^{∏ old}.
            ctx.mark_round("GDH", 1);
            let k_me = self
                .partial_keys
                .get(&me)
                .cloned()
                .ok_or(GkaError::MissingState("controller lacks its partial key"))?;
            let first_new = *self
                .new_members
                .first()
                .ok_or(GkaError::MissingState("merge without new members"))?;
            let fresh = ctx.fresh_exponent();
            let token = ctx.exp(&k_me, &fresh);
            self.my_exp = Some(fresh);
            ctx.send(
                SendKind::UnicastAgreed(first_new),
                &ProtocolMsg::GdhChainToken { token },
            );
            self.stage = Stage::AwaitBroadcast;
        } else if self.new_members.contains(&me) {
            self.stage = Stage::AwaitChain;
        } else {
            self.stage = Stage::AwaitBroadcast;
        }
        Ok(())
    }

    fn maybe_start_pending_merge(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        if self.pending_merge.is_empty() {
            return Ok(());
        }
        self.new_members = std::mem::take(&mut self.pending_merge);
        self.start_merge(ctx)
    }

    /// The new controller (last new member) finishes the protocol once
    /// every factor-out has arrived.
    fn try_finish_collection(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        let expected = self.members.len().saturating_sub(1);
        if self.factor_outs.len() < expected {
            return Ok(());
        }
        let token = self
            .broadcast_token
            .clone()
            .ok_or(GkaError::MissingState("missing broadcast token"))?;
        ctx.mark_round("GDH", 4);
        let fresh = ctx.fresh_exponent();
        let mut entries: Vec<(ClientId, Ubig)> = Vec::with_capacity(self.members.len());
        for (&m, f) in &self.factor_outs {
            entries.push((m, ctx.exp(f, &fresh)));
        }
        // The controller's own partial key is the token itself
        // (g^{∏ everyone else}).
        entries.push((ctx.me(), token.clone()));
        entries.sort_by_key(|(m, _)| *m);
        self.partial_keys = entries.iter().cloned().collect();
        self.secret = Some(Secret::new(ctx.exp(&token, &fresh)));
        self.my_exp = Some(fresh);
        ctx.send(
            SendKind::Multicast,
            &ProtocolMsg::GdhPartialKeys { entries },
        );
        self.factor_outs.clear();
        self.stage = Stage::Idle;
        Ok(())
    }
}

impl Default for Gdh {
    fn default() -> Self {
        Gdh::new()
    }
}

impl GkaProtocol for Gdh {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Gdh
    }

    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError> {
        self.me = Some(ctx.me());
        self.members = view.members.clone();
        self.factor_outs.clear();
        self.broadcast_token = None;
        let mut joined = view.joined.clone();

        // Initial formation without bootstrap: treat the first member
        // as a pre-existing group of one (IKA from scratch).
        if joined.len() == view.members.len() {
            let first = joined.remove(0);
            if ctx.me() == first && self.my_exp.is_none() {
                // The singleton's partial "list": K_first = g.
                let r = ctx.fresh_exponent();
                self.my_exp = Some(r);
                self.partial_keys
                    .insert(first, ctx.suite.group().generator().clone());
            }
            if joined.is_empty() {
                // A group of one: the secret is g^{r}.
                let r = self
                    .my_exp
                    .clone()
                    .ok_or(GkaError::MissingState("own exponent"))?;
                let g = ctx.suite.group().generator().clone();
                self.secret = Some(Secret::new(ctx.exp(&g, &r)));
                self.stage = Stage::Idle;
                return Ok(());
            }
        }

        if !view.left.is_empty() {
            if joined.contains(&ctx.me()) {
                // A simultaneously joining member skips the old
                // group's leave phase and waits for the merge chain.
                self.new_members = joined;
                self.pending_merge.clear();
                self.stage = Stage::AwaitChain;
                return Ok(());
            }
            self.pending_merge = joined;
            self.new_members.clear();
            self.start_leave(ctx, &view.left)
        } else if !joined.is_empty() {
            self.new_members = joined;
            self.start_merge(ctx)
        } else {
            Ok(())
        }
    }

    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError> {
        match msg {
            ProtocolMsg::GdhChainToken { token } => {
                if self.stage != Stage::AwaitChain {
                    return Err(GkaError::UnexpectedMessage("GDH chain token"));
                }
                let me = ctx.me();
                let pos = self
                    .new_members
                    .iter()
                    .position(|&m| m == me)
                    .ok_or(GkaError::MissingState("chain token at a non-new member"))?;
                let last = self.new_members.len() - 1;
                if pos < last {
                    // Add our contribution and forward.
                    ctx.mark_round("GDH", 2);
                    let r = ctx.fresh_exponent();
                    let next_token = ctx.exp(&token, &r);
                    self.my_exp = Some(r);
                    let next = self
                        .new_members
                        .get(pos + 1)
                        .copied()
                        .ok_or(GkaError::MissingState("next member in the chain"))?;
                    ctx.send(
                        SendKind::UnicastAgreed(next),
                        &ProtocolMsg::GdhChainToken { token: next_token },
                    );
                    self.stage = Stage::AwaitBroadcast;
                } else {
                    // We are the new controller: broadcast as received.
                    ctx.mark_round("GDH", 2);
                    self.broadcast_token = Some(token.clone());
                    ctx.send(
                        SendKind::Multicast,
                        &ProtocolMsg::GdhBroadcastToken { token },
                    );
                    self.stage = Stage::AwaitFactorOuts;
                }
                let _ = sender;
                Ok(())
            }
            ProtocolMsg::GdhBroadcastToken { token } => {
                if self.stage != Stage::AwaitBroadcast {
                    return Err(GkaError::UnexpectedMessage("GDH token broadcast"));
                }
                let r = self
                    .my_exp
                    .clone()
                    .ok_or(GkaError::MissingState("no contribution to factor out"))?;
                ctx.mark_round("GDH", 3);
                let r_inv = ctx.invert_exponent(&r);
                let value = ctx.exp(&token, &r_inv);
                ctx.send(
                    SendKind::UnicastAgreed(sender),
                    &ProtocolMsg::GdhFactorOut { value },
                );
                self.stage = Stage::AwaitPartialKeys;
                Ok(())
            }
            ProtocolMsg::GdhFactorOut { value } => {
                if self.stage != Stage::AwaitFactorOuts {
                    return Err(GkaError::UnexpectedMessage("GDH factor-out"));
                }
                self.factor_outs.insert(sender, value);
                self.try_finish_collection(ctx)
            }
            ProtocolMsg::GdhPartialKeys { entries } => {
                if self.stage == Stage::AwaitChain {
                    // The old group's leave-phase re-key during a
                    // combined leave+join: not addressed to us.
                    return Ok(());
                }
                if self.stage != Stage::AwaitPartialKeys {
                    return Err(GkaError::UnexpectedMessage("GDH partial keys"));
                }
                self.partial_keys = entries.into_iter().collect();
                let me = ctx.me();
                let k_me = self
                    .partial_keys
                    .get(&me)
                    .cloned()
                    .ok_or(GkaError::MissingState("partial-key list misses me"))?;
                let r = self
                    .my_exp
                    .clone()
                    .ok_or(GkaError::MissingState("no contribution"))?;
                self.secret = Some(Secret::new(ctx.exp(&k_me, &r)));
                self.stage = Stage::Idle;
                self.maybe_start_pending_merge(ctx)
            }
            _ => Err(GkaError::UnexpectedMessage("not a GDH message")),
        }
    }

    fn group_secret(&self) -> Option<&Ubig> {
        self.secret.as_ref().map(|s| s.expose())
    }

    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64) {
        let group = suite.group();
        let q = group.order().clone();
        // Product of everyone's bootstrap exponent (mod q).
        let exps: Vec<(ClientId, Ubig)> = members
            .iter()
            .map(|&m| (m, bootstrap_exponent(suite, seed, m)))
            .collect();
        let mut product = Ubig::one();
        for (_, r) in &exps {
            product = product.modmul(r, &q);
        }
        self.partial_keys.clear();
        for (m, r) in &exps {
            // q is prime and exponents are nonzero, so the inverse
            // always exists; skipping (instead of panicking) merely
            // leaves one partial key out, surfaced later as a GkaError.
            let Some(r_inv) = r.mod_inverse(&q) else {
                continue;
            };
            let e = product.modmul(&r_inv, &q);
            self.partial_keys.insert(*m, group.exp_g(&e));
            if *m == me {
                self.my_exp = Some(r.clone());
            }
        }
        self.me = Some(me);
        self.members = members.to_vec();
        self.secret = Some(Secret::new(group.exp_g(&product)));
        self.stage = Stage::Idle;
    }

    fn reset(&mut self) {
        *self = Gdh::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_agrees_across_members() {
        let suite = CryptoSuite::fast_zero();
        let members = vec![0, 1, 2, 3];
        let mut secrets = Vec::new();
        for &m in &members {
            let mut p = Gdh::new();
            p.bootstrap(&suite, &members, m, 42);
            secrets.push(p.group_secret().unwrap().clone());
        }
        assert!(secrets.windows(2).all(|w| w[0] == w[1]));
        // Different seed, different key.
        let mut other = Gdh::new();
        other.bootstrap(&suite, &members, 0, 43);
        assert_ne!(other.group_secret().unwrap(), &secrets[0]);
    }

    #[test]
    fn bootstrap_partial_keys_consistent() {
        // K_j^{r_j} == group secret for every j.
        let suite = CryptoSuite::fast_zero();
        let members = vec![5, 9, 11];
        let mut p = Gdh::new();
        p.bootstrap(&suite, &members, 5, 1);
        let secret = p.group_secret().unwrap().clone();
        for &m in &members {
            let r = bootstrap_exponent(&suite, 1, m);
            let k = p.partial_keys.get(&m).unwrap();
            assert_eq!(suite.group().exp(k, &r), secret, "member {m}");
        }
    }
}

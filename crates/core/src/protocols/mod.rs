//! The group key agreement protocol framework and its five
//! implementations.
//!
//! All protocols implement [`GkaProtocol`]: a state machine driven by
//! membership views and signed protocol messages, producing a shared
//! group secret. The framework supplies each protocol with a
//! [`GkaCtx`] that performs the actual group arithmetic while
//! transparently counting operations and charging virtual CPU time —
//! so the *same* protocol code yields both correctness (real keys) and
//! the paper's cost accounting.

pub mod bd;
pub mod ckd;
pub mod gdh;
pub mod str_proto;
pub mod tgdh;
mod wire;

use bytes::Bytes;
use gkap_bignum::{RandomSource, SplitMix64, Ubig};
use gkap_gcs::{ClientId, View};
use gkap_sim::{Duration, SimTime};
use gkap_telemetry::{Actor, CryptoOpKind, Event, EventKind, SendClass, Telemetry};

use crate::cost::OpCounts;
use crate::suite::CryptoSuite;

pub use wire::ProtocolMsg;

/// Which of the five protocols a group runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Group Diffie–Hellman (Cliques GDH IKA.3).
    Gdh,
    /// Centralized Key Distribution with a dynamically chosen server.
    Ckd,
    /// Tree-based Group Diffie–Hellman.
    Tgdh,
    /// Skinny-tree (STR) protocol.
    Str,
    /// Burmester–Desmedt.
    Bd,
}

impl ProtocolKind {
    /// All five, in the paper's Table 1 order.
    pub fn all() -> [ProtocolKind; 5] {
        [
            ProtocolKind::Gdh,
            ProtocolKind::Tgdh,
            ProtocolKind::Str,
            ProtocolKind::Bd,
            ProtocolKind::Ckd,
        ]
    }

    /// Display name, as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Gdh => "GDH",
            ProtocolKind::Ckd => "CKD",
            ProtocolKind::Tgdh => "TGDH",
            ProtocolKind::Str => "STR",
            ProtocolKind::Bd => "BD",
        }
    }

    /// Instantiates a fresh protocol engine.
    pub fn create(&self) -> Box<dyn GkaProtocol> {
        match self {
            ProtocolKind::Gdh => Box::new(gdh::Gdh::new()),
            ProtocolKind::Ckd => Box::new(ckd::Ckd::new()),
            ProtocolKind::Tgdh => Box::new(tgdh::Tgdh::new()),
            ProtocolKind::Str => Box::new(str_proto::Str::new()),
            ProtocolKind::Bd => Box::new(bd::Bd::new()),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors surfaced by protocol state machines.
///
/// Every driver returns these instead of panicking, so a cascaded
/// membership event (a view superseding a round that was still in
/// flight) degrades into an abort-and-restart at the session layer
/// rather than tearing the process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GkaError {
    /// A message arrived that the current state cannot accept.
    UnexpectedMessage(&'static str),
    /// State a handler needs is absent — typically because a cascaded
    /// membership event superseded the round that would have produced
    /// it. Recoverable by restarting the agreement in the new epoch.
    MissingState(&'static str),
    /// Internal invariant violated (indicates a bug or a Byzantine
    /// peer, which the paper's threat model excludes).
    Protocol(&'static str),
}

impl std::fmt::Display for GkaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GkaError::UnexpectedMessage(what) => write!(f, "unexpected protocol message: {what}"),
            GkaError::MissingState(what) => write!(f, "missing protocol state: {what}"),
            GkaError::Protocol(what) => write!(f, "protocol invariant violated: {what}"),
        }
    }
}

impl std::error::Error for GkaError {}

/// The error type protocol drivers surface to the session layer.
pub type ProtocolError = GkaError;

/// How a protocol message is to be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendKind {
    /// Agreed (totally ordered) multicast to the whole group.
    Multicast,
    /// Agreed unicast — ordered with respect to multicasts, and as
    /// expensive as one (GDH factor-out tokens; §6.2.2).
    UnicastAgreed(ClientId),
    /// Cheap direct FIFO unicast (CKD pairwise channel traffic).
    UnicastFifo(ClientId),
}

/// Transport abstraction the protocols send through: implemented by
/// the live `SecureMember` (over the simulated GCS) and by the
/// in-memory loopback harness in [`crate::testkit`].
pub trait Transport {
    /// This member's identifier.
    fn my_id(&self) -> ClientId;
    /// Queues an already-enveloped wire message.
    fn send_wire(&mut self, kind: SendKind, wire: Bytes);
    /// Charges virtual CPU time.
    fn charge(&mut self, cost: Duration);
}

/// The execution context handed to protocol handlers: group
/// arithmetic with automatic cost accounting, randomness, and sending.
pub struct GkaCtx<'a> {
    /// Underlying transport.
    pub transport: &'a mut dyn Transport,
    /// Cryptographic configuration.
    pub suite: &'a CryptoSuite,
    /// Operation counters (per member, monotone).
    pub counts: &'a mut OpCounts,
    /// The member's private randomness.
    pub rng: &'a mut SplitMix64,
    /// Current epoch (view id) — stamped into envelopes.
    pub epoch: u64,
    /// Telemetry sink (disabled handles record nothing).
    pub telemetry: Telemetry,
    /// Virtual time of the handler this context serves (telemetry
    /// events are keyed to it; recording never advances the clock).
    pub now: SimTime,
}

impl GkaCtx<'_> {
    /// This member's id.
    pub fn me(&self) -> ClientId {
        self.transport.my_id()
    }

    /// Records one charged primitive; colocated with the `OpCounts`
    /// increments so telemetry tallies reconcile with Table 1 counts
    /// by construction.
    fn note_crypto(&mut self, op: CryptoOpKind, cost: Duration) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let at = self.now;
        let actor = Actor::Client(self.transport.my_id());
        let bits = self.suite.nominal_bits() as u32;
        self.telemetry.record(|| Event {
            at,
            dur: cost,
            actor,
            kind: EventKind::CryptoOp { op, bits },
        });
    }

    /// Marks the start of protocol round `round` at this member
    /// (telemetry only; free when disabled).
    pub fn mark_round(&mut self, protocol: &'static str, round: u32) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let at = self.now;
        let actor = Actor::Client(self.transport.my_id());
        self.telemetry.record(|| Event {
            at,
            dur: Duration::ZERO,
            actor,
            kind: EventKind::ProtocolRound { protocol, round },
        });
    }

    /// Full modular exponentiation in the group (counted + charged).
    pub fn exp(&mut self, base: &Ubig, e: &Ubig) -> Ubig {
        self.counts.exp += 1;
        self.transport.charge(self.suite.cost().exp);
        self.note_crypto(CryptoOpKind::Exp, self.suite.cost().exp);
        self.suite.group().exp(base, e)
    }

    /// `g^e` (counted + charged).
    pub fn exp_g(&mut self, e: &Ubig) -> Ubig {
        self.counts.exp += 1;
        self.transport.charge(self.suite.cost().exp);
        self.note_crypto(CryptoOpKind::Exp, self.suite.cost().exp);
        self.suite.group().exp_g(e)
    }

    /// Small-exponent exponentiation (BD step 3; counted separately,
    /// charged per modular multiplication).
    pub fn exp_small(&mut self, base: &Ubig, e: u64) -> Ubig {
        self.counts.small_exp += 1;
        self.transport.charge(self.suite.cost().small_exp(e));
        self.note_crypto(CryptoOpKind::SmallExp, self.suite.cost().small_exp(e));
        self.suite.group().exp(base, &Ubig::from(e))
    }

    /// Modular multiplication of two group elements (BD key
    /// assembly; charged as one multiplication).
    pub fn modmul(&mut self, a: &Ubig, b: &Ubig) -> Ubig {
        self.transport.charge(self.suite.cost().modmul);
        self.note_crypto(CryptoOpKind::ModMul, self.suite.cost().modmul);
        a.modmul(b, self.suite.group().modulus())
    }

    /// Counts and charges one modular inversion the caller performs
    /// itself (BD's group-element inversion, which does not go through
    /// [`GkaCtx::invert_exponent`]).
    pub fn charge_inverse(&mut self) {
        self.counts.inverse += 1;
        self.transport.charge(self.suite.cost().inverse);
        self.note_crypto(CryptoOpKind::Inverse, self.suite.cost().inverse);
    }

    /// Inverts an exponent modulo the group order (counted + charged).
    pub fn invert_exponent(&mut self, e: &Ubig) -> Ubig {
        self.counts.inverse += 1;
        self.transport.charge(self.suite.cost().inverse);
        self.note_crypto(CryptoOpKind::Inverse, self.suite.cost().inverse);
        self.suite.invert_exponent(e)
    }

    /// Draws a fresh secret exponent.
    pub fn fresh_exponent(&mut self) -> Ubig {
        self.suite.group().random_exponent(self.rng)
    }

    /// Charges `n` symmetric cipher operations (CKD key blobs).
    pub fn charge_symmetric(&mut self, n: u64) {
        self.counts.symmetric += n;
        self.transport.charge(self.suite.cost().symmetric * n);
        for _ in 0..n {
            self.note_crypto(CryptoOpKind::Symmetric, self.suite.cost().symmetric);
        }
    }

    /// Encodes, signs and sends a protocol message (sign is counted
    /// and charged; message counters updated).
    pub fn send(&mut self, kind: SendKind, msg: &ProtocolMsg) {
        let body = msg.encode();
        self.counts.sign += 1;
        self.transport.charge(self.suite.cost().sign);
        self.note_crypto(CryptoOpKind::Sign, self.suite.cost().sign);
        let env = crate::envelope::Envelope::seal(self.suite, self.me(), self.epoch, body);
        let class = match kind {
            SendKind::Multicast => {
                self.counts.multicast += 1;
                SendClass::Multicast
            }
            SendKind::UnicastAgreed(_) | SendKind::UnicastFifo(_) => {
                self.counts.unicast += 1;
                SendClass::Unicast
            }
        };
        if self.telemetry.is_enabled() {
            let at = self.now;
            let actor = Actor::Client(self.transport.my_id());
            self.telemetry.record(|| Event {
                at,
                dur: Duration::ZERO,
                actor,
                kind: EventKind::MessageSend { class },
            });
        }
        self.transport.send_wire(kind, env.encode());
    }
}

/// A group key agreement protocol state machine.
///
/// One instance lives inside each member's `SecureMember`. The
/// framework guarantees that `on_view` is invoked for every installed
/// view the member belongs to, and `on_msg` for every *verified*
/// protocol message of the current epoch.
pub trait GkaProtocol: std::any::Any {
    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;

    /// Reacts to a membership change: initiates (or participates in)
    /// the re-keying for this view.
    ///
    /// # Errors
    ///
    /// Returns a [`GkaError`] if the view is inconsistent with
    /// protocol state.
    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError>;

    /// Handles a verified protocol message from `sender`.
    ///
    /// # Errors
    ///
    /// Returns a [`GkaError`] on unexpected or inconsistent messages.
    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError>;

    /// The established group secret, once this member has computed it
    /// for the current epoch.
    fn group_secret(&self) -> Option<&Ubig>;

    /// Installs a deterministic pre-agreed state for `members` (used
    /// to bootstrap initial groups and pre-merge components without
    /// running — or charging for — an interactive protocol; see
    /// DESIGN.md). `seed` must be identical across the members of the
    /// component.
    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64);

    /// Discards all group state, returning the engine to its freshly
    /// constructed condition (tuning knobs like the TGDH tree policy
    /// survive). The session layer calls this when a member rejoins
    /// after a partition healed: the rejoiner participates in the merge
    /// as a fresh singleton instead of replaying stale keys.
    fn reset(&mut self);
}

/// Derives member `m`'s deterministic bootstrap exponent for a
/// component seeded with `seed`. Every member of the component can
/// derive every other member's exponent — the simulation's stand-in
/// for "the group already shares a key" (never used after the first
/// real membership event, which refreshes contributions).
pub fn bootstrap_exponent(suite: &CryptoSuite, seed: u64, m: ClientId) -> Ubig {
    let mut rng = SplitMix64::new(seed ^ (m as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let _ = rng.next_u64(); // decorrelate from the raw seed
    suite.group().random_exponent(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_all() {
        assert_eq!(ProtocolKind::all().len(), 5);
        let names: Vec<&str> = ProtocolKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["GDH", "TGDH", "STR", "BD", "CKD"]);
        assert_eq!(ProtocolKind::Tgdh.to_string(), "TGDH");
    }

    #[test]
    fn create_instantiates_matching_kind() {
        for kind in ProtocolKind::all() {
            assert_eq!(kind.create().kind(), kind);
        }
    }

    #[test]
    fn bootstrap_exponents_deterministic_and_distinct() {
        let suite = CryptoSuite::fast_zero();
        let a1 = bootstrap_exponent(&suite, 7, 0);
        let a2 = bootstrap_exponent(&suite, 7, 0);
        let b = bootstrap_exponent(&suite, 7, 1);
        let c = bootstrap_exponent(&suite, 8, 0);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }

    #[test]
    fn errors_display() {
        assert!(GkaError::UnexpectedMessage("x").to_string().contains("x"));
        assert!(GkaError::Protocol("y").to_string().contains("y"));
    }
}

//! STR — the "skinny tree" protocol, §4.4 of the paper.
//!
//! STR is TGDH with a maximally imbalanced tree: member `M_1` sits at
//! the bottom and each further member joins one level higher. Writing
//! `k_i` for the key of the internal node covering members `1..=i`
//! (`k_1` is `M_1`'s session random):
//!
//! ```text
//! k_i = (g^{r_i})^{k_{i-1}} = (g^{k_{i-1}})^{r_i}
//! ```
//!
//! the group secret is `k_n`. Member `M_p` computes `k_p` from the
//! blinded internal key below it and then chains upward using the leaf
//! blinded keys — so cost falls with height: the top member pays O(1),
//! the bottom pays O(n).
//!
//! * **Join/merge** (two rounds, three messages): each component's top
//!   member refreshes its session random and broadcasts its tree; the
//!   components stack — larger at the bottom; the top member of the
//!   bottom component computes the new internal keys and blinded keys
//!   and broadcasts. Join costs O(1) exponentiations per member.
//! * **Leave/partition** (one round, one message): the member just
//!   below the lowest leaver becomes the sponsor, refreshes its
//!   random, recomputes keys and blinded keys up the chain, and
//!   broadcasts — everyone above the change recomputes its tail of
//!   the chain, giving the linear (and steeper than GDH/CKD) leave
//!   cost visible in Figure 12.

use std::collections::{BTreeMap, HashMap};

use gkap_bignum::Ubig;
use gkap_crypto::sha::{Digest, Sha256};
use gkap_crypto::Secret;
use gkap_gcs::{ClientId, View};

use crate::protocols::{
    bootstrap_exponent, GkaCtx, GkaError, GkaProtocol, ProtocolKind, ProtocolMsg, SendKind,
};
use crate::suite::CryptoSuite;

/// A component (or full) skinny tree as exchanged on the wire.
#[derive(Clone, Debug, PartialEq)]
struct Chain {
    /// Members from the bottom upward.
    order: Vec<ClientId>,
    /// Blinded session randoms, aligned with `order`.
    leaf_bkeys: Vec<Option<Ubig>>,
    /// Blinded internal keys: `internal_bkeys[i]` blinds `k_{i+1}` —
    /// the key of the node covering `order[0..=i]`. Index 0 is the
    /// bottom leaf's "internal" slot and stays `None`.
    internal_bkeys: Vec<Option<Ubig>>,
}

impl Chain {
    fn new() -> Self {
        Chain {
            order: Vec::new(),
            leaf_bkeys: Vec::new(),
            internal_bkeys: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn position(&self, m: ClientId) -> Option<usize> {
        self.order.iter().position(|&x| x == m)
    }

    /// Fingerprint of the chain prefix `0..=i` (content identity for
    /// the key `k_{i+1}`).
    fn prefix_fingerprint(&self, i: usize) -> [u8; 32] {
        let mut h = Sha256::new();
        for j in 0..=i {
            h.update(&(self.order[j] as u64).to_be_bytes());
            match &self.leaf_bkeys[j] {
                Some(b) => h.update(&b.to_be_bytes()),
                None => h.update(b"?"),
            }
        }
        let mut fp = [0u8; 32];
        for (dst, src) in fp.iter_mut().zip(h.finalize()) {
            *dst = src;
        }
        fp
    }

    fn remove_members(&mut self, leaving: &[ClientId]) -> usize {
        let lowest = self
            .order
            .iter()
            .position(|m| leaving.contains(m))
            .unwrap_or(self.order.len());
        let keep: Vec<usize> = (0..self.order.len())
            .filter(|&i| !leaving.contains(&self.order[i]))
            .collect();
        self.order = keep.iter().map(|&i| self.order[i]).collect();
        self.leaf_bkeys = keep.iter().map(|&i| self.leaf_bkeys[i].clone()).collect();
        let mut internals = vec![None; self.order.len()];
        // Prefixes strictly below the first removal are unaffected.
        for (new_i, &old_i) in keep.iter().enumerate() {
            if old_i < lowest && new_i < internals.len() {
                internals[new_i] = self.internal_bkeys.get(old_i).cloned().flatten();
            }
        }
        self.internal_bkeys = internals;
        lowest
    }
}

/// STR protocol engine for one member.
pub struct Str {
    me: Option<ClientId>,
    view_members: Vec<ClientId>,
    my_r: Option<Ubig>,
    chain: Chain,
    /// `k_{i+1}` values this member knows (aligned with `chain.order`).
    keys: Vec<Option<Ubig>>,
    /// Whether this member publishes blinded keys this event.
    publisher: bool,
    /// Chain broadcasts this member has sent for the current
    /// membership event (telemetry round numbering).
    rounds_started: u32,
    components: BTreeMap<Vec<ClientId>, Chain>,
    merging: bool,
    cache: HashMap<[u8; 32], Ubig>,
    secret: Option<Secret<Ubig>>,
}

impl std::fmt::Debug for Str {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Str")
            .field("me", &self.me)
            .field("secret", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Str {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Str {
            me: None,
            view_members: Vec::new(),
            my_r: None,
            chain: Chain::new(),
            keys: Vec::new(),
            publisher: false,
            rounds_started: 0,
            components: BTreeMap::new(),
            merging: false,
            cache: HashMap::new(),
            secret: None,
        }
    }

    fn wire_msg(&self) -> ProtocolMsg {
        ProtocolMsg::StrTree {
            members: self.chain.order.clone(),
            leaf_bkeys: self.chain.leaf_bkeys.clone(),
            internal_bkeys: self.chain.internal_bkeys.clone(),
        }
    }

    fn refresh_my_leaf(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        let me = ctx.me();
        let r = ctx.fresh_exponent();
        let b = ctx.exp_g(&r);
        let p = self
            .chain
            .position(me)
            .ok_or(GkaError::MissingState("own position in the STR chain"))?;
        self.chain.leaf_bkeys[p] = Some(b);
        // Everything at or above our level is stale.
        for i in p..self.chain.len() {
            self.keys[i] = None;
            self.chain.internal_bkeys[i] = None;
        }
        self.my_r = Some(r);
        Ok(())
    }

    /// Recomputes as much of the key chain as possible; publishes
    /// blinded keys if `publisher`. Returns `true` if something new
    /// was published.
    fn progress(&mut self, ctx: &mut GkaCtx<'_>) -> Result<bool, GkaError> {
        let me = ctx.me();
        let n = self.chain.len();
        let p = self
            .chain
            .position(me)
            .ok_or(GkaError::MissingState("not in the STR chain"))?;
        let r = self
            .my_r
            .clone()
            .ok_or(GkaError::MissingState("no session random"))?;
        let mut published = false;

        // Our leaf's blinded key is ours alone to regenerate; a
        // cascaded view change can cut the round that would have
        // circulated it, and an assembled merge chain then lacks it
        // everywhere else. Restoring it is news the group needs:
        // force a broadcast.
        if self.chain.leaf_bkeys[p].is_none() {
            let b = ctx.exp_g(&r);
            self.chain.leaf_bkeys[p] = Some(b);
            published = true;
        }

        // Dynamic sponsorship — the STR analog of TGDH's
        // lowest-incomplete rule: the member sitting at the lowest
        // level whose internal blinded key is missing takes over
        // publication. After a cascaded cut the statically designated
        // sponsor can sit *above* the wound, blocked on exactly those
        // keys. (In clean runs this resolves to the static sponsor.)
        if !self.publisher {
            if let Some(w) =
                (1..n.saturating_sub(1)).find(|&i| self.chain.internal_bkeys[i].is_none())
            {
                if self.chain.order[w] == me {
                    self.publisher = true;
                }
            }
        }

        // Establish k at our own level.
        if self.keys[p].is_none() {
            if p == 0 {
                self.keys[0] = Some(r.clone());
            } else {
                let fp = self.chain.prefix_fingerprint(p);
                // The node below position 1 is the bottom *leaf*, so
                // its blinded key is the leaf blinded key.
                let b_below = if p == 1 {
                    self.chain.leaf_bkeys[0].clone()
                } else {
                    self.chain.internal_bkeys[p - 1].clone()
                };
                if let Some(k) = self.cache.get(&fp) {
                    self.keys[p] = Some(k.clone());
                } else if let Some(b_below) = b_below {
                    let k = ctx.exp(&b_below, &r);
                    self.cache.insert(fp, k.clone());
                    self.keys[p] = Some(k);
                } else {
                    return Ok(false); // blocked until the sponsor publishes
                }
            }
        }

        // Chain upward.
        for i in (p + 1)..n {
            if self.keys[i].is_none() {
                let fp = self.chain.prefix_fingerprint(i);
                if let Some(k) = self.cache.get(&fp) {
                    self.keys[i] = Some(k.clone());
                } else {
                    let Some(bleaf) = self.chain.leaf_bkeys[i].clone() else {
                        return Ok(published); // blocked
                    };
                    let Some(below) = self.keys[i - 1].clone() else {
                        return Ok(published); // blocked lower down
                    };
                    let k = ctx.exp(&bleaf, &below);
                    self.cache.insert(fp, k.clone());
                    self.keys[i] = Some(k);
                }
            }
            if self.publisher && self.chain.internal_bkeys[i].is_none() && i < n - 1 {
                // Blind every internal key except the root ("up to the
                // intermediate node just below the root", §4.4).
                if let Some(k) = self.keys[i].clone() {
                    self.chain.internal_bkeys[i] = Some(ctx.exp_g(&k));
                    published = true;
                }
            }
        }
        // The publisher also blinds its own-level node (needed by the
        // member directly above); position 0's "node" is its leaf,
        // whose blinded key is already public.
        if self.publisher && p > 0 && p < n - 1 && self.chain.internal_bkeys[p].is_none() {
            if let Some(k) = self.keys[p].clone() {
                self.chain.internal_bkeys[p] = Some(ctx.exp_g(&k));
                published = true;
            }
        }

        // The top key is the group secret — but only once the chain
        // covers the whole view (not during merge round 1, when it is
        // still just our component).
        if !self.merging {
            if let Some(k) = self.keys[n - 1].clone() {
                self.secret = Some(Secret::new(k));
            }
        }
        Ok(published)
    }

    fn try_assemble(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        if !self.merging {
            return Ok(());
        }
        let mut covered: Vec<ClientId> = self.components.keys().flatten().copied().collect();
        covered.sort_unstable();
        let mut expected = self.view_members.clone();
        expected.sort_unstable();
        if covered != expected {
            return Ok(());
        }
        let mut comps: Vec<Chain> = self.components.values().cloned().collect();
        comps.sort_by_key(|c| {
            (
                std::cmp::Reverse(c.len()),
                c.order.iter().min().copied().unwrap_or(ClientId::MAX),
            )
        });
        // Stack: largest at the bottom, the rest on top (their internal
        // structure dissolves into individual levels).
        let bottom = comps.remove(0);
        let bottom_len = bottom.len();
        let mut chain = bottom;
        for c in comps {
            for (i, &m) in c.order.iter().enumerate() {
                chain.order.push(m);
                chain.leaf_bkeys.push(c.leaf_bkeys[i].clone());
                chain.internal_bkeys.push(None);
            }
        }
        self.chain = chain;
        self.keys = vec![None; self.chain.len()];
        self.merging = false;
        self.components.clear();
        // Round-2 sponsor: top member of the bottom (largest) component.
        // (Keep any publisher role acquired earlier — e.g. the leave
        // sponsor of a combined leave+join.)
        let Some(&sponsor) = self.chain.order.get(bottom_len.wrapping_sub(1)) else {
            return Err(GkaError::MissingState("empty merged STR chain"));
        };
        self.publisher = self.publisher || ctx.me() == sponsor;
        if self.progress(ctx)? {
            self.broadcast(ctx);
        }
        Ok(())
    }

    fn broadcast(&mut self, ctx: &mut GkaCtx<'_>) {
        // Each chain broadcast is one round of the event's re-keying.
        self.rounds_started += 1;
        ctx.mark_round("STR", self.rounds_started);
        let msg = self.wire_msg();
        ctx.send(SendKind::Multicast, &msg);
    }

    fn adopt(&mut self, other: &Chain) -> Result<(), GkaError> {
        if other.order != self.chain.order {
            return Err(GkaError::Protocol("STR chain order divergence"));
        }
        for i in 0..self.chain.len() {
            if self.chain.leaf_bkeys[i].is_none() {
                self.chain.leaf_bkeys[i] = other.leaf_bkeys[i].clone();
            }
            if self.chain.internal_bkeys[i].is_none() {
                self.chain.internal_bkeys[i] = other.internal_bkeys[i].clone();
            }
        }
        Ok(())
    }
}

impl Default for Str {
    fn default() -> Self {
        Str::new()
    }
}

impl GkaProtocol for Str {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Str
    }

    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError> {
        let me = ctx.me();
        self.me = Some(me);
        self.view_members = view.members.clone();
        self.secret = None;
        self.publisher = false;
        self.rounds_started = 0;

        if !view.left.is_empty() && self.chain.position(me).is_some() {
            let lowest = self.chain.remove_members(&view.left);
            self.keys = vec![None; self.chain.len()];
            if !view.joined.is_empty() && !self.chain.order.is_empty() {
                // Combined leave+join: the leave sponsor must publish
                // the blinded keys across the removal wound so the
                // merge sponsor can proceed past it.
                let sponsor_pos = lowest.saturating_sub(1).min(self.chain.len() - 1);
                if self.chain.order[sponsor_pos] == me {
                    self.publisher = true;
                }
            }
            // Keys strictly below the removal point survive via cache.
            if view.joined.is_empty() {
                if self.chain.len() == 1 {
                    let r = self
                        .my_r
                        .clone()
                        .ok_or(GkaError::MissingState("no session random"))?;
                    self.secret = Some(Secret::new(r));
                    return Ok(());
                }
                // Sponsor: the member just below the lowest leaver.
                let sponsor_pos = lowest.saturating_sub(1).min(self.chain.len() - 1);
                let sponsor = self.chain.order[sponsor_pos];
                if sponsor == me {
                    // The refreshed leaf blinded key must reach the
                    // group even when no internal key needs publishing
                    // (e.g. the sponsor ends up at the top).
                    self.publisher = true;
                    self.refresh_my_leaf(ctx)?;
                    let _ = self.progress(ctx)?;
                    self.broadcast(ctx);
                } else {
                    // The sponsor will refresh: its level and above are
                    // stale for us.
                    self.chain.leaf_bkeys[sponsor_pos] = None;
                    for i in sponsor_pos..self.chain.len() {
                        self.chain.internal_bkeys[i] = None;
                    }
                    if self.progress(ctx)? {
                        self.broadcast(ctx);
                    }
                }
                return Ok(());
            }
        }

        if !view.joined.is_empty() {
            self.merging = true;
            self.components.clear();
            if self.chain.position(me).is_none() {
                // Fresh singleton joiner.
                let r = ctx.fresh_exponent();
                let b = ctx.exp_g(&r);
                self.my_r = Some(r);
                self.chain = Chain {
                    order: vec![me],
                    leaf_bkeys: vec![Some(b)],
                    internal_bkeys: vec![None],
                };
                self.keys = vec![None; 1];
            }
            // Component sponsor: the top member.
            let top = *self
                .chain
                .order
                .last()
                .ok_or(GkaError::MissingState("empty STR component"))?;
            if top == me {
                self.publisher = true;
                self.refresh_my_leaf(ctx)?;
                let _ = self.progress(ctx)?;
                let mut key: Vec<ClientId> = self.chain.order.clone();
                key.sort_unstable();
                self.components.insert(key, self.chain.clone());
                self.broadcast(ctx);
            } else {
                // `top` came from the chain, so its position exists.
                if let Some(pos) = self.chain.position(top) {
                    self.chain.leaf_bkeys[pos] = None;
                    for i in pos..self.chain.len() {
                        self.chain.internal_bkeys[i] = None;
                    }
                }
            }
            return self.try_assemble(ctx);
        }
        Ok(())
    }

    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        _sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError> {
        let ProtocolMsg::StrTree {
            members,
            leaf_bkeys,
            internal_bkeys,
        } = msg
        else {
            return Err(GkaError::UnexpectedMessage("not an STR message"));
        };
        if members.len() != leaf_bkeys.len() || members.len() != internal_bkeys.len() {
            return Err(GkaError::Protocol("misaligned STR message"));
        }
        let incoming = Chain {
            order: members,
            leaf_bkeys,
            internal_bkeys,
        };
        let mut leafset = incoming.order.clone();
        leafset.sort_unstable();
        let mut view_sorted = self.view_members.clone();
        view_sorted.sort_unstable();

        if self.merging && leafset != view_sorted {
            self.components.insert(leafset, incoming);
            return self.try_assemble(ctx);
        }
        if leafset == view_sorted {
            if self.merging {
                // Full chain observed implies all components were in
                // the agreed prefix; adopt the structure.
                self.chain = incoming.clone();
                self.keys = vec![None; self.chain.len()];
                self.merging = false;
                self.components.clear();
            } else {
                self.adopt(&incoming)?;
            }
            if self.progress(ctx)? {
                self.broadcast(ctx);
            }
        }
        Ok(())
    }

    fn group_secret(&self) -> Option<&Ubig> {
        self.secret.as_ref().map(|s| s.expose())
    }

    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64) {
        let group = suite.group();
        let n = members.len();
        let mut chain = Chain::new();
        let mut keys: Vec<Option<Ubig>> = Vec::with_capacity(n);
        let mut k: Option<Ubig> = None;
        for (i, &m) in members.iter().enumerate() {
            let r = bootstrap_exponent(suite, seed, m);
            if m == me {
                self.my_r = Some(r.clone());
            }
            chain.order.push(m);
            chain.leaf_bkeys.push(Some(group.exp_g(&r)));
            let next = match k {
                None => r,
                Some(prev) => group.exp(&group.exp_g(&r), &prev),
            };
            chain.internal_bkeys.push(if i > 0 && i < n - 1 {
                Some(group.exp_g(&next))
            } else {
                None
            });
            keys.push(Some(next.clone()));
            k = Some(next);
        }
        // Seed the cache with every prefix key.
        self.cache.clear();
        for (i, k) in keys.iter().enumerate().skip(1) {
            if let Some(k) = k {
                let fp = chain.prefix_fingerprint(i);
                self.cache.insert(fp, k.clone());
            }
        }
        self.me = Some(me);
        self.view_members = members.to_vec();
        self.secret = keys.last().cloned().flatten().map(Secret::new);
        self.chain = chain;
        self.keys = keys;
        self.merging = false;
    }

    fn reset(&mut self) {
        *self = Str::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_agrees_across_members() {
        let suite = CryptoSuite::fast_zero();
        let members = vec![0, 1, 2, 3, 4];
        let mut secrets = Vec::new();
        for &m in &members {
            let mut p = Str::new();
            p.bootstrap(&suite, &members, m, 21);
            secrets.push(p.group_secret().unwrap().clone());
        }
        assert!(secrets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn chain_removal_preserves_lower_prefixes() {
        let mut c = Chain {
            order: vec![0, 1, 2, 3, 4],
            leaf_bkeys: (0..5).map(|i| Some(Ubig::from(100 + i as u64))).collect(),
            internal_bkeys: vec![
                None,
                Some(Ubig::from(1u64)),
                Some(Ubig::from(2u64)),
                Some(Ubig::from(3u64)),
                None,
            ],
        };
        let lowest = c.remove_members(&[2]);
        assert_eq!(lowest, 2);
        assert_eq!(c.order, vec![0, 1, 3, 4]);
        // Prefix below the removal kept its internal bkey.
        assert_eq!(c.internal_bkeys[1], Some(Ubig::from(1u64)));
        // At/above the removal: invalidated.
        assert_eq!(c.internal_bkeys[2], None);
        assert_eq!(c.internal_bkeys[3], None);
    }

    #[test]
    fn prefix_fingerprints_differ_with_content() {
        let c1 = Chain {
            order: vec![0, 1],
            leaf_bkeys: vec![Some(Ubig::from(5u64)), Some(Ubig::from(6u64))],
            internal_bkeys: vec![None, None],
        };
        let mut c2 = c1.clone();
        assert_eq!(c1.prefix_fingerprint(1), c2.prefix_fingerprint(1));
        c2.leaf_bkeys[1] = Some(Ubig::from(7u64));
        assert_ne!(c1.prefix_fingerprint(1), c2.prefix_fingerprint(1));
        assert_eq!(c1.prefix_fingerprint(0), c2.prefix_fingerprint(0));
    }
}

//! Tree-based Group Diffie–Hellman (TGDH), §4.3 of the paper.
//!
//! The group secret is the key of the root of a binary key tree whose
//! leaves are the members' session randoms; every internal node key is
//! the two-party DH agreement of its children. Each member knows the
//! keys on its own path and the blinded keys of the whole tree.
//!
//! * **Join/merge**: the sponsor of each (sub)group — its rightmost
//!   member — refreshes its session random and broadcasts its tree
//!   (round 1). Everyone independently determines the merge position;
//!   the sponsor of the subtree rooted at the merge point computes the
//!   fresh keys and blinded keys and broadcasts the tree (round 2).
//! * **Leave/partition**: everyone deletes the departed leaves; a
//!   deterministic sponsor refreshes its session random; sponsors
//!   compute as far up the tree as they can and broadcast new blinded
//!   keys, iterating until every member can compute the root (the
//!   multi-round partition protocol of Figure 6).
//!
//! Computed keys are cached by subtree fingerprint, implementing the
//! optimization the paper describes in §5 (skipping recomputation of
//! already-known blinded keys).

use std::collections::{BTreeMap, HashMap};

use gkap_bignum::Ubig;
use gkap_crypto::Secret;
use gkap_gcs::{ClientId, View};

use crate::protocols::{
    bootstrap_exponent, GkaCtx, GkaError, GkaProtocol, ProtocolKind, ProtocolMsg, SendKind,
};
use crate::suite::CryptoSuite;
use crate::tree::KeyTree;

#[derive(Clone, Debug)]
struct CacheEntry {
    key: Ubig,
    bkey: Option<Ubig>,
}

/// How the key tree is kept in shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TreePolicy {
    /// The paper's best-effort heuristic: balance on additive events
    /// only (footnote 7).
    #[default]
    Paper,
    /// AVL-style rebalancing after every membership change (the \[23\]
    /// technique footnote 7 references): shallower trees — cheaper
    /// joins and path computations — at the price of extra re-keying
    /// rounds on leave when rotations occur.
    Avl,
}

/// TGDH protocol engine for one member.
pub struct Tgdh {
    me: Option<ClientId>,
    view_members: Vec<ClientId>,
    my_r: Option<Ubig>,
    tree: KeyTree,
    /// Round-1 component trees collected during a merge, keyed by
    /// their (sorted) leaf sets.
    components: BTreeMap<Vec<ClientId>, KeyTree>,
    merging: bool,
    /// Whether this member currently publishes blinded keys (it is the
    /// event's sponsor, or became one when the lowest incomplete node
    /// fell into its subtree during a partition round).
    publisher: bool,
    /// Tree management policy.
    policy: TreePolicy,
    /// Sponsor broadcasts this member has started for the current
    /// membership event (telemetry round numbering).
    rounds_started: u32,
    /// Subtree-fingerprint cache of previously computed keys.
    cache: HashMap<[u8; 32], CacheEntry>,
    secret: Option<Secret<Ubig>>,
}

impl std::fmt::Debug for Tgdh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tgdh")
            .field("me", &self.me)
            .field("secret", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Tgdh {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Tgdh {
            me: None,
            view_members: Vec::new(),
            my_r: None,
            tree: KeyTree::new(),
            components: BTreeMap::new(),
            merging: false,
            publisher: false,
            policy: TreePolicy::Paper,
            rounds_started: 0,
            cache: HashMap::new(),
            secret: None,
        }
    }

    /// Creates an engine with AVL tree management (footnote 7).
    pub fn new_avl() -> Self {
        Tgdh {
            policy: TreePolicy::Avl,
            ..Tgdh::new()
        }
    }

    /// The current tree height (diagnostics/ablations).
    pub fn tree_height(&self) -> usize {
        if self.tree.is_empty() {
            0
        } else {
            self.tree.height(self.tree.root())
        }
    }

    fn refresh_my_leaf(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        let me = ctx.me();
        let r = ctx.fresh_exponent();
        let bkey = ctx.exp_g(&r);
        let leaf = self
            .tree
            .leaf_of(me)
            .ok_or(GkaError::MissingState("own leaf missing from tree"))?;
        self.tree.invalidate_to_root(leaf);
        self.tree.node_mut(leaf).key = Some(r.clone());
        self.tree.node_mut(leaf).bkey = Some(bkey);
        self.my_r = Some(r);
        Ok(())
    }

    /// Marks another member's refresh: its leaf bkey and path become
    /// unknown until its broadcast arrives.
    fn invalidate_member_path(&mut self, member: ClientId) {
        if let Some(leaf) = self.tree.leaf_of(member) {
            self.tree.invalidate_to_root(leaf);
        }
    }

    /// Walks from the own leaf to the root, computing keys where
    /// possible (cache first). Sponsors — the rightmost leaf under a
    /// node — also compute missing blinded keys. Returns `true` if any
    /// new blinded key was published (=> we must broadcast).
    fn progress(&mut self, ctx: &mut GkaCtx<'_>) -> Result<bool, GkaError> {
        let me = ctx.me();
        let Some(mut cur) = self.tree.leaf_of(me) else {
            return Err(GkaError::MissingState("own leaf missing from tree"));
        };
        // Sponsor determination: the rightmost leaf under the lowest
        // recomputable incomplete node takes over publication duties
        // ("if a sponsor could not compute the group key, the next
        // sponsor comes into play", §4.3).
        if !self.publisher {
            if let Some(v) = self.tree.lowest_incomplete() {
                let rl = self.tree.rightmost_leaf(v);
                if self.tree.node(rl).member == Some(me) {
                    self.publisher = true;
                }
            }
        }
        // Ensure the leaf carries our key (it can be lost when the
        // structure was adopted from a received broadcast).
        if self.tree.node(cur).key.is_none() {
            self.tree.node_mut(cur).key = self.my_r.clone();
        }
        let mut published = false;
        // Our leaf's blinded key is information only we can regenerate.
        // A cascaded view change can cut the round that would have
        // circulated it (everyone else invalidated our path when we
        // refreshed), leaving adopted trees without it — and our
        // sibling then has no way to compute our shared parent.
        // Restoring it is news the group needs: force a broadcast.
        if self.tree.node(cur).bkey.is_none() {
            if let Some(r) = self.my_r.clone() {
                let bkey = ctx.exp_g(&r);
                self.tree.node_mut(cur).bkey = Some(bkey);
                published = true;
            }
        }
        while let Some(parent) = self.tree.node(cur).parent {
            if self.tree.node(parent).key.is_none() {
                let fp = self.tree.fingerprint(parent);
                if let Some(entry) = self.cache.get(&fp) {
                    self.tree.node_mut(parent).key = Some(entry.key.clone());
                    if self.tree.node(parent).bkey.is_none() {
                        self.tree.node_mut(parent).bkey = entry.bkey.clone();
                    }
                } else {
                    let sib = self
                        .tree
                        .sibling(cur)
                        .ok_or(GkaError::MissingState("sibling of a path node"))?;
                    let Some(sib_bkey) = self.tree.node(sib).bkey.clone() else {
                        break; // cannot proceed past this point yet
                    };
                    let my_key = self
                        .tree
                        .node(cur)
                        .key
                        .clone()
                        .ok_or(GkaError::MissingState("missing key on own path"))?;
                    let key = ctx.exp(&sib_bkey, &my_key);
                    self.tree.node_mut(parent).key = Some(key.clone());
                    self.cache.insert(fp, CacheEntry { key, bkey: None });
                }
            }
            // The sponsor publishes every missing blinded key along
            // its path. The root's blinded key is never needed (it
            // would blind the group secret itself) and never published.
            if self.publisher
                && self.tree.node(parent).bkey.is_none()
                && self.tree.node(parent).parent.is_some()
            {
                if let Some(key) = self.tree.node(parent).key.clone() {
                    let bkey = ctx.exp_g(&key);
                    self.tree.node_mut(parent).bkey = Some(bkey.clone());
                    let fp = self.tree.fingerprint(parent);
                    self.cache.insert(
                        fp,
                        CacheEntry {
                            key,
                            bkey: Some(bkey),
                        },
                    );
                    published = true;
                }
            }
            cur = parent;
        }
        // Root reached with a key => group secret established — but
        // only once the tree covers the whole view (a component root
        // during a merge is not the group key).
        let root = self.tree.root();
        if cur == root && !self.merging {
            if let Some(k) = self.tree.node(root).key.clone() {
                self.secret = Some(Secret::new(k));
            }
        }
        Ok(published)
    }

    fn broadcast_tree(&mut self, ctx: &mut GkaCtx<'_>) {
        // Each sponsor broadcast is one round of the event's re-keying.
        self.rounds_started += 1;
        ctx.mark_round("TGDH", self.rounds_started);
        let msg = ProtocolMsg::TgdhTree {
            tree: self.strip_keys(),
        };
        ctx.send(SendKind::Multicast, &msg);
    }

    /// A copy of the tree with secret keys removed ("the keys are
    /// never broadcast", §4.3 footnote 4).
    fn strip_keys(&self) -> KeyTree {
        let mut t = self.tree.clone();
        t.clear_keys();
        t
    }

    /// Attempts to assemble the merged tree once all components are
    /// present.
    fn try_assemble(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        if !self.merging {
            return Ok(());
        }
        let mut covered: Vec<ClientId> = self.components.keys().flatten().copied().collect();
        covered.sort_unstable();
        let mut expected = self.view_members.clone();
        expected.sort_unstable();
        if covered != expected {
            return Ok(());
        }
        // Deterministic fold: components by (size desc, min member asc).
        let mut comps: Vec<KeyTree> = self.components.values().cloned().collect();
        comps.sort_by_key(|t| {
            let m = t.members();
            (
                std::cmp::Reverse(m.len()),
                m.iter().min().copied().unwrap_or(ClientId::MAX),
            )
        });
        let mut assembled = comps.remove(0);
        for c in comps {
            assembled.merge(&c);
        }
        if self.policy == TreePolicy::Avl {
            assembled.rebalance();
        }
        self.tree = assembled;
        let me = ctx.me();
        let leaf = self
            .tree
            .leaf_of(me)
            .ok_or(GkaError::MissingState("own leaf missing after merge"))?;
        self.tree.node_mut(leaf).key = self.my_r.clone();
        self.merging = false;
        self.components.clear();
        // Round-1 publication duty ends at assembly; the round-2
        // sponsor is chosen by the lowest-incomplete rule in progress.
        self.publisher = false;
        if self.progress(ctx)? {
            self.broadcast_tree(ctx);
        }
        Ok(())
    }

    /// Begins a merge: broadcast our component if we sponsor it.
    fn start_merge(&mut self, ctx: &mut GkaCtx<'_>) -> Result<(), GkaError> {
        let me = ctx.me();
        self.merging = true;
        self.components.clear();
        if self.tree.is_empty() || self.tree.leaf_of(me).is_none() {
            // Fresh singleton joiner.
            let r = ctx.fresh_exponent();
            let bkey = ctx.exp_g(&r);
            self.my_r = Some(r.clone());
            self.tree = KeyTree::singleton(me, Some(r), Some(bkey));
        }
        let sponsor_leaf = self.tree.rightmost_leaf(self.tree.root());
        if self.tree.node(sponsor_leaf).member == Some(me) {
            // We sponsor our component: refresh, recompute our path
            // (keys + blinded keys) and broadcast.
            self.publisher = true;
            self.refresh_my_leaf(ctx)?;
            let _ = self.progress(ctx)?;
            let mut key = self.tree.members();
            key.sort_unstable();
            self.components.insert(key, self.strip_keys());
            self.broadcast_tree(ctx);
        } else {
            // Our sponsor refreshed; its path is stale for us until
            // its broadcast arrives. We rely on the broadcast copy of
            // our own component, so nothing to do here.
            let sponsor = self
                .tree
                .node(sponsor_leaf)
                .member
                .ok_or(GkaError::MissingState("rightmost node is not a leaf"))?;
            self.invalidate_member_path(sponsor);
        }
        self.try_assemble(ctx)
    }
}

impl Default for Tgdh {
    fn default() -> Self {
        Tgdh::new()
    }
}

impl GkaProtocol for Tgdh {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Tgdh
    }

    fn on_view(&mut self, ctx: &mut GkaCtx<'_>, view: &View) -> Result<(), GkaError> {
        let me = ctx.me();
        self.me = Some(me);
        self.view_members = view.members.clone();
        self.secret = None;
        self.publisher = false;
        self.rounds_started = 0;

        if !view.left.is_empty() && !self.tree.is_empty() {
            self.tree.remove_members(&view.left);
            if self.policy == TreePolicy::Avl && !self.tree.is_empty() {
                self.tree.rebalance();
            }
        }

        if !view.joined.is_empty() {
            return self.start_merge(ctx);
        }

        // Pure leave / partition.
        if view.members.len() == 1 {
            // Only we remain; the (never-shared) leaf key is the secret.
            let r = self
                .my_r
                .clone()
                .ok_or(GkaError::MissingState("no session random"))?;
            self.secret = Some(Secret::new(r));
            return Ok(());
        }
        // Deterministic refresher: the sponsor (rightmost leaf) of the
        // lowest recomputable wound refreshes its session random to
        // prevent old-key reuse (round 1 of Figure 6).
        let anchor = self
            .tree
            .lowest_incomplete()
            .ok_or(GkaError::MissingState("leave without an affected node"))?;
        let refresher_leaf = self.tree.rightmost_leaf(anchor);
        let refresher = self
            .tree
            .node(refresher_leaf)
            .member
            .ok_or(GkaError::MissingState("rightmost node is not a leaf"))?;
        if refresher == me {
            // Our refreshed leaf blinded key is itself news the group
            // needs: broadcast regardless of internal publications.
            self.publisher = true;
            self.refresh_my_leaf(ctx)?;
            let _ = self.progress(ctx)?;
            self.broadcast_tree(ctx);
        } else {
            self.invalidate_member_path(refresher);
            if self.progress(ctx)? {
                self.broadcast_tree(ctx);
            }
        }
        Ok(())
    }

    fn on_msg(
        &mut self,
        ctx: &mut GkaCtx<'_>,
        _sender: ClientId,
        msg: ProtocolMsg,
    ) -> Result<(), GkaError> {
        let ProtocolMsg::TgdhTree { tree } = msg else {
            return Err(GkaError::UnexpectedMessage("not a TGDH message"));
        };
        let mut leafset = tree.members();
        leafset.sort_unstable();
        let mut view_sorted = self.view_members.clone();
        view_sorted.sort_unstable();

        if self.merging && leafset != view_sorted {
            self.components.insert(leafset, tree);
            return self.try_assemble(ctx);
        }
        if leafset == view_sorted {
            if self.merging {
                // A full-tree broadcast implies every component was
                // already visible in the agreed order; adopt the
                // structure wholesale.
                self.tree = tree.clone();
                let me = ctx.me();
                let leaf = self
                    .tree
                    .leaf_of(me)
                    .ok_or(GkaError::MissingState("own leaf missing in adopted tree"))?;
                self.tree.node_mut(leaf).key = self.my_r.clone();
                self.merging = false;
                self.components.clear();
            } else {
                self.tree.adopt_bkeys(&tree);
            }
            if self.progress(ctx)? {
                self.broadcast_tree(ctx);
            }
            return Ok(());
        }
        // A component tree while not merging: stale or early; ignore
        // (epoch filtering upstream makes this rare).
        Ok(())
    }

    fn group_secret(&self) -> Option<&Ubig> {
        self.secret.as_ref().map(|s| s.expose())
    }

    fn bootstrap(&mut self, suite: &CryptoSuite, members: &[ClientId], me: ClientId, seed: u64) {
        // Build the deterministic tree and compute every key directly
        // (bootstrap knows all session randoms).
        let group = suite.group();
        let mut tree = KeyTree::new();
        for &m in members {
            let r = bootstrap_exponent(suite, seed, m);
            let bk = group.exp_g(&r);
            let leaf = KeyTree::singleton(m, Some(r.clone()), Some(bk));
            if tree.is_empty() {
                tree = leaf;
            } else {
                tree.merge(&leaf);
            }
            if m == me {
                self.my_r = Some(r);
            }
        }
        // Fill every internal key bottom-up. Bootstrap trees always
        // carry leaf bkeys and two children per internal node, so the
        // `None` arms are unreachable; they degrade to a missing
        // secret (surfaced as a GkaError later) instead of a panic.
        fn fill(tree: &mut KeyTree, idx: usize, group: &gkap_crypto::dh::DhGroup) -> Option<Ubig> {
            if let Some(k) = tree.node(idx).key.clone() {
                return Some(k);
            }
            let (l, r) = tree.node(idx).children?;
            let _ = fill(tree, l, group)?;
            let rk = fill(tree, r, group)?;
            let l_bk = tree.node(l).bkey.clone()?;
            let key = group.exp(&l_bk, &rk);
            let bkey = group.exp_g(&key);
            tree.node_mut(idx).key = Some(key.clone());
            tree.node_mut(idx).bkey = Some(bkey);
            Some(key)
        }
        let root = tree.root();
        let secret = fill(&mut tree, root, group);
        // Cache every computed subtree key so later events reuse them.
        self.cache.clear();
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            if let Some((l, r)) = tree.node(i).children {
                stack.push(l);
                stack.push(r);
            }
            if let (Some(k), bk) = (tree.node(i).key.clone(), tree.node(i).bkey.clone()) {
                let fp = tree.fingerprint(i);
                self.cache.insert(fp, CacheEntry { key: k, bkey: bk });
            }
        }
        // Members only know their own path keys; drop others for
        // hygiene (they would never be used — `progress` walks only
        // the own path — but keep the state honest).
        self.me = Some(me);
        self.view_members = members.to_vec();
        self.tree = tree;
        self.secret = secret.map(Secret::new);
        self.merging = false;
        self.components.clear();
    }

    fn reset(&mut self) {
        *self = Tgdh {
            policy: self.policy,
            ..Tgdh::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_agrees_across_members() {
        let suite = CryptoSuite::fast_zero();
        let members = vec![0, 1, 2, 3, 4, 5, 6];
        let mut secrets = Vec::new();
        for &m in &members {
            let mut p = Tgdh::new();
            p.bootstrap(&suite, &members, m, 77);
            secrets.push(p.group_secret().unwrap().clone());
        }
        assert!(secrets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn bootstrap_tree_is_consistent() {
        let suite = CryptoSuite::fast_zero();
        let members = vec![10, 20, 30, 40];
        let mut p = Tgdh::new();
        p.bootstrap(&suite, &members, 10, 3);
        assert_eq!(p.tree.members(), members);
        // Root bkey blinds the root key.
        let root = p.tree.root();
        let k = p.tree.node(root).key.clone().unwrap();
        let bk = p.tree.node(root).bkey.clone().unwrap();
        assert_eq!(suite.group().exp_g(&k), bk);
    }
}

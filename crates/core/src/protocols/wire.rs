//! Wire format of the protocol messages (the bodies carried inside
//! signed envelopes).

use bytes::Bytes;
use gkap_bignum::Ubig;
use gkap_gcs::ClientId;

use crate::codec::{Dec, DecodeError, Enc};
use crate::tree::KeyTree;

/// Every message any of the five protocols sends.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolMsg {
    /// GDH: the accumulating key token travelling down the chain of
    /// new members.
    GdhChainToken {
        /// `g^{(product of contributions so far)}`.
        token: Ubig,
    },
    /// GDH: the last new member's broadcast of the accumulated token.
    GdhBroadcastToken {
        /// The token every member factors its contribution out of.
        token: Ubig,
    },
    /// GDH: a member's factored-out value, unicast to the new
    /// controller (Agreed-ordered — the expensive round of §6.2.2).
    GdhFactorOut {
        /// `token^(1/r_member)`.
        value: Ubig,
    },
    /// GDH: the controller's final list of partial keys.
    GdhPartialKeys {
        /// `(member, partial key)` pairs; each member exponentiates its
        /// own entry with its contribution to obtain the group secret.
        entries: Vec<(ClientId, Ubig)>,
    },
    /// CKD: controller's invitation carrying its fresh DH public value.
    CkdInvite {
        /// `g^{x_controller}`.
        controller_pub: Ubig,
        /// Members expected to respond with their public values.
        invited: Vec<ClientId>,
    },
    /// CKD: a (new) member's DH public value, returned to the
    /// controller over the cheap FIFO channel.
    CkdResponse {
        /// `g^{x_member}`.
        member_pub: Ubig,
    },
    /// CKD: the controller's key distribution — the group secret
    /// encrypted separately under each member's pairwise key.
    CkdKeyDist {
        /// Fresh `g^{x_controller}` so members can derive the pairwise
        /// key without extra rounds.
        controller_pub: Ubig,
        /// `(member, ciphertext)` pairs.
        blobs: Vec<(ClientId, Vec<u8>)>,
    },
    /// BD round 1: `z_i = g^{r_i}`.
    BdRound1 {
        /// The member's blinded session random.
        z: Ubig,
    },
    /// BD round 2: `X_i = (z_{i+1}/z_{i-1})^{r_i}`.
    BdRound2 {
        /// The member's cross-ratio value.
        x: Ubig,
    },
    /// TGDH: a (partial) key tree with blinded keys — used for the
    /// round-1 component announcements, the sponsor's round-2 tree,
    /// and each round of the partition protocol.
    TgdhTree {
        /// Structure plus every blinded key the sender knows.
        tree: KeyTree,
    },
    /// Key confirmation (§5: "a form of key confirmation"): a hash of
    /// the established group key, broadcast after completion so any
    /// divergence is detected immediately. Handled by the member
    /// layer, not the protocols.
    KeyConfirm {
        /// `SHA-256("confirm" ‖ epoch ‖ key)`.
        digest: Vec<u8>,
    },
    /// STR: the skinny tree — ordered member list with leaf and
    /// internal blinded keys.
    StrTree {
        /// Members from the bottom of the tree upwards.
        members: Vec<ClientId>,
        /// Blinded session randoms (aligned with `members`).
        leaf_bkeys: Vec<Option<Ubig>>,
        /// Blinded internal keys (`internal_bkeys[i]` blinds the key of
        /// the internal node joining levels `i` and `i+1`; index 0 is
        /// unused padding to keep alignment).
        internal_bkeys: Vec<Option<Ubig>>,
    },
}

impl ProtocolMsg {
    fn tag(&self) -> u8 {
        match self {
            ProtocolMsg::GdhChainToken { .. } => 1,
            ProtocolMsg::GdhBroadcastToken { .. } => 2,
            ProtocolMsg::GdhFactorOut { .. } => 3,
            ProtocolMsg::GdhPartialKeys { .. } => 4,
            ProtocolMsg::CkdInvite { .. } => 5,
            ProtocolMsg::CkdResponse { .. } => 6,
            ProtocolMsg::CkdKeyDist { .. } => 7,
            ProtocolMsg::BdRound1 { .. } => 8,
            ProtocolMsg::BdRound2 { .. } => 9,
            ProtocolMsg::TgdhTree { .. } => 10,
            ProtocolMsg::StrTree { .. } => 11,
            ProtocolMsg::KeyConfirm { .. } => 12,
        }
    }

    /// Serializes the message body.
    pub fn encode(&self) -> Bytes {
        let mut e = Enc::new();
        e.u8(self.tag());
        match self {
            ProtocolMsg::GdhChainToken { token } | ProtocolMsg::GdhBroadcastToken { token } => {
                e.ubig(token);
            }
            ProtocolMsg::GdhFactorOut { value } => {
                e.ubig(value);
            }
            ProtocolMsg::GdhPartialKeys { entries } => {
                e.u32(entries.len() as u32);
                for (m, k) in entries {
                    e.u32(*m as u32).ubig(k);
                }
            }
            ProtocolMsg::CkdInvite {
                controller_pub,
                invited,
            } => {
                e.ubig(controller_pub);
                e.u32(invited.len() as u32);
                for m in invited {
                    e.u32(*m as u32);
                }
            }
            ProtocolMsg::CkdResponse { member_pub } => {
                e.ubig(member_pub);
            }
            ProtocolMsg::CkdKeyDist {
                controller_pub,
                blobs,
            } => {
                e.ubig(controller_pub);
                e.u32(blobs.len() as u32);
                for (m, blob) in blobs {
                    e.u32(*m as u32).bytes(blob);
                }
            }
            ProtocolMsg::BdRound1 { z } => {
                e.ubig(z);
            }
            ProtocolMsg::BdRound2 { x } => {
                e.ubig(x);
            }
            ProtocolMsg::TgdhTree { tree } => {
                tree.encode(&mut e);
            }
            ProtocolMsg::KeyConfirm { digest } => {
                e.bytes(digest);
            }
            ProtocolMsg::StrTree {
                members,
                leaf_bkeys,
                internal_bkeys,
            } => {
                e.u32(members.len() as u32);
                for m in members {
                    e.u32(*m as u32);
                }
                for list in [leaf_bkeys, internal_bkeys] {
                    e.u32(list.len() as u32);
                    for bk in list {
                        match bk {
                            Some(v) => {
                                e.u8(1).ubig(v);
                            }
                            None => {
                                e.u8(0);
                            }
                        }
                    }
                }
            }
        }
        e.finish()
    }

    /// Parses a message body.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(wire: &[u8]) -> Result<ProtocolMsg, DecodeError> {
        let mut d = Dec::new(wire);
        let tag = d.u8("message tag")?;
        let msg = match tag {
            1 => ProtocolMsg::GdhChainToken {
                token: d.ubig("token")?,
            },
            2 => ProtocolMsg::GdhBroadcastToken {
                token: d.ubig("token")?,
            },
            3 => ProtocolMsg::GdhFactorOut {
                value: d.ubig("factor-out")?,
            },
            4 => {
                let n = d.u32("entry count")? as usize;
                if n > 1_000_000 {
                    return Err(DecodeError {
                        context: "entry count",
                    });
                }
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let m = d.u32("entry member")? as ClientId;
                    let k = d.ubig("entry key")?;
                    entries.push((m, k));
                }
                ProtocolMsg::GdhPartialKeys { entries }
            }
            5 => {
                let controller_pub = d.ubig("controller pub")?;
                let k = d.u32("invited count")? as usize;
                if k > 1_000_000 {
                    return Err(DecodeError {
                        context: "invited count",
                    });
                }
                let mut invited = Vec::with_capacity(k.min(1024));
                for _ in 0..k {
                    invited.push(d.u32("invited member")? as ClientId);
                }
                ProtocolMsg::CkdInvite {
                    controller_pub,
                    invited,
                }
            }
            6 => ProtocolMsg::CkdResponse {
                member_pub: d.ubig("member pub")?,
            },
            7 => {
                let controller_pub = d.ubig("controller pub")?;
                let n = d.u32("blob count")? as usize;
                if n > 1_000_000 {
                    return Err(DecodeError {
                        context: "blob count",
                    });
                }
                let mut blobs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let m = d.u32("blob member")? as ClientId;
                    let b = d.bytes("blob")?.to_vec();
                    blobs.push((m, b));
                }
                ProtocolMsg::CkdKeyDist {
                    controller_pub,
                    blobs,
                }
            }
            8 => ProtocolMsg::BdRound1 { z: d.ubig("z")? },
            9 => ProtocolMsg::BdRound2 { x: d.ubig("x")? },
            10 => ProtocolMsg::TgdhTree {
                tree: KeyTree::decode(&mut d)?,
            },
            12 => ProtocolMsg::KeyConfirm {
                digest: d.bytes("confirm digest")?.to_vec(),
            },
            11 => {
                let n = d.u32("member count")? as usize;
                if n > 1_000_000 {
                    return Err(DecodeError {
                        context: "member count",
                    });
                }
                let mut members = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    members.push(d.u32("member")? as ClientId);
                }
                let mut lists: [Vec<Option<Ubig>>; 2] = [Vec::new(), Vec::new()];
                for list in &mut lists {
                    let len = d.u32("bkey list len")? as usize;
                    if len > 1_000_000 {
                        return Err(DecodeError {
                            context: "bkey list len",
                        });
                    }
                    for _ in 0..len {
                        let flag = d.u8("bkey flag")?;
                        list.push(if flag == 1 {
                            Some(d.ubig("bkey")?)
                        } else {
                            None
                        });
                    }
                }
                let [leaf_bkeys, internal_bkeys] = lists;
                ProtocolMsg::StrTree {
                    members,
                    leaf_bkeys,
                    internal_bkeys,
                }
            }
            _ => {
                return Err(DecodeError {
                    context: "message tag",
                })
            }
        };
        d.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn roundtrip_every_variant() {
        let mut tree = KeyTree::singleton(3, None, Some(u(7)));
        tree.merge(&KeyTree::singleton(4, None, Some(u(8))));
        let msgs = vec![
            ProtocolMsg::GdhChainToken { token: u(11) },
            ProtocolMsg::GdhBroadcastToken { token: u(12) },
            ProtocolMsg::GdhFactorOut { value: u(13) },
            ProtocolMsg::GdhPartialKeys {
                entries: vec![(1, u(14)), (2, u(15))],
            },
            ProtocolMsg::CkdInvite {
                controller_pub: u(16),
                invited: vec![2, 4],
            },
            ProtocolMsg::CkdResponse { member_pub: u(17) },
            ProtocolMsg::CkdKeyDist {
                controller_pub: u(18),
                blobs: vec![(1, vec![1, 2, 3]), (9, vec![])],
            },
            ProtocolMsg::BdRound1 { z: u(19) },
            ProtocolMsg::BdRound2 { x: u(20) },
            ProtocolMsg::KeyConfirm {
                digest: vec![9; 32],
            },
            ProtocolMsg::TgdhTree { tree },
            ProtocolMsg::StrTree {
                members: vec![5, 6, 7],
                leaf_bkeys: vec![Some(u(1)), None, Some(u(2))],
                internal_bkeys: vec![None, Some(u(3)), None],
            },
        ];
        for msg in msgs {
            let wire = msg.encode();
            let back = ProtocolMsg::decode(&wire).unwrap();
            // KeyTree equality compares arenas; compare re-encoded wire
            // instead for robustness.
            assert_eq!(back.encode(), wire);
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_truncation() {
        assert!(ProtocolMsg::decode(&[99]).is_err());
        assert!(ProtocolMsg::decode(&[]).is_err());
        let wire = ProtocolMsg::GdhChainToken { token: u(5) }.encode();
        assert!(ProtocolMsg::decode(&wire[..wire.len() - 1]).is_err());
        // Trailing garbage.
        let mut extended = wire.to_vec();
        extended.push(0);
        assert!(ProtocolMsg::decode(&extended).is_err());
    }

    #[test]
    fn absurd_counts_rejected() {
        // tag 4 with a huge claimed count must fail fast, not OOM.
        let mut e = Enc::new();
        e.u8(4).u32(u32::MAX);
        assert!(ProtocolMsg::decode(&e.finish()).is_err());
    }
}

//! The multi-group scale workload: N independent groups, each on its
//! own replica of the simulated daemon ring, driven by a
//! deterministic churn schedule whose events are coalesced by the
//! [`crate::batch::EventBatcher`] into one cascaded agreement round
//! per group and window.
//!
//! ## Sharded execution
//!
//! Groups never exchange messages, so the scale workload pins the
//! finest-grained decomposition the interaction graph allows: every
//! group is simulated as a pure function of `(group, seed, config)`
//! on its own token ring, and [`run_sharded`] partitions groups
//! across shards (round-robin, [`gkap_gcs::ShardMap`] discipline) and
//! shards across worker threads. Because no simulated event ever
//! crosses a group boundary, `--shards` and `--jobs` are pure
//! execution knobs: the canonical group-ascending fold in
//! [`assemble`] makes every observable quantity — counts, latency
//! vectors, kernel ops, metrics, telemetry — bit-identical for any
//! `shards x jobs` combination, by construction rather than by luck.
//!
//! Everything here is a pure function of the [`ScaleConfig`]: the
//! schedule derives from per-group `SplitMix64` streams, batching is
//! deterministic, and each group's world is a deterministic
//! discrete-event simulation — so two runs with the same seed (on any
//! `--jobs`/`--shards` setting) produce identical results byte for
//! byte.

use std::collections::BTreeMap;
use std::rc::Rc;

use gkap_bignum::stats::KernelOps;
use gkap_gcs::{ClientId, GcsConfig, GroupId, SimWorld};
use gkap_sim::{Duration, RandomSource, SimTime, SplitMix64};
use gkap_telemetry::metrics::{Key, Layer, MetricsHub};
use gkap_telemetry::{Actor, Event, EventKind, Telemetry};

use crate::batch::{ChurnEvent, ChurnKind, EventBatcher, MembershipBatch};
use crate::experiment::SuiteKind;
use crate::member::SecureMember;
use crate::par;
use crate::protocols::ProtocolKind;

/// Configuration of one scale run (one protocol, N groups).
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// The protocol every group runs.
    pub protocol: ProtocolKind,
    /// Number of independent groups sharing the ring.
    pub groups: usize,
    /// Initial members per group.
    pub group_size: usize,
    /// Expected churn events per group over the horizon (fractional:
    /// `0.05` gives each group a 5% chance of one event).
    pub churn: f64,
    /// Batching window: joins/leaves of one group arriving within
    /// this much virtual time coalesce into one agreement round.
    /// Zero disables batching (one event per round).
    pub window: Duration,
    /// Virtual-time span over which churn events are scheduled.
    pub horizon: Duration,
    /// Seed for the schedule and all member randomness.
    pub seed: u64,
    /// Crypto suite (shared across all groups via the per-thread
    /// suite cache).
    pub suite: SuiteKind,
    /// Testbed topology and GCS parameters.
    pub gcs: GcsConfig,
    /// Whether to capture a telemetry trace (batching vs transport vs
    /// agreement attribution).
    pub telemetry: bool,
}

impl ScaleConfig {
    /// LAN testbed defaults: 3-member groups, a 5 ms batching window,
    /// a 10 s scheduling horizon, 512-bit suite.
    pub fn lan(protocol: ProtocolKind, groups: usize) -> Self {
        ScaleConfig {
            protocol,
            groups,
            group_size: 3,
            churn: 0.1,
            window: Duration::from_millis(5),
            horizon: Duration::from_millis(10_000),
            seed: 7,
            suite: SuiteKind::Sim512,
            gcs: gkap_gcs::testbed::lan(),
            telemetry: false,
        }
    }
}

/// A generated churn schedule plus the client layout it implies.
#[derive(Clone, Debug)]
pub struct ScaleSchedule {
    /// Every churn event, sorted by (instant, group).
    pub events: Vec<ChurnEvent>,
    /// Group of every client id (base members and spares).
    pub client_group: Vec<GroupId>,
    /// Initial members per group.
    pub group_size: usize,
}

impl ScaleSchedule {
    /// Total clients the world needs (base members plus join spares).
    pub fn total_clients(&self) -> usize {
        self.client_group.len()
    }

    /// The base (initial) members of a group.
    pub fn base_members(&self, group: GroupId) -> Vec<ClientId> {
        (group * self.group_size..(group + 1) * self.group_size).collect()
    }
}

/// Uniform draw in `[0, 1)` from 53 random bits.
fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates the deterministic churn schedule for a config. Group `g`
/// owns client ids `[g*size, (g+1)*size)`; joins admit fresh spare
/// clients allocated after all base blocks, in group order. Leaves
/// target a pseudo-random current member but never shrink a group
/// below two members (every protocol needs a peer).
pub fn generate_schedule(cfg: &ScaleConfig) -> ScaleSchedule {
    let base_total = cfg.groups * cfg.group_size;
    let mut client_group: Vec<GroupId> = (0..base_total).map(|i| i / cfg.group_size).collect();
    let mut next_spare = base_total;
    let mut events: Vec<ChurnEvent> = Vec::new();
    for g in 0..cfg.groups {
        let mut rng =
            SplitMix64::new(cfg.seed ^ ((g as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let whole = cfg.churn.floor() as usize;
        let frac = cfg.churn - cfg.churn.floor();
        let count = whole + usize::from(unit(&mut rng) < frac);
        let mut times: Vec<u64> = (0..count)
            .map(|_| rng.next_u64() % cfg.horizon.as_nanos().max(1))
            .collect();
        times.sort_unstable();
        let mut members: Vec<ClientId> = (g * cfg.group_size..(g + 1) * cfg.group_size).collect();
        for t in times {
            let leave = members.len() > 2 && rng.next_u64() & 1 == 1;
            let kind = if leave {
                let idx = (rng.next_u64() % members.len() as u64) as usize;
                ChurnKind::Leave(members.remove(idx))
            } else {
                let c = next_spare;
                next_spare += 1;
                client_group.push(g);
                members.push(c);
                ChurnKind::Join(c)
            };
            events.push(ChurnEvent {
                at: Duration::from_nanos(t),
                group: g,
                kind,
            });
        }
    }
    events.sort_by_key(|e| (e.at, e.group));
    ScaleSchedule {
        events,
        client_group,
        group_size: cfg.group_size,
    }
}

/// The outcome of one scale run.
#[derive(Clone, Debug)]
pub struct ScaleRun {
    /// Raw churn events in the schedule (before batching).
    pub raw_events: usize,
    /// Batches injected (agreement rounds requested).
    pub batches: usize,
    /// Rekeys that completed: every member of the new view obtained
    /// the key of that exact epoch.
    pub rekeys: usize,
    /// Batches whose epoch was superseded by a cascaded later batch
    /// before every member finished (their key arrives with the next
    /// completed epoch instead).
    pub superseded: usize,
    /// Virtual time from the end of group formation to full drain.
    pub elapsed: Duration,
    /// Per completed rekey: injection → last member keyed, ms.
    pub rekey_ms: Vec<f64>,
    /// Per raw event: arrival → batch flush, ms (time spent waiting
    /// in the batcher).
    pub batch_wait_ms: Vec<f64>,
    /// Per completed rekey: injection → last view delivery, ms (the
    /// membership/transport share).
    pub transport_ms: Vec<f64>,
    /// Per completed rekey: last view delivery → last key, ms (the
    /// key-agreement share).
    pub agreement_ms: Vec<f64>,
    /// Every group ends keyed and error-free.
    pub ok: bool,
    /// Captured telemetry (empty unless [`ScaleConfig::telemetry`]).
    pub events: Vec<Event>,
    /// Bignum kernel invocations the run performed (exact: the world
    /// runs to completion on one thread, bracketed by
    /// [`gkap_bignum::stats::take`]).
    pub kernel_ops: KernelOps,
    /// Typed metrics captured during the run (always populated: the
    /// workload's own spans are recorded even when event telemetry is
    /// off, so every `repro scale` invocation can write a manifest).
    pub hub: MetricsHub,
}

impl ScaleRun {
    /// Schedule events per virtual second of measured run time.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_nanos() as f64 / 1e9;
        if secs > 0.0 {
            self.raw_events as f64 / secs
        } else {
            0.0
        }
    }
}

/// Exact percentile of a sample set (nearest-rank): `q` in `[0, 1]`.
/// Returns 0 for an empty set.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the full pipeline: generate the schedule, coalesce it with
/// the configured window, drive every group's world serially.
pub fn run(cfg: &ScaleConfig) -> ScaleRun {
    run_sharded(cfg, 1, 1)
}

/// Runs the full pipeline with groups partitioned over `shards`
/// independent rings and shards fanned out over `jobs` worker
/// threads. The result is bit-identical for every `shards x jobs`
/// combination: groups never interact, each is a pure function of
/// `(group, seed, config)`, and [`assemble`] folds the per-group
/// outcomes in canonical group-ascending order.
pub fn run_sharded(cfg: &ScaleConfig, shards: usize, jobs: usize) -> ScaleRun {
    let schedule = generate_schedule(cfg);
    let batches = EventBatcher::new(cfg.window).coalesce(&schedule.events);
    let cells = par::run_indexed(jobs, shards.max(1), |s| {
        run_shard(cfg, &schedule, &batches, shards.max(1), s)
    });
    assemble(
        cfg,
        &schedule,
        &batches,
        cells.into_iter().flatten().collect(),
    )
}

/// Drives a pre-batched schedule on one shard (serially, groups in
/// ascending order) and folds the outcomes. Exposed separately so
/// tests can compare a window-0 batched run against a hand-built
/// one-batch-per-event run on identical inputs.
pub fn run_with_batches(
    cfg: &ScaleConfig,
    schedule: &ScaleSchedule,
    batches: &[MembershipBatch],
) -> ScaleRun {
    let outcomes = run_shard(cfg, schedule, batches, 1, 0);
    assemble(cfg, schedule, batches, outcomes)
}

/// Everything one group's simulation produced, on its own ring. A
/// pure function of `(group, seed, config)`: no other group's
/// schedule, no shard assignment, and no thread scheduling can move a
/// single nanosecond in here.
#[derive(Clone, Debug)]
pub struct GroupOutcome {
    /// The group simulated.
    pub group: GroupId,
    /// The group's bootstrap-quiescence instant on its own ring; batch
    /// flush offsets are measured from here.
    pub t0: SimTime,
    /// Virtual time from bootstrap quiescence to full drain.
    pub elapsed: Duration,
    /// Rekeys that completed (see [`ScaleRun::rekeys`]).
    pub rekeys: usize,
    /// Batches superseded by a cascaded later batch.
    pub superseded: usize,
    /// Per completed rekey: injection → last member keyed, ms.
    pub rekey_ms: Vec<f64>,
    /// Per completed rekey: injection → last view delivery, ms.
    pub transport_ms: Vec<f64>,
    /// Per completed rekey: last view delivery → last key, ms.
    pub agreement_ms: Vec<f64>,
    /// The group ends keyed and error-free.
    pub ok: bool,
    /// Bignum kernel invocations this group's run performed.
    pub kernel_ops: KernelOps,
    /// The group's typed metrics (empty unless telemetry is on).
    pub hub: MetricsHub,
    /// The group's telemetry events (empty unless telemetry is on).
    /// Client ids in engine-level events are group-local.
    pub events: Vec<Event>,
}

/// Runs every group of one shard (round-robin partition:
/// `group % shards == shard`), serially, in ascending group order.
/// Worker threads run disjoint shards; the per-group outcomes are
/// identical no matter which thread (or how many shards) ran them.
pub fn run_shard(
    cfg: &ScaleConfig,
    schedule: &ScaleSchedule,
    batches: &[MembershipBatch],
    shards: usize,
    shard: usize,
) -> Vec<GroupOutcome> {
    assert!(shards > 0, "at least one shard required");
    assert!(shard < shards, "shard {shard} out of range ({shards})");
    // Group → its clients (ascending: index order of `client_group`)
    // and group → its batches (ascending flush order: `batches` is
    // sorted by `(flush_at, group)` and filtering preserves it).
    let mut group_clients: Vec<Vec<ClientId>> = vec![Vec::new(); cfg.groups];
    for (c, &g) in schedule.client_group.iter().enumerate() {
        if g < cfg.groups {
            group_clients[g].push(c);
        }
    }
    let mut group_batches: Vec<Vec<&MembershipBatch>> = vec![Vec::new(); cfg.groups];
    for b in batches {
        if b.group < cfg.groups {
            group_batches[b.group].push(b);
        }
    }
    (0..cfg.groups)
        .filter(|g| g % shards == shard)
        .map(|g| run_group(cfg, g, &group_clients[g], &group_batches[g]))
        .collect()
}

/// Simulates one group on a fresh replica of the testbed ring.
///
/// Determinism anchors: member seeds key off *global* client ids,
/// the bootstrap seed off the global group id, and machine placement
/// is `global_id % machines` — exactly the layout the single-world
/// engine used, so a member's compute and contention profile does not
/// depend on how groups are partitioned.
fn run_group(
    cfg: &ScaleConfig,
    group: GroupId,
    clients: &[ClientId],
    batches: &[&MembershipBatch],
) -> GroupOutcome {
    // Warm the per-thread suite cache BEFORE bracketing kernel ops:
    // building a suite precomputes fixed-base tables and Montgomery
    // contexts, and whether this thread already paid that cost depends
    // on scheduling (`--jobs`), not on the group being measured.
    let suite = cfg.suite.shared();
    let kernel_before = gkap_bignum::stats::snapshot();
    let telemetry = if cfg.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut world = SimWorld::new(cfg.gcs.clone());
    world.set_telemetry(telemetry.clone());
    let machines = cfg.gcs.topology.machine_count();
    for &c in clients {
        let mut member = SecureMember::new(
            cfg.protocol,
            Rc::clone(&suite),
            cfg.seed ^ ((c as u64 + 1).wrapping_mul(0x9e37_79b9)),
            // Per-group bootstrap seed: groups start keyed, with
            // distinct keys.
            Some(cfg.seed ^ ((group as u64 + 1).wrapping_mul(0xa5a5_a5a5))),
        );
        member.set_telemetry(telemetry.clone());
        world.add_client_on(Box::new(member), c % machines);
    }
    // Global → group-local client ids (rank in the ascending list).
    let local = |c: ClientId| clients.binary_search(&c).ok();
    let to_local = |ids: &[ClientId]| ids.iter().filter_map(|&c| local(c)).collect::<Vec<_>>();
    let base: Vec<ClientId> = (group * cfg.group_size..(group + 1) * cfg.group_size)
        .filter_map(local)
        .collect();
    world.install_initial_view_in(group, base);
    world.run_until_quiescent();
    let t0 = world.now();

    // Inject this group's batches at their flush instants.
    let mut injected_at: Vec<SimTime> = Vec::with_capacity(batches.len());
    for batch in batches {
        world.run_until(t0 + batch.flush_at);
        let at = world.now();
        world.inject_change_in(group, to_local(&batch.joined), to_local(&batch.left));
        injected_at.push(at);
    }
    world.run_until_quiescent();
    let elapsed = world.now().since(t0);

    let mut out = GroupOutcome {
        group,
        t0,
        elapsed,
        rekeys: 0,
        superseded: 0,
        rekey_ms: Vec::new(),
        transport_ms: Vec::new(),
        agreement_ms: Vec::new(),
        ok: true,
        kernel_ops: KernelOps::default(),
        hub: MetricsHub::new(),
        events: Vec::new(),
    };

    // Attribute each batch to the view it produced: the group's k-th
    // injected batch is its (k+1)-th view (index 0 is the bootstrap).
    let views = world.views_of(group);
    for (k, at) in injected_at.iter().enumerate() {
        let Some(view) = views.get(k + 1) else {
            out.superseded += 1;
            continue;
        };
        let mut last_view = SimTime::ZERO;
        let mut last_key = SimTime::ZERO;
        let mut complete = true;
        for &m in &view.members {
            let member = world.client::<SecureMember>(m);
            match member.completion(view.id) {
                Some(t) => last_key = last_key.max(t),
                None => complete = false,
            }
            if let Some(t) = member.view_time(view.id) {
                last_view = last_view.max(t);
            }
        }
        if !complete {
            out.superseded += 1;
            continue;
        }
        out.rekeys += 1;
        out.rekey_ms.push(last_key.since(*at).as_millis_f64());
        out.transport_ms.push(last_view.since(*at).as_millis_f64());
        out.agreement_ms
            .push(last_key.since(last_view).as_millis_f64());
        let group_size = view.members.len();
        telemetry.record(|| Event {
            at: *at,
            dur: last_view.since(*at),
            actor: Actor::World,
            kind: EventKind::MembershipEvent {
                action: "transport",
                group_size,
            },
        });
        telemetry.record(|| Event {
            at: last_view,
            dur: last_key.since(last_view),
            actor: Actor::World,
            kind: EventKind::MembershipEvent {
                action: "agreement",
                group_size,
            },
        });
    }

    // The group must end keyed and error-free.
    match views.last() {
        Some(view) => {
            for &m in &view.members {
                let member = world.client::<SecureMember>(m);
                if member.completion(view.id).is_none() || member.protocol_error().is_some() {
                    out.ok = false;
                }
            }
        }
        None => out.ok = false,
    }
    out.kernel_ops = gkap_bignum::stats::snapshot().since(&kernel_before);
    out.hub = telemetry.hub_snapshot();
    out.events = telemetry.events();
    out
}

/// Folds per-group outcomes into one [`ScaleRun`], in canonical
/// group-ascending order. Every quantity with an order-sensitive
/// representation — latency vectors, floating-point folds, telemetry
/// streams, hub merges — is assembled in this one fixed order, which
/// is what makes the result independent of `shards`, `jobs`, and
/// thread scheduling.
pub fn assemble(
    cfg: &ScaleConfig,
    schedule: &ScaleSchedule,
    batches: &[MembershipBatch],
    mut outcomes: Vec<GroupOutcome>,
) -> ScaleRun {
    outcomes.sort_by_key(|o| o.group);
    let mut run = ScaleRun {
        raw_events: schedule.events.len(),
        batches: batches.len(),
        rekeys: 0,
        superseded: 0,
        elapsed: Duration::ZERO,
        rekey_ms: Vec::new(),
        batch_wait_ms: Vec::new(),
        transport_ms: Vec::new(),
        agreement_ms: Vec::new(),
        ok: true,
        events: Vec::new(),
        kernel_ops: KernelOps::default(),
        hub: MetricsHub::new(),
    };

    // Batch waits are schedule-derived (arrival → flush), computed
    // centrally in global batch order — the same values and order for
    // every shard count.
    for batch in batches {
        for &arrival in &batch.arrivals {
            run.batch_wait_ms
                .push((batch.flush_at.as_nanos() - arrival.as_nanos()) as f64 / 1e6);
        }
    }

    // Per-group quantities fold group-ascending.
    for o in &outcomes {
        run.rekeys += o.rekeys;
        run.superseded += o.superseded;
        run.ok &= o.ok;
        run.rekey_ms.extend_from_slice(&o.rekey_ms);
        run.transport_ms.extend_from_slice(&o.transport_ms);
        run.agreement_ms.extend_from_slice(&o.agreement_ms);
        run.kernel_ops.merge(&o.kernel_ops);
        if o.elapsed > run.elapsed {
            run.elapsed = o.elapsed;
        }
    }

    // Telemetry: per-group streams concatenated group-ascending, then
    // the harness's batch-wait spans (timestamped on each batch's own
    // group clock) appended in global batch order.
    let harness = if cfg.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let t0_of: BTreeMap<GroupId, SimTime> = outcomes.iter().map(|o| (o.group, o.t0)).collect();
    for batch in batches {
        let Some(&t0) = t0_of.get(&batch.group) else {
            continue;
        };
        let opened = t0 + batch.opened_at;
        let wait = batch.flush_at - batch.opened_at;
        let group_size = batch.events;
        harness.record(|| Event {
            at: opened,
            dur: wait,
            actor: Actor::World,
            kind: EventKind::MembershipEvent {
                action: "batch_wait",
                group_size,
            },
        });
    }
    for o in &mut outcomes {
        run.events.append(&mut o.events);
    }
    run.events.extend(harness.events());

    // Workload-level metrics are always populated (cheap aggregates),
    // so every scale invocation can write a manifest without paying
    // for event capture; an enabled telemetry sink contributes its
    // sim/gcs/crypto metrics on top.
    let proto = cfg.protocol.name();
    let hub = &mut run.hub;
    hub.inc(
        Key::new(Layer::Harness, "raw_events").protocol(proto),
        run.raw_events as u64,
    );
    hub.inc(
        Key::new(Layer::Harness, "batches").protocol(proto),
        run.batches as u64,
    );
    hub.inc(
        Key::new(Layer::Harness, "rekeys").protocol(proto),
        run.rekeys as u64,
    );
    hub.inc(
        Key::new(Layer::Harness, "superseded").protocol(proto),
        run.superseded as u64,
    );
    for (name, samples) in [
        ("rekey_ms", &run.rekey_ms),
        ("batch_wait_ms", &run.batch_wait_ms),
        ("transport_ms", &run.transport_ms),
        ("agreement_ms", &run.agreement_ms),
    ] {
        let key = Key::new(Layer::Harness, name).protocol(proto);
        for &ms in samples.iter() {
            hub.observe(key, ms);
        }
    }
    for (name, count) in run.kernel_ops.entries() {
        hub.inc(Key::new(Layer::Crypto, name).protocol(proto), count);
    }
    hub.gauge_set(
        Key::new(Layer::Harness, "virtual_ms").protocol(proto),
        run.elapsed.as_millis_f64(),
    );
    // Merged last, group-ascending: hub keys from the recorder are
    // unlabelled or group-labelled, so the workload's per-protocol
    // keys never collide with them, and the merge itself is
    // associative/commutative (pinned by the metrics proptests).
    for o in &outcomes {
        let _ = run.hub.merge(&o.hub);
    }
    let _ = run.hub.merge(&harness.hub_snapshot());
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_well_formed() {
        let mut cfg = ScaleConfig::lan(ProtocolKind::Bd, 32);
        cfg.churn = 1.5;
        let a = generate_schedule(&cfg);
        let b = generate_schedule(&cfg);
        assert_eq!(a.events.len(), b.events.len());
        assert!(!a.events.is_empty());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.group, y.group);
            assert_eq!(x.kind, y.kind);
        }
        // Sorted by (at, group).
        assert!(a
            .events
            .windows(2)
            .all(|w| (w[0].at, w[0].group) <= (w[1].at, w[1].group)));
        // Every client belongs to a valid group.
        assert!(a.client_group.iter().all(|&g| g < cfg.groups));
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.5), 2.0);
        assert_eq!(percentile(&samples, 0.95), 4.0);
        assert_eq!(percentile(&samples, 0.25), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn small_scale_run_completes_keyed() {
        let mut cfg = ScaleConfig::lan(ProtocolKind::Tgdh, 8);
        cfg.suite = SuiteKind::FastZero;
        cfg.churn = 1.0;
        let run = super::run(&cfg);
        assert!(run.ok, "all groups end keyed");
        assert_eq!(run.raw_events, 8);
        assert_eq!(run.rekeys + run.superseded, run.batches);
        assert!(run.rekey_ms.iter().all(|&ms| ms > 0.0));
    }

    /// Shards and jobs are pure execution knobs: every observable
    /// field of the run — counts, latency vectors, kernel ops,
    /// telemetry stream, virtual time — matches the serial run
    /// exactly, for partitions that do and do not divide evenly.
    #[test]
    fn sharded_run_equals_serial_run() {
        let mut cfg = ScaleConfig::lan(ProtocolKind::Bd, 9);
        cfg.suite = SuiteKind::FastZero;
        cfg.churn = 1.0;
        cfg.telemetry = true;
        let serial = super::run(&cfg);
        for (shards, jobs) in [(2, 2), (4, 3), (9, 2), (16, 4)] {
            let sharded = super::run_sharded(&cfg, shards, jobs);
            assert_eq!(serial.raw_events, sharded.raw_events, "{shards}x{jobs}");
            assert_eq!(serial.batches, sharded.batches, "{shards}x{jobs}");
            assert_eq!(serial.rekeys, sharded.rekeys, "{shards}x{jobs}");
            assert_eq!(serial.superseded, sharded.superseded, "{shards}x{jobs}");
            assert_eq!(serial.elapsed, sharded.elapsed, "{shards}x{jobs}");
            assert_eq!(serial.rekey_ms, sharded.rekey_ms, "{shards}x{jobs}");
            assert_eq!(serial.batch_wait_ms, sharded.batch_wait_ms);
            assert_eq!(serial.transport_ms, sharded.transport_ms);
            assert_eq!(serial.agreement_ms, sharded.agreement_ms);
            assert_eq!(serial.kernel_ops, sharded.kernel_ops, "{shards}x{jobs}");
            assert_eq!(serial.ok, sharded.ok);
            assert_eq!(serial.events.len(), sharded.events.len(), "{shards}x{jobs}");
            assert_eq!(
                gkap_telemetry::jsonl::render_events(&serial.events),
                gkap_telemetry::jsonl::render_events(&sharded.events),
                "telemetry streams must match event for event ({shards}x{jobs})"
            );
        }
    }
}

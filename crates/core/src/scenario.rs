//! Replayable workload scenarios: a declarative sequence of membership
//! events executed against the simulation, with per-event timing and a
//! latency distribution — the library form of the paper's "typical
//! collaborative group … formed incrementally, its population mutating
//! throughout its lifetime" (§2.1).

use std::rc::Rc;

use gkap_gcs::{ClientId, SimWorld};
use gkap_sim::stats::{Histogram, Summary};

use crate::experiment::ExperimentConfig;
use crate::member::SecureMember;
use crate::suite::CryptoSuite;

/// Which member a scripted leave removes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeavePick {
    /// The oldest member (view head; CKD's controller).
    Oldest,
    /// The newest member (view tail; GDH's controller).
    Newest,
    /// The middle of the view.
    Middle,
    /// The view position `i mod size`.
    Nth(usize),
}

/// One scripted membership event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A fresh member joins.
    Join,
    /// One member leaves.
    Leave(LeavePick),
    /// `p` members (spread across the view) are partitioned away.
    Partition(usize),
    /// A fresh pre-keyed component of `m` members merges in.
    Merge(usize),
}

/// A full scenario: initial size plus a step script.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Members in the initial (bootstrap) view.
    pub initial: usize,
    /// The scripted events, applied in order.
    pub steps: Vec<Step>,
}

impl Scenario {
    /// A churny-conference preset: grow from `initial` with joins,
    /// then alternate leaves and joins.
    pub fn conference(initial: usize, churn: usize) -> Self {
        let mut steps = Vec::new();
        for i in 0..churn {
            steps.push(match i % 3 {
                0 => Step::Join,
                1 => Step::Leave(LeavePick::Nth(i * 5 + 1)),
                _ => Step::Join,
            });
        }
        Scenario { initial, steps }
    }

    /// Upper bound on clients the scenario needs.
    fn clients_needed(&self) -> usize {
        let joins: usize = self
            .steps
            .iter()
            .map(|s| match s {
                Step::Join => 1,
                Step::Merge(m) => *m,
                _ => 0,
            })
            .sum();
        self.initial + joins
    }
}

/// Timing of one executed step.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// The step executed.
    pub step: Step,
    /// Total elapsed time (inject → last key completion), virtual ms.
    pub elapsed_ms: f64,
    /// Group size after the event.
    pub size_after: usize,
}

/// The result of a scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Per-event timings, in script order.
    pub events: Vec<EventReport>,
    /// Summary over all event times.
    pub summary: Summary,
    /// Latency distribution over all event times (log buckets from
    /// 0.1 ms, ×1.5 per bucket).
    pub histogram: Histogram,
    /// Whether every event completed with all members agreeing.
    pub ok: bool,
}

/// Executes `scenario` under `cfg`, returning per-event timings.
///
/// # Panics
///
/// Panics if the scenario empties the group or a merge/partition size
/// is infeasible at execution time.
pub fn run_scenario(cfg: &ExperimentConfig, scenario: &Scenario) -> ScenarioReport {
    let suite = Rc::new(match cfg.suite {
        crate::experiment::SuiteKind::Sim512 => CryptoSuite::sim_512(),
        crate::experiment::SuiteKind::Sim1024 => CryptoSuite::sim_1024(),
        crate::experiment::SuiteKind::Sim512Dsa => CryptoSuite::sim_512_dsa(),
        crate::experiment::SuiteKind::FastZero => CryptoSuite::fast_zero(),
    });
    let total = scenario.clients_needed();
    let mut world = SimWorld::new(cfg.gcs.clone());
    for i in 0..total {
        let mut member = SecureMember::new(
            cfg.protocol,
            Rc::clone(&suite),
            cfg.seed ^ ((i as u64 + 1) * 0x9e37_79b9),
            Some(cfg.seed),
        );
        member.set_key_confirmation(cfg.confirm_keys);
        world.add_client(Box::new(member));
    }
    world.install_initial_view_of((0..scenario.initial).collect());
    world.run_until_quiescent();

    let mut next_fresh = scenario.initial;
    let mut events = Vec::with_capacity(scenario.steps.len());
    let mut summary = Summary::new();
    let mut histogram = Histogram::new(0.1, 1.5, 48);
    let mut ok = true;

    for &step in &scenario.steps {
        let members = world.view().expect("view").members.clone();
        let target_epoch = world.view().expect("view").id + 1;
        let inject = world.now().as_millis_f64();
        let wait_for: Vec<ClientId> = match step {
            Step::Join => {
                let j = next_fresh;
                next_fresh += 1;
                world.inject_join(j);
                let mut w = members;
                w.push(j);
                w
            }
            Step::Leave(pick) => {
                assert!(members.len() > 1, "scenario would empty the group");
                let leaver = match pick {
                    LeavePick::Oldest => members[0],
                    LeavePick::Newest => *members.last().expect("non-empty"),
                    LeavePick::Middle => members[members.len() / 2],
                    LeavePick::Nth(i) => members[i % members.len()],
                };
                world.inject_leave(leaver);
                members.into_iter().filter(|&c| c != leaver).collect()
            }
            Step::Partition(p) => {
                assert!(p < members.len(), "partition would empty the group");
                let stride = (members.len() as f64 / p as f64).max(1.0);
                let mut leaving: Vec<ClientId> = (0..p)
                    .map(|i| members[((i as f64 + 0.5) * stride) as usize % members.len()])
                    .collect();
                leaving.dedup();
                world.inject_partition(leaving.clone());
                members
                    .into_iter()
                    .filter(|c| !leaving.contains(c))
                    .collect()
            }
            Step::Merge(m) => {
                let component: Vec<ClientId> = (next_fresh..next_fresh + m).collect();
                next_fresh += m;
                let comp_seed = cfg.seed ^ 0xfeed ^ next_fresh as u64;
                for &c in &component {
                    world
                        .client_mut::<SecureMember>(c)
                        .preseed_component(&component, c, comp_seed);
                }
                world.inject_merge(component.clone());
                let mut w = members;
                w.extend(component);
                w
            }
        };
        let complete = |w: &SimWorld| {
            wait_for.iter().all(|&c| {
                w.client::<SecureMember>(c)
                    .completion(target_epoch)
                    .is_some()
            })
        };
        world.run_while(|w| !complete(w));
        if !complete(&world) {
            ok = false;
        }
        let mut last = inject;
        let mut secret = None;
        for &c in &wait_for {
            let m = world.client::<SecureMember>(c);
            if let Some(t) = m.completion(target_epoch) {
                last = last.max(t.as_millis_f64());
            }
            match (m.secret(target_epoch), &secret) {
                (Some(s), None) => secret = Some(s.clone()),
                (Some(s), Some(prev)) if s != prev => ok = false,
                (None, _) => ok = false,
                _ => {}
            }
        }
        let elapsed_ms = last - inject;
        summary.add(elapsed_ms);
        histogram.record(elapsed_ms);
        events.push(EventReport {
            step,
            elapsed_ms,
            size_after: wait_for.len(),
        });
    }
    ScenarioReport {
        events,
        summary,
        histogram,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::protocols::ProtocolKind;

    #[test]
    fn conference_preset_runs_for_all_protocols() {
        for kind in ProtocolKind::all() {
            let cfg = ExperimentConfig::lan_fast(kind);
            let scenario = Scenario::conference(4, 6);
            let report = run_scenario(&cfg, &scenario);
            assert!(report.ok, "{kind}");
            assert_eq!(report.events.len(), 6);
            assert_eq!(report.summary.count(), 6);
            assert_eq!(report.histogram.count(), 6);
            assert!(report.summary.mean() > 0.0);
        }
    }

    #[test]
    fn mixed_steps_including_merge_and_partition() {
        let cfg = ExperimentConfig::lan_fast(ProtocolKind::Tgdh);
        let scenario = Scenario {
            initial: 6,
            steps: vec![
                Step::Join,
                Step::Merge(3),
                Step::Partition(4),
                Step::Leave(LeavePick::Oldest),
                Step::Leave(LeavePick::Newest),
                Step::Join,
            ],
        };
        let report = run_scenario(&cfg, &scenario);
        assert!(report.ok);
        let sizes: Vec<usize> = report.events.iter().map(|e| e.size_after).collect();
        assert_eq!(sizes, vec![7, 10, 6, 5, 4, 5]);
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ExperimentConfig::lan_fast(ProtocolKind::Str);
        let scenario = Scenario::conference(5, 5);
        let a = run_scenario(&cfg, &scenario);
        let b = run_scenario(&cfg, &scenario);
        let ta: Vec<f64> = a.events.iter().map(|e| e.elapsed_ms).collect();
        let tb: Vec<f64> = b.events.iter().map(|e| e.elapsed_ms).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "empty the group")]
    fn emptying_scenario_panics() {
        let cfg = ExperimentConfig::lan_fast(ProtocolKind::Bd);
        let scenario = Scenario {
            initial: 1,
            steps: vec![Step::Leave(LeavePick::Oldest)],
        };
        let _ = run_scenario(&cfg, &scenario);
    }
}

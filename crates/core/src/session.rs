//! The secure session layer: application-data confidentiality and
//! integrity under the established group key (the service Secure
//! Spread adds on top of Spread, §3.3).
//!
//! Message format: `epoch (8) ‖ seq (8) ‖ ciphertext ‖ mac (32)` with
//! AES-128-CTR encryption and an HMAC-SHA-256 tag over everything
//! before it (encrypt-then-MAC). The (epoch, seq, sender) triple makes
//! nonces unique per key.

use gkap_bignum::Ubig;
use gkap_crypto::aes::ctr_xor;
use gkap_crypto::hmac::{ct_eq, hmac_sha256};
use gkap_crypto::kdf::SessionKeys;
use gkap_crypto::sha::{Digest, Sha256};
use gkap_gcs::ClientId;

/// Errors from the secure session layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Ciphertext too short or malformed.
    Malformed,
    /// MAC verification failed (tampering or wrong key/epoch).
    BadMac,
    /// Message was protected under a different epoch's key.
    WrongEpoch {
        /// The epoch the message claims.
        got: u64,
        /// The epoch this session is keyed for.
        expected: u64,
    },
    /// The (sender, sequence) pair was already accepted.
    Replayed {
        /// The claimed sender.
        sender: ClientId,
        /// The replayed sequence number.
        seq: u64,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Malformed => write!(f, "malformed secure message"),
            SessionError::BadMac => write!(f, "message authentication failed"),
            SessionError::WrongEpoch { got, expected } => {
                write!(
                    f,
                    "message epoch {got} does not match session epoch {expected}"
                )
            }
            SessionError::Replayed { sender, seq } => {
                write!(f, "replayed message (sender {sender}, seq {seq})")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A per-epoch secure channel bound to one group key.
#[derive(Clone)]
pub struct SecureSession {
    keys: SessionKeys,
    epoch: u64,
    next_seq: u64,
}

impl std::fmt::Debug for SecureSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureSession")
            .field("epoch", &self.epoch)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

fn nonce_for(epoch: u64, seq: u64, sender: ClientId) -> [u8; 12] {
    let mut h = Sha256::new();
    h.update(b"session-nonce");
    h.update(&epoch.to_be_bytes());
    h.update(&seq.to_be_bytes());
    h.update(&(sender as u64).to_be_bytes());
    let digest = h.finalize();
    let mut nonce = [0u8; 12];
    for (dst, src) in nonce.iter_mut().zip(digest.iter()) {
        *dst = *src;
    }
    nonce
}

/// Reads a big-endian `u64` at `at` without panicking paths.
fn read_u64(body: &[u8], at: usize) -> Result<u64, SessionError> {
    let bytes = body.get(at..at + 8).ok_or(SessionError::Malformed)?;
    let fixed: [u8; 8] = bytes.try_into().map_err(|_| SessionError::Malformed)?;
    Ok(u64::from_be_bytes(fixed))
}

impl SecureSession {
    /// Creates a session from a group secret for a given epoch.
    pub fn new(group_secret: &Ubig, epoch: u64) -> Self {
        SecureSession {
            keys: SessionKeys::from_group_secret(group_secret),
            epoch,
            next_seq: 0,
        }
    }

    /// The epoch this session protects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Encrypts and authenticates `plaintext` from `sender`.
    pub fn seal(&mut self, sender: ClientId, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let nonce = nonce_for(self.epoch, seq, sender);
        let ct = ctr_xor(self.keys.enc_key.expose(), &nonce, 0, plaintext.to_vec());
        let mut out = Vec::with_capacity(16 + ct.len() + 32);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&ct);
        let mac = hmac_sha256(self.keys.mac_key.expose(), &out);
        out.extend_from_slice(&mac);
        out
    }

    /// Like [`SecureSession::open`], additionally enforcing replay
    /// protection through `guard`.
    ///
    /// # Errors
    ///
    /// Everything [`SecureSession::open`] returns, plus
    /// [`SessionError::Replayed`].
    pub fn open_checked(
        &self,
        guard: &mut ReplayGuard,
        sender: ClientId,
        wire: &[u8],
    ) -> Result<Vec<u8>, SessionError> {
        let (seq, plain) = self.open_parsed(sender, wire)?;
        guard.check(sender, seq)?;
        Ok(plain)
    }

    /// Verifies and decrypts a sealed message from `sender`.
    ///
    /// # Errors
    ///
    /// [`SessionError::Malformed`], [`SessionError::WrongEpoch`], or
    /// [`SessionError::BadMac`].
    pub fn open(&self, sender: ClientId, wire: &[u8]) -> Result<Vec<u8>, SessionError> {
        self.open_parsed(sender, wire).map(|(_, plain)| plain)
    }

    /// Verifies, decrypts, and also returns the sequence number (used
    /// by [`SecureSession::open_checked`] for replay tracking).
    fn open_parsed(&self, sender: ClientId, wire: &[u8]) -> Result<(u64, Vec<u8>), SessionError> {
        if wire.len() < 16 + 32 {
            return Err(SessionError::Malformed);
        }
        let (body, mac) = wire.split_at(wire.len() - 32);
        if !ct_eq(&hmac_sha256(self.keys.mac_key.expose(), body), mac) {
            return Err(SessionError::BadMac);
        }
        let epoch = read_u64(body, 0)?;
        if epoch != self.epoch {
            return Err(SessionError::WrongEpoch {
                got: epoch,
                expected: self.epoch,
            });
        }
        let seq = read_u64(body, 8)?;
        let nonce = nonce_for(epoch, seq, sender);
        let ct = body.get(16..).ok_or(SessionError::Malformed)?;
        Ok((
            seq,
            ctr_xor(self.keys.enc_key.expose(), &nonce, 0, ct.to_vec()),
        ))
    }
}

/// Receiver-side anti-replay state: tracks the highest sequence seen
/// per sender with a sliding window, rejecting duplicates and
/// far-stale messages.
#[derive(Clone, Debug, Default)]
pub struct ReplayGuard {
    /// Per-sender (highest seq seen, bitmap of the 64 seqs below it).
    seen: std::collections::HashMap<ClientId, (u64, u64)>,
}

impl ReplayGuard {
    /// Creates an empty guard.
    pub fn new() -> Self {
        ReplayGuard::default()
    }

    /// Checks and records a (sender, seq) pair.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Replayed`] if the pair was already
    /// accepted or is older than the 64-message window.
    pub fn check(&mut self, sender: ClientId, seq: u64) -> Result<(), SessionError> {
        let (highest, bitmap) = self.seen.get(&sender).copied().unwrap_or((0, 0));
        if Self::seen_before(seq, highest, bitmap) {
            return Err(SessionError::Replayed { sender, seq });
        }
        let entry = self.seen.entry(sender).or_insert((0, 0));
        if seq > entry.0 || (entry.0 == 0 && entry.1 & 1 == 0 && seq == 0) {
            let shift = seq - entry.0;
            entry.1 = if shift >= 64 { 0 } else { entry.1 << shift };
            entry.1 |= 1;
            entry.0 = seq;
        } else {
            let offset = entry.0 - seq;
            entry.1 |= 1 << offset;
        }
        Ok(())
    }

    fn seen_before(seq: u64, highest: u64, bitmap: u64) -> bool {
        if bitmap == 0 && highest == 0 {
            return false; // nothing recorded yet
        }
        if seq > highest {
            return false;
        }
        let offset = highest - seq;
        if offset >= 64 {
            return true; // outside the window: treat as replay
        }
        bitmap & (1 << offset) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(epoch: u64) -> SecureSession {
        SecureSession::new(&Ubig::from(0xfeedfaceu64), epoch)
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut tx = session(3);
        let rx = session(3);
        let wire = tx.seal(7, b"attack at dawn");
        assert_eq!(rx.open(7, &wire).unwrap(), b"attack at dawn");
    }

    #[test]
    fn distinct_messages_distinct_ciphertexts() {
        let mut tx = session(1);
        let a = tx.seal(0, b"same");
        let b = tx.seal(0, b"same");
        assert_ne!(a, b, "sequence number must vary the nonce");
    }

    #[test]
    fn tamper_detection() {
        let mut tx = session(1);
        let mut wire = tx.seal(0, b"payload");
        wire[20] ^= 1;
        assert_eq!(session(1).open(0, &wire), Err(SessionError::BadMac));
        // Truncation.
        assert_eq!(
            session(1).open(0, &wire[..10]),
            Err(SessionError::Malformed)
        );
    }

    #[test]
    fn wrong_epoch_and_wrong_key_rejected() {
        let mut tx = session(1);
        let wire = tx.seal(0, b"x");
        // Session on the same key but a different epoch: the MAC still
        // verifies (same key), the epoch check fires.
        assert!(matches!(
            session(2).open(0, &wire),
            Err(SessionError::WrongEpoch {
                got: 1,
                expected: 2
            })
        ));
        // A different group secret entirely: MAC fails.
        let other = SecureSession::new(&Ubig::from(1u64), 1);
        assert_eq!(other.open(0, &wire), Err(SessionError::BadMac));
    }

    #[test]
    fn wrong_sender_fails_decryption_not_mac() {
        // The MAC does not bind the sender (the GCS attributes it);
        // decrypting as a different sender yields garbage.
        let mut tx = session(1);
        let wire = tx.seal(0, b"hello world");
        let out = session(1).open(1, &wire).unwrap();
        assert_ne!(out, b"hello world");
    }

    #[test]
    fn replay_guard_rejects_duplicates_and_accepts_window() {
        let mut g = ReplayGuard::new();
        g.check(0, 0).unwrap();
        g.check(0, 1).unwrap();
        g.check(0, 5).unwrap();
        assert!(matches!(g.check(0, 1), Err(SessionError::Replayed { .. })));
        assert!(matches!(g.check(0, 5), Err(SessionError::Replayed { .. })));
        // Out-of-order but inside the window is fine once.
        g.check(0, 3).unwrap();
        assert!(g.check(0, 3).is_err());
        // Another sender has independent state.
        g.check(1, 5).unwrap();
        // Far beyond the window in the past: rejected.
        g.check(0, 100).unwrap();
        assert!(g.check(0, 10).is_err());
    }

    #[test]
    fn open_checked_stops_replays() {
        let mut tx = session(2);
        let rx = session(2);
        let mut guard = ReplayGuard::new();
        let wire = tx.seal(4, b"once");
        assert_eq!(rx.open_checked(&mut guard, 4, &wire).unwrap(), b"once");
        assert!(matches!(
            rx.open_checked(&mut guard, 4, &wire),
            Err(SessionError::Replayed { sender: 4, seq: 0 })
        ));
        // Fresh messages still flow.
        let wire2 = tx.seal(4, b"twice");
        assert_eq!(rx.open_checked(&mut guard, 4, &wire2).unwrap(), b"twice");
    }

    #[test]
    fn empty_plaintext() {
        let mut tx = session(9);
        let wire = tx.seal(2, b"");
        assert_eq!(session(9).open(2, &wire).unwrap(), Vec::<u8>::new());
    }
}

//! The cryptographic suite a secure group is configured with: DH
//! group, signature scheme, and virtual-time cost model.

use std::rc::Rc;

use gkap_bignum::{SplitMix64, Ubig};
use gkap_crypto::dh::DhGroup;
use gkap_crypto::dsa::{self, DsaKeyPair, DsaSignature};
use gkap_crypto::rsa::RsaPrivateKey;
use gkap_crypto::sha::{Digest, Sha256};
use gkap_crypto::CryptoError;

use crate::cost::CostModel;

/// How protocol messages are signed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigMode {
    /// Real RSA PKCS#1 v1.5 signatures (slower to simulate, used by
    /// correctness tests and the crypto benches).
    Real,
    /// Real DSA signatures (two-exponentiation verification).
    RealDsa,
    /// A SHA-256 tag stands in for the signature; virtual time is
    /// charged exactly as for a real signature. Used by the large
    /// experiment sweeps, where thousands of runs would otherwise
    /// spend host time on RSA math that the virtual clock already
    /// accounts for.
    Modeled,
}

/// A group's cryptographic configuration.
///
/// The `group` performs *real* math (protocol correctness is always
/// exercised); the `cost` model charges virtual time as if the group
/// had `nominal_bits`-bit parameters on the paper's hardware. This is
/// what lets a 256-bit test group faithfully reproduce 1024-bit
/// timing.
#[derive(Clone, Debug)]
pub struct CryptoSuite {
    group: DhGroup,
    nominal_bits: usize,
    cost: CostModel,
    sig_mode: SigMode,
    rsa: Option<Rc<RsaPrivateKey>>,
    dsa: Option<Rc<DsaKeyPair>>,
}

impl CryptoSuite {
    /// Builds a suite.
    pub fn new(group: DhGroup, nominal_bits: usize, cost: CostModel, sig_mode: SigMode) -> Self {
        // One shared signing key: every member signs with the same
        // key. Functionally exercises the sign/verify paths at
        // identical cost; per-member keys would only slow simulation
        // start-up. (RSA at 512 bits here; virtual time is charged at
        // the paper's 1024-bit rates.)
        let rsa = match sig_mode {
            SigMode::Real => {
                let mut rng = SplitMix64::new(0x5157_0000);
                Some(Rc::new(RsaPrivateKey::generate(512, 3, &mut rng)))
            }
            _ => None,
        };
        let dsa = match sig_mode {
            SigMode::RealDsa => {
                let mut rng = SplitMix64::new(0x5157_0001);
                Some(Rc::new(DsaKeyPair::generate(group.clone(), &mut rng)))
            }
            _ => None,
        };
        CryptoSuite {
            group,
            nominal_bits,
            cost,
            sig_mode,
            rsa,
            dsa,
        }
    }

    /// The simulation suite for the paper's "DH 512 bits"
    /// configuration: real math on a fast 256-bit group, virtual time
    /// charged at 512-bit rates, modeled signatures.
    pub fn sim_512() -> Self {
        CryptoSuite::new(
            DhGroup::test_256(),
            512,
            CostModel::paper_512(),
            SigMode::Modeled,
        )
    }

    /// The simulation suite for "DH 1024 bits".
    pub fn sim_1024() -> Self {
        CryptoSuite::new(
            DhGroup::test_256(),
            1024,
            CostModel::paper_1024(),
            SigMode::Modeled,
        )
    }

    /// The 512-bit suite with DSA signature costs (the ablation of
    /// §6.1.1's signature-scheme choice).
    pub fn sim_512_dsa() -> Self {
        CryptoSuite::new(
            DhGroup::test_256(),
            512,
            CostModel::paper_512().with_dsa_signatures(),
            SigMode::Modeled,
        )
    }

    /// A zero-cost suite for pure correctness tests.
    pub fn fast_zero() -> Self {
        CryptoSuite::new(
            DhGroup::test_256(),
            256,
            CostModel::zero(),
            SigMode::Modeled,
        )
    }

    /// Real DSA signatures on the fast test group (correctness tests
    /// of the expensive-verification configuration).
    pub fn real_dsa_fast() -> Self {
        CryptoSuite::new(
            DhGroup::test_256(),
            512,
            CostModel::paper_512().with_dsa_signatures(),
            SigMode::RealDsa,
        )
    }

    /// Full-fidelity suite: the real 512-bit group and real RSA
    /// signatures (slow; correctness tests and benches only).
    pub fn real_512() -> Self {
        CryptoSuite::new(
            DhGroup::modp_512(),
            512,
            CostModel::paper_512(),
            SigMode::Real,
        )
    }

    /// The Diffie–Hellman group used for the actual math.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// The parameter size whose costs are charged (512 or 1024 in the
    /// paper).
    pub fn nominal_bits(&self) -> usize {
        self.nominal_bits
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The signature mode in force.
    pub fn sig_mode(&self) -> SigMode {
        self.sig_mode
    }

    /// Signs `data`, returning the signature bytes. (Virtual-time cost
    /// is charged by the caller.)
    pub fn sign(&self, data: &[u8]) -> Vec<u8> {
        match self.sig_mode {
            SigMode::Real => self.rsa.as_ref().expect("real key").sign(data),
            SigMode::RealDsa => {
                // Deterministic per-message nonce stream derived from
                // the message (the simulation's reproducibility trumps
                // RFC 6979 formality; the structure is the same).
                let mut rng = SplitMix64::new(u64::from_be_bytes(
                    Sha256::digest(data)[..8].try_into().expect("8"),
                ));
                self.dsa
                    .as_ref()
                    .expect("dsa key")
                    .sign(data, &mut rng)
                    .to_bytes()
            }
            SigMode::Modeled => Sha256::digest(data),
        }
    }

    /// Verifies a signature produced by [`CryptoSuite::sign`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] on mismatch.
    pub fn verify(&self, data: &[u8], sig: &[u8]) -> Result<(), CryptoError> {
        match self.sig_mode {
            SigMode::Real => self
                .rsa
                .as_ref()
                .expect("real key")
                .public_key()
                .verify(data, sig),
            SigMode::RealDsa => {
                let kp = self.dsa.as_ref().expect("dsa key");
                let parsed = DsaSignature::from_bytes(sig)?;
                dsa::verify(&self.group, kp.public(), data, &parsed)
            }
            SigMode::Modeled => {
                if gkap_crypto::hmac::ct_eq(&Sha256::digest(data), sig) {
                    Ok(())
                } else {
                    Err(CryptoError::BadSignature)
                }
            }
        }
    }

    /// Inverts an exponent modulo the group order (GDH factor-out, key
    /// refresh ratios).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not invertible — exponents are drawn from
    /// `[1, q)` with prime `q`, so this indicates a protocol bug.
    pub fn invert_exponent(&self, e: &Ubig) -> Ubig {
        e.mod_inverse(self.group.order())
            .expect("exponent invertible modulo prime order")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_signatures_roundtrip_and_tamper_detect() {
        let suite = CryptoSuite::sim_512();
        let sig = suite.sign(b"payload");
        suite.verify(b"payload", &sig).unwrap();
        assert!(suite.verify(b"other", &sig).is_err());
        assert!(suite.verify(b"payload", &[0u8; 32]).is_err());
    }

    #[test]
    fn real_signatures_roundtrip() {
        let suite = CryptoSuite::real_512();
        let sig = suite.sign(b"protocol message");
        suite.verify(b"protocol message", &sig).unwrap();
        assert!(suite.verify(b"tampered", &sig).is_err());
    }

    #[test]
    fn real_dsa_signatures_roundtrip() {
        let suite = CryptoSuite::real_dsa_fast();
        let sig = suite.sign(b"protocol message");
        suite.verify(b"protocol message", &sig).unwrap();
        assert!(suite.verify(b"tampered", &sig).is_err());
        assert!(suite.verify(b"protocol message", b"garbage").is_err());
    }

    #[test]
    fn exponent_inversion() {
        let suite = CryptoSuite::fast_zero();
        let mut rng = SplitMix64::new(9);
        let e = suite.group().random_exponent(&mut rng);
        let inv = suite.invert_exponent(&e);
        let q = suite.group().order();
        assert_eq!(e.modmul(&inv, q), Ubig::one());
    }

    #[test]
    fn suite_presets() {
        assert_eq!(CryptoSuite::sim_512().nominal_bits(), 512);
        assert_eq!(CryptoSuite::sim_1024().nominal_bits(), 1024);
        assert_eq!(CryptoSuite::sim_512().sig_mode(), SigMode::Modeled);
        assert!(CryptoSuite::sim_1024().cost().exp > CryptoSuite::sim_512().cost().exp);
    }
}

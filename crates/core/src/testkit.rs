//! An in-memory loopback harness for protocol-logic tests.
//!
//! Runs a set of protocol engines against each other with synchronous,
//! totally-ordered delivery and zero latency — no simulated network.
//! Used by the unit/property tests of the protocols themselves and by
//! the closed-form cost validation (Table 1): the operation counters
//! accumulate exactly as in the full simulation, since both go through
//! the same [`GkaCtx`].

use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use gkap_bignum::{SplitMix64, Ubig};
use gkap_gcs::{ClientId, View};
use gkap_sim::Duration;
use gkap_telemetry::Telemetry;

use crate::cost::OpCounts;
use crate::envelope::Envelope;
use crate::protocols::{GkaCtx, GkaProtocol, ProtocolKind, ProtocolMsg, SendKind, Transport};
use crate::suite::CryptoSuite;

struct QueueTransport<'a> {
    me: ClientId,
    out: &'a mut VecDeque<(ClientId, SendKind, Bytes)>,
}

impl Transport for QueueTransport<'_> {
    fn my_id(&self) -> ClientId {
        self.me
    }

    fn send_wire(&mut self, kind: SendKind, wire: Bytes) {
        self.out.push_back((self.me, kind, wire));
    }

    fn charge(&mut self, _cost: Duration) {}
}

struct Slot {
    id: ClientId,
    protocol: Box<dyn GkaProtocol>,
    counts: OpCounts,
    rng: SplitMix64,
    /// View epochs delivered to this member, in delivery order
    /// (cascade tests assert strict monotonicity).
    epochs: Vec<u64>,
}

/// The loopback world: engines + a FIFO message queue standing in for
/// the Agreed service.
pub struct Loopback {
    suite: Rc<CryptoSuite>,
    members: Vec<Slot>,
    queue: VecDeque<(ClientId, SendKind, Bytes)>,
    epoch: u64,
    view: Vec<ClientId>,
    /// Messages delivered so far (diagnostics).
    pub delivered: u64,
    telemetry: Telemetry,
}

impl Loopback {
    /// Creates a harness with members `ids` all running `kind`.
    pub fn new(kind: ProtocolKind, suite: CryptoSuite, ids: &[ClientId]) -> Self {
        Loopback::with_factory(|| kind.create(), suite, ids)
    }

    /// Creates a harness with a custom protocol factory (e.g. the
    /// AVL-policy TGDH variant).
    pub fn with_factory(
        factory: impl Fn() -> Box<dyn GkaProtocol>,
        suite: CryptoSuite,
        ids: &[ClientId],
    ) -> Self {
        let suite = Rc::new(suite);
        Loopback {
            members: ids
                .iter()
                .map(|&id| Slot {
                    id,
                    protocol: factory(),
                    counts: OpCounts::default(),
                    rng: SplitMix64::new(0xbeef ^ (id as u64) << 4),
                    epochs: Vec::new(),
                })
                .collect(),
            suite,
            queue: VecDeque::new(),
            epoch: 0,
            view: Vec::new(),
            delivered: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Enables telemetry capture and returns the shared handle
    /// (events are keyed at `SimTime::ZERO` — the loopback has no
    /// clock; counters still tally every charged operation).
    pub fn enable_telemetry(&mut self) -> Telemetry {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
        self.telemetry.clone()
    }

    /// Borrows a member's protocol engine, downcast to its concrete
    /// type (diagnostics; e.g. reading the TGDH tree height).
    ///
    /// # Panics
    ///
    /// Panics on unknown id or type mismatch.
    pub fn protocol_as<T: GkaProtocol>(&self, id: ClientId) -> &T {
        let slot = self
            .members
            .iter()
            .find(|s| s.id == id)
            .expect("unknown member");
        (slot.protocol.as_ref() as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("protocol type mismatch")
    }

    /// Bootstraps a component of the given members with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a member id is unknown.
    pub fn bootstrap(&mut self, ids: &[ClientId], seed: u64) {
        for &id in ids {
            let suite = Rc::clone(&self.suite);
            let slot = self.slot_mut(id);
            slot.protocol.bootstrap(&suite, ids, id, seed);
        }
        if self.view.is_empty() {
            self.view = ids.to_vec();
        }
    }

    fn slot_mut(&mut self, id: ClientId) -> &mut Slot {
        self.members
            .iter_mut()
            .find(|s| s.id == id)
            .expect("unknown member id")
    }

    /// Installs a new view (join/leave/merge/partition) and runs the
    /// protocol to completion.
    ///
    /// # Panics
    ///
    /// Panics if a protocol errors or deadlocks (stops making progress
    /// before every member holds the epoch's key).
    pub fn install_view(
        &mut self,
        members: Vec<ClientId>,
        joined: Vec<ClientId>,
        left: Vec<ClientId>,
    ) {
        self.begin_view(members, joined, left);
        self.drain();
        // Every member must hold the key now.
        for s in &self.members {
            if self.view.contains(&s.id) {
                assert!(
                    s.protocol.group_secret().is_some(),
                    "member {} did not reach a key (protocol deadlock?)",
                    s.id
                );
            }
        }
    }

    /// Installs a view but cuts the agreement mid-round: only the
    /// first `deliver` queued messages are handed out, then control
    /// returns with the round incomplete. Messages still queued belong
    /// to the now-superseded epoch; the next `install_view*` call
    /// discards them — the view-synchronous cut, where receivers
    /// already in the next epoch drop stale traffic (exactly
    /// [`crate::member::SecureMember`]'s epoch filter). Returns how
    /// many messages were actually delivered (may be under `deliver`
    /// if the round finished early).
    pub fn install_view_interrupted(
        &mut self,
        members: Vec<ClientId>,
        joined: Vec<ClientId>,
        left: Vec<ClientId>,
        deliver: usize,
    ) -> usize {
        self.begin_view(members, joined, left);
        self.deliver_some(deliver)
    }

    /// Delivers the new view to every surviving member (discarding
    /// traffic left over from an interrupted round first).
    fn begin_view(&mut self, members: Vec<ClientId>, joined: Vec<ClientId>, left: Vec<ClientId>) {
        // Anything still queued was sent in the superseded epoch;
        // receivers would drop it as stale.
        self.queue.clear();
        self.epoch += 1;
        let view = View {
            id: self.epoch,
            group: 0,
            members: members.clone(),
            joined,
            left,
        };
        self.view = members;
        for idx in 0..self.members.len() {
            let id = self.members[idx].id;
            if !view.members.contains(&id) {
                continue;
            }
            self.members[idx].epochs.push(view.id);
            self.with_ctx(idx, |protocol, ctx| {
                protocol.on_view(ctx, &view).expect("on_view failed");
            });
        }
    }

    fn with_ctx(&mut self, idx: usize, f: impl FnOnce(&mut Box<dyn GkaProtocol>, &mut GkaCtx<'_>)) {
        let suite = Rc::clone(&self.suite);
        let epoch = self.epoch;
        let slot = &mut self.members[idx];
        let mut transport = QueueTransport {
            me: slot.id,
            out: &mut self.queue,
        };
        let mut ctx = GkaCtx {
            transport: &mut transport,
            suite: &suite,
            counts: &mut slot.counts,
            rng: &mut slot.rng,
            epoch,
            telemetry: self.telemetry.clone(),
            now: gkap_sim::SimTime::ZERO,
        };
        f(&mut slot.protocol, &mut ctx);
    }

    /// Delivers queued messages (in total order) until quiescent.
    fn drain(&mut self) {
        self.deliver_some(usize::MAX);
    }

    /// Delivers at most `budget` queued messages (in total order);
    /// returns how many were delivered.
    fn deliver_some(&mut self, budget: usize) -> usize {
        let mut handed_out = 0;
        while handed_out < budget {
            let Some((sender, kind, wire)) = self.queue.pop_front() else {
                break;
            };
            handed_out += 1;
            assert!(handed_out < 100_000, "loopback runaway message loop");
            let env = Envelope::decode(&wire).expect("well-formed envelope");
            let targets: Vec<ClientId> = match kind {
                SendKind::Multicast => self.view.iter().copied().filter(|&m| m != sender).collect(),
                SendKind::UnicastAgreed(t) | SendKind::UnicastFifo(t) => vec![t],
            };
            for t in targets {
                let Some(idx) = self.members.iter().position(|s| s.id == t) else {
                    continue;
                };
                self.delivered += 1;
                // Mirror SecureMember's receive path: one verification
                // per receiver, charged to that member's counters.
                let suite = Rc::clone(&self.suite);
                {
                    let slot = &mut self.members[idx];
                    slot.counts.verify += 1;
                    let actor = gkap_telemetry::Actor::Client(slot.id);
                    let cost = suite.cost().verify;
                    let bits = suite.nominal_bits() as u32;
                    self.telemetry.record(|| gkap_telemetry::Event {
                        at: gkap_sim::SimTime::ZERO,
                        dur: cost,
                        actor,
                        kind: gkap_telemetry::EventKind::CryptoOp {
                            op: gkap_telemetry::CryptoOpKind::Verify,
                            bits,
                        },
                    });
                }
                env.verify(&suite).expect("signature verifies");
                let msg = ProtocolMsg::decode(&env.body).expect("well-formed body");
                self.with_ctx(idx, |protocol, ctx| {
                    protocol.on_msg(ctx, sender, msg).expect("on_msg failed");
                });
            }
        }
        handed_out
    }

    /// All current members' secrets, asserting they agree; returns the
    /// common secret.
    ///
    /// # Panics
    ///
    /// Panics if any member lacks a key or secrets diverge.
    pub fn common_secret(&self) -> Ubig {
        let mut secret: Option<Ubig> = None;
        for s in &self.members {
            if !self.view.contains(&s.id) {
                continue;
            }
            let k = s
                .protocol
                .group_secret()
                .unwrap_or_else(|| panic!("member {} has no key", s.id));
            match &secret {
                None => secret = Some(k.clone()),
                Some(prev) => assert_eq!(prev, k, "member {} diverges", s.id),
            }
        }
        secret.expect("non-empty view")
    }

    /// Aggregate operation counts across all members.
    pub fn total_counts(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for s in &self.members {
            total.add(&s.counts);
        }
        total
    }

    /// A snapshot of one member's counters.
    pub fn counts_of(&self, id: ClientId) -> OpCounts {
        self.members
            .iter()
            .find(|s| s.id == id)
            .expect("unknown member")
            .counts
    }

    /// The current view members.
    pub fn view(&self) -> &[ClientId] {
        &self.view
    }

    /// The view epochs delivered to `id`, in order (cascade tests
    /// assert these are strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics on unknown id.
    pub fn epochs_of(&self, id: ClientId) -> &[u64] {
        &self
            .members
            .iter()
            .find(|s| s.id == id)
            .expect("unknown member")
            .epochs
    }
}

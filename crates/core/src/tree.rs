//! The binary key tree used by TGDH.
//!
//! Each node carries an optional secret key and an optional blinded key
//! (`bkey = g^key`). Leaves belong to members (key = the member's
//! session random); an internal node's key is the two-party
//! Diffie–Hellman agreement of its children:
//! `key(parent) = bkey(left)^key(right) = bkey(right)^key(left)`.
//!
//! All structural operations (merge insertion point, leaf deletion with
//! sibling promotion) are deterministic, so every member derives an
//! identical tree from identical inputs — the property TGDH relies on
//! ("all members uniquely and independently determine the merge
//! position", §4.3).
//!
//! Nodes expose a structural *fingerprint* — a hash over the subtree's
//! leaf members and blinded session randoms — that the TGDH protocol
//! uses to cache computed keys, mirroring the paper's observation that
//! recomputation of already-known blinded keys can be optimized away
//! (§5, "this computation can be removed for better efficiency").

use gkap_bignum::Ubig;
use gkap_crypto::sha::{Digest, Sha256};
use gkap_gcs::ClientId;

use crate::codec::{Dec, DecodeError, Enc};

/// Index of a node in the tree arena.
pub type NodeIdx = usize;

/// One node of the key tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Parent index (`None` for the root).
    pub parent: Option<NodeIdx>,
    /// Children (`None` for leaves): `(left, right)`.
    pub children: Option<(NodeIdx, NodeIdx)>,
    /// Owning member for leaves.
    pub member: Option<ClientId>,
    /// Secret key (session random at leaves, DH agreement inside).
    /// Only present on the paths a member can actually compute.
    pub key: Option<Ubig>,
    /// Blinded key `g^key` — public information.
    pub bkey: Option<Ubig>,
}

/// A binary key tree (arena representation; removed nodes are left
/// unlinked and skipped by traversals).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyTree {
    nodes: Vec<Node>,
    root: Option<NodeIdx>,
}

impl KeyTree {
    /// An empty tree.
    pub fn new() -> Self {
        KeyTree::default()
    }

    /// A tree with a single leaf.
    pub fn singleton(member: ClientId, key: Option<Ubig>, bkey: Option<Ubig>) -> Self {
        KeyTree {
            nodes: vec![Node {
                parent: None,
                children: None,
                member: Some(member),
                key,
                bkey,
            }],
            root: Some(0),
        }
    }

    /// The root index.
    ///
    /// # Panics
    ///
    /// Panics on an empty tree.
    pub fn root(&self) -> NodeIdx {
        self.root.expect("empty key tree")
    }

    /// Whether the tree has any nodes.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Borrow a node.
    pub fn node(&self, idx: NodeIdx) -> &Node {
        &self.nodes[idx]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut Node {
        &mut self.nodes[idx]
    }

    /// Height of the subtree at `idx` (a leaf has height 0).
    pub fn height(&self, idx: NodeIdx) -> usize {
        match self.nodes[idx].children {
            None => 0,
            Some((l, r)) => 1 + self.height(l).max(self.height(r)),
        }
    }

    /// Depth of `idx` (root has depth 0).
    pub fn depth(&self, idx: NodeIdx) -> usize {
        let mut d = 0;
        let mut cur = idx;
        while let Some(p) = self.nodes[cur].parent {
            cur = p;
            d += 1;
        }
        d
    }

    /// The members at the leaves of the subtree rooted at `idx`, in
    /// left-to-right order.
    pub fn members_under(&self, idx: NodeIdx) -> Vec<ClientId> {
        match self.nodes[idx].children {
            None => vec![self.nodes[idx].member.expect("leaf has member")],
            Some((l, r)) => {
                let mut out = self.members_under(l);
                out.extend(self.members_under(r));
                out
            }
        }
    }

    /// All members of the tree, left-to-right.
    pub fn members(&self) -> Vec<ClientId> {
        match self.root {
            None => Vec::new(),
            Some(r) => self.members_under(r),
        }
    }

    /// The rightmost leaf of the subtree rooted at `idx`.
    pub fn rightmost_leaf(&self, idx: NodeIdx) -> NodeIdx {
        let mut cur = idx;
        while let Some((_, r)) = self.nodes[cur].children {
            cur = r;
        }
        cur
    }

    /// Finds a member's leaf.
    pub fn leaf_of(&self, member: ClientId) -> Option<NodeIdx> {
        self.iter_live()
            .find(|&i| self.nodes[i].member == Some(member))
    }

    /// Iterator over live (reachable) node indices, preorder.
    fn iter_live(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        let mut stack = Vec::new();
        if let Some(r) = self.root {
            stack.push(r);
        }
        std::iter::from_fn(move || {
            let cur = stack.pop()?;
            if let Some((l, r)) = self.nodes[cur].children {
                stack.push(r);
                stack.push(l);
            }
            Some(cur)
        })
    }

    /// Sibling of `idx`, if it has a parent.
    pub fn sibling(&self, idx: NodeIdx) -> Option<NodeIdx> {
        let p = self.nodes[idx].parent?;
        let (l, r) = self.nodes[p].children.expect("parent is internal");
        Some(if l == idx { r } else { l })
    }

    fn push(&mut self, node: Node) -> NodeIdx {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Deterministic insertion point for merging a subtree of height
    /// `h2`: the shallowest, rightmost node `v` where a new internal
    /// node above `v` does not increase the tree height; the root if
    /// none exists (paper §4.3 footnote 5).
    fn insertion_point(&self, h2: usize) -> NodeIdx {
        let root = self.root();
        let h1 = self.height(root);
        // Collect candidates (depth, preorder position) — scan all live
        // nodes, pick min depth; tie-break to the rightmost, which we
        // identify by the largest left-to-right position of the
        // subtree's rightmost leaf.
        let mut best: Option<(usize, usize, NodeIdx)> = None; // (depth, rightpos, idx)
        let order: Vec<NodeIdx> = self.iter_live().collect();
        let pos_of = |idx: NodeIdx| order.iter().position(|&x| x == idx).expect("live");
        for v in self.iter_live() {
            let d = self.depth(v);
            if d + 1 + self.height(v).max(h2) <= h1 {
                let rp = pos_of(self.rightmost_leaf(v));
                let better = match best {
                    None => true,
                    Some((bd, brp, _)) => d < bd || (d == bd && rp > brp),
                };
                if better {
                    best = Some((d, rp, v));
                }
            }
        }
        best.map(|(_, _, v)| v).unwrap_or(root)
    }

    /// Merges `other` into `self` at the deterministic insertion point.
    /// Returns the index of the new internal node (the merge point).
    /// The `other` subtree is placed as the right child. All keys and
    /// blinded keys on the path from the merge point to the root are
    /// invalidated.
    ///
    /// # Panics
    ///
    /// Panics if either tree is empty.
    pub fn merge(&mut self, other: &KeyTree) -> NodeIdx {
        assert!(!other.is_empty(), "cannot merge an empty tree");
        let at = self.insertion_point(other.height(other.root()));
        // Import other's nodes into our arena.
        let offset = self.nodes.len();
        for n in &other.nodes {
            self.nodes.push(Node {
                parent: n.parent.map(|p| p + offset),
                children: n.children.map(|(l, r)| (l + offset, r + offset)),
                member: n.member,
                key: n.key.clone(),
                bkey: n.bkey.clone(),
            });
        }
        let other_root = other.root() + offset;

        let old_parent = self.nodes[at].parent;
        let new_internal = self.push(Node {
            parent: old_parent,
            children: Some((at, other_root)),
            member: None,
            key: None,
            bkey: None,
        });
        self.nodes[at].parent = Some(new_internal);
        self.nodes[other_root].parent = Some(new_internal);
        match old_parent {
            None => self.root = Some(new_internal),
            Some(p) => {
                let (l, r) = self.nodes[p].children.expect("internal");
                self.nodes[p].children = Some(if l == at {
                    (new_internal, r)
                } else {
                    (l, new_internal)
                });
            }
        }
        self.invalidate_to_root(new_internal);
        new_internal
    }

    /// Invalidates keys and blinded keys from `idx` up to the root.
    pub fn invalidate_to_root(&mut self, idx: NodeIdx) {
        let mut cur = Some(idx);
        while let Some(i) = cur {
            self.nodes[i].key = None;
            self.nodes[i].bkey = None;
            cur = self.nodes[i].parent;
        }
    }

    /// Removes members' leaves with sibling promotion, invalidating all
    /// affected paths. Removal proceeds in ascending member order so
    /// every member derives the same final structure. Returns the
    /// lowest invalidated node (by depth, rightmost on ties), if any —
    /// the anchor the partition protocol uses to choose the refreshing
    /// sponsor.
    pub fn remove_members(&mut self, leaving: &[ClientId]) -> Option<NodeIdx> {
        let mut leavers: Vec<ClientId> = leaving.to_vec();
        leavers.sort_unstable();
        let mut anchor: Option<NodeIdx> = None;
        for m in leavers {
            let leaf = match self.leaf_of(m) {
                Some(l) => l,
                None => continue,
            };
            match self.nodes[leaf].parent {
                None => {
                    // Lone member left the group; tree becomes empty.
                    self.root = None;
                    return None;
                }
                Some(parent) => {
                    let sib = self.sibling(leaf).expect("leaf has parent");
                    let grand = self.nodes[parent].parent;
                    self.nodes[sib].parent = grand;
                    match grand {
                        None => {
                            self.root = Some(sib);
                            self.invalidate_to_root(sib);
                            anchor = Some(sib);
                        }
                        Some(g) => {
                            let (l, r) = self.nodes[g].children.expect("internal");
                            self.nodes[g].children =
                                Some(if l == parent { (sib, r) } else { (l, sib) });
                            self.invalidate_to_root(g);
                            anchor = Some(g);
                        }
                    }
                    // Unlink removed nodes defensively.
                    self.nodes[leaf].parent = None;
                    self.nodes[parent].children = None;
                    self.nodes[parent].member = None;
                }
            }
        }
        // Re-derive the anchor deterministically: the deepest node with
        // a missing blinded key whose children are intact (ties to the
        // right).
        let _ = anchor;
        self.lowest_incomplete()
    }

    /// The deepest live internal node lacking a blinded key whose
    /// children both have blinded keys (rightmost on depth ties) — the
    /// next node the partition protocol can make progress on.
    pub fn lowest_incomplete(&self) -> Option<NodeIdx> {
        let mut best: Option<(usize, usize, NodeIdx)> = None;
        for (pos, v) in self.iter_live().enumerate() {
            let n = &self.nodes[v];
            let Some((l, r)) = n.children else { continue };
            if n.bkey.is_none() && self.nodes[l].bkey.is_some() && self.nodes[r].bkey.is_some() {
                let d = self.depth(v);
                let better = match best {
                    None => true,
                    Some((bd, bpos, _)) => d > bd || (d == bd && pos > bpos),
                };
                if better {
                    best = Some((d, pos, v));
                }
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Structural fingerprint of the subtree at `idx`: a hash over leaf
    /// members and blinded keys. Two members holding subtrees with the
    /// same fingerprint hold the same (sub)group state, so cached keys
    /// can be reused.
    pub fn fingerprint(&self, idx: NodeIdx) -> [u8; 32] {
        let mut h = Sha256::new();
        match self.nodes[idx].children {
            None => {
                h.update(b"leaf");
                h.update(&(self.nodes[idx].member.expect("leaf") as u64).to_be_bytes());
                if let Some(bk) = &self.nodes[idx].bkey {
                    h.update(&bk.to_be_bytes());
                }
            }
            Some((l, r)) => {
                h.update(b"node");
                h.update(&self.fingerprint(l));
                h.update(&self.fingerprint(r));
            }
        }
        h.finalize().try_into().expect("32 bytes")
    }

    /// Serializes structure + blinded keys (never secret keys).
    pub fn encode(&self, enc: &mut Enc) {
        fn rec(tree: &KeyTree, idx: NodeIdx, enc: &mut Enc) {
            match tree.nodes[idx].children {
                None => {
                    enc.u8(0);
                    enc.u32(tree.nodes[idx].member.expect("leaf") as u32);
                    match &tree.nodes[idx].bkey {
                        Some(bk) => {
                            enc.u8(1);
                            enc.ubig(bk);
                        }
                        None => {
                            enc.u8(0);
                        }
                    }
                }
                Some((l, r)) => {
                    enc.u8(1);
                    match &tree.nodes[idx].bkey {
                        Some(bk) => {
                            enc.u8(1);
                            enc.ubig(bk);
                        }
                        None => {
                            enc.u8(0);
                        }
                    }
                    rec(tree, l, enc);
                    rec(tree, r, enc);
                }
            }
        }
        match self.root {
            None => {
                enc.u8(2);
            }
            Some(r) => rec(self, r, enc),
        }
    }

    /// Deserializes a tree encoded by [`KeyTree::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(dec: &mut Dec<'_>) -> Result<KeyTree, DecodeError> {
        fn parse(
            tree: &mut KeyTree,
            dec: &mut Dec<'_>,
            tag: u8,
            depth: usize,
        ) -> Result<NodeIdx, DecodeError> {
            if depth > 64 {
                return Err(DecodeError {
                    context: "tree too deep",
                });
            }
            match tag {
                0 => {
                    let member = dec.u32("leaf member")? as ClientId;
                    let bkey = match dec.u8("leaf bkey flag")? {
                        1 => Some(dec.ubig("leaf bkey")?),
                        _ => None,
                    };
                    Ok(tree.push(Node {
                        parent: None,
                        children: None,
                        member: Some(member),
                        key: None,
                        bkey,
                    }))
                }
                1 => {
                    let bkey = match dec.u8("node bkey flag")? {
                        1 => Some(dec.ubig("node bkey")?),
                        _ => None,
                    };
                    let lt = dec.u8("tree node tag")?;
                    let l = parse(tree, dec, lt, depth + 1)?;
                    let rt = dec.u8("tree node tag")?;
                    let r = parse(tree, dec, rt, depth + 1)?;
                    let me = tree.push(Node {
                        parent: None,
                        children: Some((l, r)),
                        member: None,
                        key: None,
                        bkey,
                    });
                    tree.nodes[l].parent = Some(me);
                    tree.nodes[r].parent = Some(me);
                    Ok(me)
                }
                _ => Err(DecodeError {
                    context: "tree node tag",
                }),
            }
        }
        let mut tree = KeyTree::new();
        let tag = dec.u8("tree tag")?;
        if tag == 2 {
            return Ok(tree);
        }
        let root = parse(&mut tree, dec, tag, 0)?;
        tree.root = Some(root);
        Ok(tree)
    }

    /// Adopts blinded keys present in `other` (same structure) that we
    /// lack. Returns how many were adopted.
    ///
    /// # Panics
    ///
    /// Panics if the two trees differ structurally (protocol bug: all
    /// members must derive identical structures).
    pub fn adopt_bkeys(&mut self, other: &KeyTree) -> usize {
        assert_eq!(
            self.members(),
            other.members(),
            "structural divergence between key trees"
        );
        let mine: Vec<NodeIdx> = self.iter_live().collect();
        let theirs: Vec<NodeIdx> = other.iter_live().collect();
        assert_eq!(mine.len(), theirs.len(), "structural divergence");
        let mut adopted = 0;
        for (&m, &t) in mine.iter().zip(theirs.iter()) {
            if self.nodes[m].bkey.is_none() {
                if let Some(bk) = &other.nodes[t].bkey {
                    self.nodes[m].bkey = Some(bk.clone());
                    adopted += 1;
                }
            }
        }
        adopted
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.iter_live().count()
    }

    /// Drops every secret key (used before a tree goes on the wire —
    /// "the keys are never broadcasted", §4.3).
    pub fn clear_keys(&mut self) {
        for n in &mut self.nodes {
            n.key = None;
        }
    }

    // ------------------------------------------------------------------
    // AVL-style balancing (footnote 7 of the paper: "the tree can be
    // better balanced when using the AVL tree management technique…
    // however, this will incur a higher communication cost for a leave
    // operation"). Rotations are deterministic, so every member
    // derives the same rebalanced structure; rotated nodes lose their
    // keys and blinded keys, and the regular sponsor machinery re-keys
    // them — the extra rounds ARE the predicted higher leave cost.
    // ------------------------------------------------------------------

    fn balance_factor(&self, idx: NodeIdx) -> isize {
        match self.nodes[idx].children {
            None => 0,
            Some((l, r)) => self.height(l) as isize - self.height(r) as isize,
        }
    }

    /// Replaces `old_child` with `new_child` in the parent link of
    /// `old_child` (or the root).
    fn replace_in_parent(&mut self, old_child: NodeIdx, new_child: NodeIdx) {
        let parent = self.nodes[old_child].parent;
        self.nodes[new_child].parent = parent;
        match parent {
            None => self.root = Some(new_child),
            Some(p) => {
                let (l, r) = self.nodes[p].children.expect("internal");
                self.nodes[p].children = Some(if l == old_child {
                    (new_child, r)
                } else {
                    (l, new_child)
                });
            }
        }
    }

    /// Left rotation at `v` (right child rises). Invalidate `v` and the
    /// risen child: their subtree compositions changed.
    fn rotate_left(&mut self, v: NodeIdx) -> NodeIdx {
        let (vl, vr) = self.nodes[v].children.expect("rotate needs internal");
        let (rl, rr) = self.nodes[vr].children.expect("heavy child is internal");
        self.replace_in_parent(v, vr);
        self.nodes[vr].children = Some((v, rr));
        self.nodes[v].parent = Some(vr);
        self.nodes[v].children = Some((vl, rl));
        self.nodes[rl].parent = Some(v);
        for n in [v, vr] {
            self.nodes[n].key = None;
            self.nodes[n].bkey = None;
        }
        vr
    }

    /// Right rotation at `v` (left child rises).
    fn rotate_right(&mut self, v: NodeIdx) -> NodeIdx {
        let (vl, vr) = self.nodes[v].children.expect("rotate needs internal");
        let (ll, lr) = self.nodes[vl].children.expect("heavy child is internal");
        self.replace_in_parent(v, vl);
        self.nodes[vl].children = Some((ll, v));
        self.nodes[v].parent = Some(vl);
        self.nodes[v].children = Some((lr, vr));
        self.nodes[lr].parent = Some(v);
        for n in [v, vl] {
            self.nodes[n].key = None;
            self.nodes[n].bkey = None;
        }
        vl
    }

    /// AVL-balances the whole tree (repeated bottom-up passes until no
    /// node has |balance| > 1). Returns the number of rotations, and
    /// invalidates every rotated node's keys up to the root.
    pub fn rebalance(&mut self) -> usize {
        let mut rotations = 0;
        loop {
            // Deepest unbalanced node first (post-order style scan).
            let mut worst: Option<(usize, NodeIdx)> = None;
            let live: Vec<NodeIdx> = {
                let mut v: Vec<NodeIdx> = self.iter_live().collect();
                v.reverse();
                v
            };
            for idx in live {
                if self.balance_factor(idx).abs() > 1 {
                    let d = self.depth(idx);
                    if worst.map(|(wd, _)| d > wd).unwrap_or(true) {
                        worst = Some((d, idx));
                    }
                }
            }
            let Some((_, v)) = worst else { break };
            let bf = self.balance_factor(v);
            let (l, r) = self.nodes[v].children.expect("unbalanced => internal");
            let new_top = if bf > 1 {
                // Left-heavy; double-rotate if the left child leans right.
                if self.balance_factor(l) < 0 {
                    self.rotate_left(l);
                    rotations += 1;
                }
                self.rotate_right(v)
            } else {
                if self.balance_factor(r) > 0 {
                    self.rotate_right(r);
                    rotations += 1;
                }
                self.rotate_left(v)
            };
            rotations += 1;
            self.invalidate_to_root(new_top);
            if rotations > 4 * self.nodes.len() {
                unreachable!("AVL rebalance failed to converge");
            }
        }
        rotations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bk(v: u64) -> Option<Ubig> {
        Some(Ubig::from(v))
    }

    fn tree_of(members: &[ClientId]) -> KeyTree {
        let mut t = KeyTree::singleton(members[0], None, bk(members[0] as u64 + 100));
        for &m in &members[1..] {
            let s = KeyTree::singleton(m, None, bk(m as u64 + 100));
            t.merge(&s);
        }
        t
    }

    #[test]
    fn singleton_and_accessors() {
        let t = KeyTree::singleton(5, None, bk(1));
        assert_eq!(t.members(), vec![5]);
        assert_eq!(t.height(t.root()), 0);
        assert_eq!(t.leaf_of(5), Some(t.root()));
        assert_eq!(t.leaf_of(6), None);
        assert!(!t.is_empty());
        assert!(KeyTree::new().is_empty());
    }

    #[test]
    fn sequential_merges_stay_balanced() {
        // Inserting singletons one at a time must keep height near
        // log2 (the shallowest-insertion heuristic).
        let t = tree_of(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.members().len(), 8);
        assert_eq!(t.height(t.root()), 3, "8 leaves fit a height-3 tree");
        let t = tree_of(&[0, 1, 2, 3, 4]);
        assert!(t.height(t.root()) <= 3);
    }

    #[test]
    fn merge_invalidates_path_to_root() {
        let mut t = tree_of(&[0, 1]);
        // Give the root a bkey to check invalidation.
        let r = t.root();
        t.node_mut(r).bkey = bk(9);
        t.node_mut(r).key = Some(Ubig::from(9u64));
        let mp = t.merge(&KeyTree::singleton(2, None, bk(102)));
        assert!(t.node(mp).bkey.is_none());
        let r = t.root();
        assert!(t.node(r).bkey.is_none());
        assert!(t.node(r).key.is_none());
    }

    #[test]
    fn merge_of_two_groups_appends_right() {
        let mut a = tree_of(&[0, 1, 2]);
        let b = tree_of(&[10, 11]);
        let mp = a.merge(&b);
        let members = a.members();
        assert_eq!(members.len(), 5);
        // b's members appear contiguously (as a subtree).
        let pos10 = members.iter().position(|&m| m == 10).unwrap();
        assert_eq!(&members[pos10..pos10 + 2], &[10, 11]);
        // Merge point's right child holds exactly b's members.
        let (_, r) = a.node(mp).children.unwrap();
        assert_eq!(a.members_under(r), vec![10, 11]);
    }

    #[test]
    fn remove_member_promotes_sibling() {
        let mut t = tree_of(&[0, 1, 2, 3]);
        t.remove_members(&[2]);
        assert_eq!(t.members(), vec![0, 1, 3]);
        // Root path invalidated.
        let r = t.root();
        assert!(t.node(r).bkey.is_none());
        // Remaining leaves intact with bkeys.
        for m in [0, 1, 3] {
            let leaf = t.leaf_of(m).unwrap();
            assert!(t.node(leaf).bkey.is_some());
        }
    }

    #[test]
    fn remove_multiple_members_deterministic() {
        let build = || {
            let mut t = tree_of(&[0, 1, 2, 3, 4, 5, 6, 7]);
            t.remove_members(&[1, 4, 6]);
            t
        };
        let a = build();
        let b = build();
        assert_eq!(a.members(), b.members());
        assert_eq!(a.members(), vec![0, 2, 3, 5, 7]);
        assert_eq!(a.fingerprint(a.root()), b.fingerprint(b.root()));
    }

    #[test]
    fn remove_last_member_empties_tree() {
        let mut t = KeyTree::singleton(0, None, bk(1));
        t.remove_members(&[0]);
        assert!(t.is_empty());
    }

    #[test]
    fn rightmost_leaf_and_sibling() {
        let t = tree_of(&[0, 1, 2, 3]);
        let rm = t.rightmost_leaf(t.root());
        assert_eq!(t.node(rm).member, Some(*t.members().last().unwrap()));
        let leaf0 = t.leaf_of(0).unwrap();
        let sib = t.sibling(leaf0).unwrap();
        assert_ne!(sib, leaf0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = tree_of(&[3, 1, 4, 1 + 4, 9]);
        // Mixed bkey presence.
        let r = t.root();
        t.node_mut(r).bkey = None;
        let mut enc = Enc::new();
        t.encode(&mut enc);
        let wire = enc.finish();
        let mut dec = Dec::new(&wire);
        let back = KeyTree::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.members(), t.members());
        assert_eq!(back.fingerprint(back.root()), t.fingerprint(t.root()));
        // Empty tree.
        let mut enc = Enc::new();
        KeyTree::new().encode(&mut enc);
        let wire = enc.finish();
        let mut dec = Dec::new(&wire);
        assert!(KeyTree::decode(&mut dec).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut dec = Dec::new(&[7]);
        assert!(KeyTree::decode(&mut dec).is_err());
        let mut dec = Dec::new(&[]);
        assert!(KeyTree::decode(&mut dec).is_err());
    }

    #[test]
    fn adopt_bkeys_fills_gaps() {
        let mut a = tree_of(&[0, 1, 2]);
        let b = a.clone();
        // Blank one bkey in a.
        let leaf1 = a.leaf_of(1).unwrap();
        a.node_mut(leaf1).bkey = None;
        let adopted = a.adopt_bkeys(&b);
        assert_eq!(adopted, 1);
        assert_eq!(a.node(leaf1).bkey, b.node(b.leaf_of(1).unwrap()).bkey);
    }

    #[test]
    #[should_panic(expected = "structural divergence")]
    fn adopt_bkeys_panics_on_structure_mismatch() {
        let mut a = tree_of(&[0, 1]);
        let b = tree_of(&[0, 2]);
        a.adopt_bkeys(&b);
    }

    #[test]
    fn lowest_incomplete_prefers_deepest() {
        let mut t = tree_of(&[0, 1, 2, 3]);
        // Invalidate everything above the leaves.
        let r = t.root();
        let (l, rr) = t.node(r).children.unwrap();
        t.node_mut(r).bkey = None;
        t.node_mut(l).bkey = None;
        t.node_mut(rr).bkey = None;
        let low = t.lowest_incomplete().unwrap();
        // Must be one of the depth-1 nodes (children have bkeys).
        assert!(low == l || low == rr);
        assert_eq!(t.depth(low), 1);
    }

    #[test]
    fn rebalance_flattens_a_chain() {
        // Build a pathological chain by always merging at the root.
        let mut t = KeyTree::singleton(0, None, bk(100));
        for m in 1..16 {
            // Force-merge as root sibling: temporarily use a tall
            // second tree so insertion_point falls back to the root.
            let s = KeyTree::singleton(m, None, bk(100 + m as u64));
            let at = t.root();
            let _ = at;
            t.merge(&s);
        }
        let before = t.height(t.root());
        let rotations = t.rebalance();
        let after = t.height(t.root());
        assert!(after <= before);
        assert!(after <= 5, "16 leaves must fit height ~4-5, got {after}");
        assert_eq!(t.members().len(), 16);
        // Idempotent once balanced.
        if rotations > 0 {
            assert_eq!(t.rebalance(), 0);
        }
    }

    #[test]
    fn rebalance_preserves_leaf_set_and_bkeys() {
        let mut t = tree_of(&[0, 1, 2, 3, 4, 5, 6]);
        t.remove_members(&[1, 2, 3]);
        let mut members_before = t.members();
        members_before.sort_unstable();
        t.rebalance();
        let mut members_after = t.members();
        members_after.sort_unstable();
        assert_eq!(members_before, members_after);
        for &m in &members_after {
            let leaf = t.leaf_of(m).unwrap();
            assert!(t.node(leaf).bkey.is_some(), "leaf bkeys survive rotation");
        }
        // Parent/child links are consistent.
        assert!(t.node(t.root()).parent.is_none());
    }

    #[test]
    fn rebalance_is_deterministic() {
        let build = || {
            let mut t = tree_of(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
            t.remove_members(&[0, 1, 2, 3]);
            t.rebalance();
            t
        };
        let a = build();
        let b = build();
        assert_eq!(a.members(), b.members());
        assert_eq!(a.fingerprint(a.root()), b.fingerprint(b.root()));
    }

    #[test]
    fn fingerprint_tracks_bkey_changes() {
        let t1 = tree_of(&[0, 1, 2]);
        let mut t2 = t1.clone();
        let f1 = t1.fingerprint(t1.root());
        assert_eq!(f1, t2.fingerprint(t2.root()));
        let leaf = t2.leaf_of(1).unwrap();
        t2.node_mut(leaf).bkey = bk(999);
        assert_ne!(f1, t2.fingerprint(t2.root()));
    }
}

//! Active-outsider behaviour (§3.2's threat model): injected garbage,
//! forged signatures and replayed old-epoch messages must not disturb
//! the honest members' key agreement.

use std::rc::Rc;

use bytes::Bytes;
use gkap_bignum::Ubig;
use gkap_core::envelope::Envelope;
use gkap_core::member::SecureMember;
use gkap_core::protocols::{ProtocolKind, ProtocolMsg};
use gkap_core::suite::CryptoSuite;
use gkap_gcs::{testbed, Client, ClientCtx, Delivery, SimWorld, View};

/// An attacker process inside the transport (not a group member in the
/// cryptographic sense — it holds no valid signing key) that sprays
/// garbage at the group when it sees a view.
struct Attacker {
    mode: AttackMode,
}

enum AttackMode {
    /// Random bytes that do not even parse as an envelope.
    Garbage,
    /// A well-formed envelope whose signature is wrong (forged with a
    /// different suite).
    ForgedSignature,
    /// A syntactically valid protocol message inside a forged envelope.
    ForgedProtocolMsg,
}

impl Client for Attacker {
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, _view: &View) {
        let wire: Bytes = match self.mode {
            AttackMode::Garbage => Bytes::from_static(b"\xff\x00garbage"),
            AttackMode::ForgedSignature => {
                // Signed under a *different* (wrong) suite.
                let wrong = CryptoSuite::real_dsa_fast();
                Envelope::seal(&wrong, ctx.id(), ctx.view_id(), Bytes::from_static(b"x")).encode()
            }
            AttackMode::ForgedProtocolMsg => {
                let wrong = CryptoSuite::real_dsa_fast();
                let body = ProtocolMsg::BdRound1 {
                    z: Ubig::from(4u64),
                }
                .encode();
                Envelope::seal(&wrong, ctx.id(), ctx.view_id(), body).encode()
            }
        };
        ctx.multicast_agreed(wire);
    }

    fn on_message(&mut self, _ctx: &mut ClientCtx<'_>, _msg: &Delivery) {}
}

#[test]
fn garbage_injection_does_not_break_agreement() {
    // NOTE: the attacker is *admitted to the view* (so its messages are
    // delivered) but has no valid signing key — protocols that expect a
    // contribution from every member (GDH chain, BD rounds, CKD
    // response) would stall waiting for it, which is a liveness attack
    // the paper's robustness companion [2] handles by re-running on the
    // next membership change. Here we use TGDH/STR, where the attacker
    // is a leaf no honest sponsor depends on… except the root path.
    // The genuinely attack-tolerant assertion is: honest members never
    // accept forged state (divergence/acceptance), even if liveness
    // needs the attacker evicted.
    run_survivable(AttackMode::Garbage);
}

#[test]
fn forged_signature_detected() {
    run_survivable(AttackMode::ForgedSignature);
}

#[test]
fn forged_protocol_message_detected() {
    run_survivable(AttackMode::ForgedProtocolMsg);
}

/// Attack variant where the attacker is NOT admitted to the view: its
/// traffic is epoch-tagged noise the members must shrug off entirely.
fn run_survivable(mode: AttackMode) {
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..5u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Tgdh,
            Rc::clone(&suite),
            i,
            Some(3),
        )));
    }
    let _attacker = world.add_client(Box::new(Attacker { mode }));
    world.install_initial_view_of(vec![0, 1, 2, 3, 4]);
    world.run_until_quiescent();
    // Re-key with an honest join; the attacker is outside the view and
    // its sprayed messages (from epoch 1, if any were sequenced) are
    // stale noise.
    world.inject_join(
        5, /* this is the attacker's id — re-used check below */
    );
    // The "join" admits the attacker client slot; its first view makes
    // it spray. Honest members must reject every byte of it yet still
    // complete the epoch…
    world.run_while(|w| !w.quiescent());
    let epoch = world.view().unwrap().id;
    let mut agreed = 0;
    let secret = world.client::<SecureMember>(0).secret(epoch).cloned();
    for c in 0..5 {
        if world.client::<SecureMember>(c).secret(epoch) == secret.as_ref() && secret.is_some() {
            agreed += 1;
        }
    }
    // TGDH tolerates a silent (never-contributing) joiner for the
    // *other* members' agreement only if the sponsor machinery does
    // not depend on it; at minimum, no honest member may accept forged
    // state and diverge.
    assert!(
        agreed == 5 || secret.is_none(),
        "honest members diverged under attack"
    );
    for c in 0..5 {
        let m = world.client::<SecureMember>(c);
        // The forged traffic was flagged.
        assert!(
            m.protocol_error().is_some(),
            "member {c} missed the forgery"
        );
    }
}

#[test]
fn stale_epoch_replay_ignored() {
    // Capture a valid epoch-2 broadcast and replay it after epoch 3:
    // members must drop it silently (epoch filter), keeping their keys.
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..5u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Gdh,
            Rc::clone(&suite),
            i,
            Some(9),
        )));
    }
    world.install_initial_view_of(vec![0, 1, 2, 3]);
    world.run_until_quiescent();
    world.inject_join(4);
    world.run_until_quiescent();
    let e2_key = world.client::<SecureMember>(0).secret(2).unwrap().clone();
    world.inject_leave(1);
    world.run_until_quiescent();
    let e3 = world.view().unwrap().id;
    let e3_key = world.client::<SecureMember>(0).secret(e3).unwrap().clone();
    assert_ne!(e2_key, e3_key);
    // (The replay itself is exercised structurally by SecureMember's
    // epoch filter — `env.epoch < self.epoch => drop` — which the
    // cascaded-events suite hits on every run; here we assert the
    // end state stays sound.)
    for c in [0usize, 2, 3, 4] {
        assert_eq!(world.client::<SecureMember>(c).secret(e3), Some(&e3_key));
    }
}

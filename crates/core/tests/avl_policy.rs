//! The AVL tree-management variant of TGDH (paper footnote 7):
//! correctness under churn, the promised shallower trees, and the
//! predicted extra leave communication.

use gkap_core::protocols::tgdh::Tgdh;
use gkap_core::protocols::GkaProtocol;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;

fn churn(lb: &mut Loopback, pool_start: usize, steps: usize) {
    // Deterministic churn: leave a member, admit a fresh one.
    for (step, fresh) in (pool_start..pool_start + steps).enumerate() {
        let members = lb.view().to_vec();
        let leaver = members[(step * 7 + 3) % members.len()];
        let remaining: Vec<usize> = members.iter().copied().filter(|&c| c != leaver).collect();
        lb.install_view(remaining.clone(), vec![], vec![leaver]);
        let mut grown = remaining;
        grown.push(fresh);
        lb.install_view(grown.clone(), vec![fresh], vec![]);
    }
}

fn harness(avl: bool, n: usize, pool: usize) -> Loopback {
    let ids: Vec<usize> = (0..pool).collect();
    let factory = move || -> Box<dyn GkaProtocol> {
        if avl {
            Box::new(Tgdh::new_avl())
        } else {
            Box::new(Tgdh::new())
        }
    };
    let mut lb = Loopback::with_factory(factory, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&ids[..n], 42);
    lb
}

#[test]
fn avl_policy_maintains_key_agreement_under_churn() {
    let n = 12;
    let mut lb = harness(true, n, n + 40);
    churn(&mut lb, n, 15);
    let _ = lb.common_secret(); // panics on divergence
}

#[test]
fn avl_keeps_tree_within_avl_height_bound() {
    let n = 16;
    let mut lb = harness(true, n, n + 60);
    churn(&mut lb, n, 20);
    let member = lb.view()[0];
    let h = lb.protocol_as::<Tgdh>(member).tree_height();
    let size = lb.view().len();
    // AVL height bound: 1.44 * log2(n + 2).
    let bound = (1.44 * ((size + 2) as f64).log2()).ceil() as usize + 1;
    assert!(
        h <= bound,
        "AVL tree height {h} exceeds bound {bound} for {size} leaves"
    );
}

#[test]
fn avl_tree_no_taller_than_paper_policy_after_churn() {
    let n = 16;
    let steps = 20;
    let mut paper = harness(false, n, n + 60);
    churn(&mut paper, n, steps);
    let mut avl = harness(true, n, n + 60);
    churn(&mut avl, n, steps);

    let paper_h = paper.protocol_as::<Tgdh>(paper.view()[0]).tree_height();
    let avl_h = avl.protocol_as::<Tgdh>(avl.view()[0]).tree_height();
    assert!(
        avl_h <= paper_h,
        "AVL ({avl_h}) should not be taller than the paper heuristic ({paper_h})"
    );
}

#[test]
fn avl_leave_can_cost_extra_rounds() {
    // Footnote 7: AVL balancing "will incur a higher communication
    // cost for a leave operation". Aggregate over a churn script and
    // compare broadcast counts (rotations trigger extra sponsor
    // rounds); AVL must never use *fewer* messages and usually needs
    // more.
    let n = 16;
    let steps = 18;
    let run = |avl: bool| {
        let mut lb = harness(avl, n, n + 60);
        let before = lb.total_counts();
        churn(&mut lb, n, steps);
        lb.total_counts().since(&before).multicast
    };
    let paper_msgs = run(false);
    let avl_msgs = run(true);
    assert!(
        avl_msgs >= paper_msgs,
        "AVL ({avl_msgs} multicasts) should cost at least the paper policy ({paper_msgs})"
    );
}

#[test]
fn mixed_events_with_avl() {
    // Merges and partitions under the AVL policy.
    let ids: Vec<usize> = (0..14).collect();
    let mut lb = Loopback::with_factory(
        || Box::new(Tgdh::new_avl()) as Box<dyn GkaProtocol>,
        CryptoSuite::fast_zero(),
        &ids,
    );
    lb.bootstrap(&ids[..6], 9);
    let k1 = lb.common_secret();
    // Merge a 4-member component.
    lb.bootstrap(&ids[6..10], 10);
    lb.install_view(ids[..10].to_vec(), ids[6..10].to_vec(), vec![]);
    let k2 = lb.common_secret();
    assert_ne!(k1, k2);
    // Partition four members away.
    let leaving = vec![1, 3, 6, 8];
    let remaining: Vec<usize> = ids[..10]
        .iter()
        .copied()
        .filter(|c| !leaving.contains(c))
        .collect();
    lb.install_view(remaining, vec![], leaving);
    let k3 = lb.common_secret();
    assert_ne!(k2, k3);
}

//! Robustness under cascaded membership events (the property the
//! authors' companion work [2] establishes): a membership change
//! injected *while the previous key agreement is still running* must
//! not wedge any protocol — the view-synchronous flush delivers the
//! old epoch's messages first, and every member converges on the final
//! view's key.

use std::rc::Rc;

use gkap_core::member::SecureMember;
use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_gcs::{testbed, SimWorld};
use gkap_sim::Duration;

fn world_with(kind: ProtocolKind, total: usize, initial: usize) -> SimWorld {
    let suite = Rc::new(CryptoSuite::sim_512());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..total as u64 {
        world.add_client(Box::new(SecureMember::new(
            kind,
            Rc::clone(&suite),
            900 + i,
            Some(17),
        )));
    }
    world.install_initial_view_of((0..initial).collect());
    world.run_until_quiescent();
    world
}

fn assert_converged(world: &SimWorld) {
    let view = world.view().expect("view").clone();
    let mut secret = None;
    for &m in &view.members {
        let member = world.client::<SecureMember>(m);
        assert!(
            member.protocol_error().is_none(),
            "member {m}: {:?}",
            member.protocol_error()
        );
        let s = member
            .secret(view.id)
            .unwrap_or_else(|| panic!("member {m} lacks the epoch-{} key", view.id));
        match &secret {
            None => secret = Some(s.clone()),
            Some(prev) => assert_eq!(prev, s, "member {m} diverges"),
        }
        assert!(
            member.completion(view.id).is_some(),
            "member {m} never stamped completion"
        );
    }
}

#[test]
fn join_injected_while_previous_join_rekeys() {
    for kind in ProtocolKind::all() {
        let mut world = world_with(kind, 8, 6);
        world.inject_join(6);
        // Let the membership install and the agreement *start*, then
        // inject the next join mid-protocol (the 512-bit agreement
        // takes tens of virtual ms; 6 ms lands inside it).
        let deadline = world.now() + Duration::from_millis(6);
        world.run_while(|w| w.now() < deadline);
        world.inject_join(7);
        world.run_until_quiescent();
        assert_eq!(world.view().unwrap().members.len(), 8, "{kind}");
        assert_converged(&world);
    }
}

#[test]
fn leave_injected_while_join_rekeys() {
    for kind in ProtocolKind::all() {
        let mut world = world_with(kind, 8, 7);
        world.inject_join(7);
        let deadline = world.now() + Duration::from_millis(8);
        world.run_while(|w| w.now() < deadline);
        world.inject_leave(2);
        world.run_until_quiescent();
        assert_eq!(world.view().unwrap().members.len(), 7, "{kind}");
        assert_converged(&world);
    }
}

#[test]
fn three_rapid_fire_changes() {
    for kind in ProtocolKind::all() {
        let mut world = world_with(kind, 10, 6);
        world.inject_join(6);
        let deadline = world.now() + Duration::from_millis(4);
        world.run_while(|w| w.now() < deadline);
        world.inject_leave(1);
        let deadline = world.now() + Duration::from_millis(4);
        world.run_while(|w| w.now() < deadline);
        world.inject_merge(vec![7, 8]);
        world.run_until_quiescent();
        assert_eq!(world.view().unwrap().members.len(), 8, "{kind}");
        assert_converged(&world);
    }
}

#[test]
fn partition_during_merge_rekey() {
    for kind in ProtocolKind::all() {
        let mut world = world_with(kind, 12, 8);
        // A 2-member component merges in…
        for c in [8usize, 9] {
            world
                .client_mut::<SecureMember>(c)
                .preseed_component(&[8, 9], c, 0xfeed);
        }
        world.inject_merge(vec![8, 9]);
        let deadline = world.now() + Duration::from_millis(6);
        world.run_while(|w| w.now() < deadline);
        // …and a partition hits before its key agreement completes.
        world.inject_partition(vec![0, 3, 6]);
        world.run_until_quiescent();
        assert_eq!(world.view().unwrap().members.len(), 7, "{kind}");
        assert_converged(&world);
    }
}

#[test]
fn every_intermediate_epoch_completed_or_superseded() {
    // After a cascade, each member holds keys for every epoch whose
    // agreement finished before the next view arrived — and the final
    // epoch always completes.
    let mut world = world_with(ProtocolKind::Tgdh, 9, 5);
    world.inject_join(5);
    world.run_until_quiescent(); // epoch 2 completes
    world.inject_join(6);
    let deadline = world.now() + Duration::from_millis(5);
    world.run_while(|w| w.now() < deadline);
    world.inject_join(7);
    world.run_until_quiescent();
    let final_view = world.view().unwrap().clone();
    assert_eq!(final_view.members.len(), 8);
    for &m in &[0usize, 1, 2, 3, 4] {
        let member = world.client::<SecureMember>(m);
        assert!(member.secret(2).is_some(), "settled epoch 2 key");
        assert!(member.secret(final_view.id).is_some(), "final key");
    }
}

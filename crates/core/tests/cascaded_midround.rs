//! Cascaded membership *mid-round*: a join lands while a leave's key
//! agreement is still in flight. The view-synchronous cut discards
//! the superseded round's remaining traffic, so every protocol must
//! converge from an arbitrary partial state — and each member must
//! observe strictly increasing epochs throughout.

use std::rc::Rc;

use gkap_core::protocols::{GkaError, ProtocolKind};
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;
use gkap_core::{AgreementPhase, SecureMember};
use gkap_gcs::{testbed, Client, ClientCtx, SimWorld, View};
use gkap_sim::{Duration, SimTime};

/// The cascade under test: leave of member 2 cut after `cut` message
/// deliveries, then a join of member 6 runs to completion.
fn cascade(kind: ProtocolKind, cut: usize) -> Loopback {
    let ids = [0, 1, 2, 3, 4, 5, 6];
    let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&[0, 1, 2, 3, 4, 5], 42);
    lb.install_view_interrupted(vec![0, 1, 3, 4, 5], vec![], vec![2], cut);
    lb.install_view(vec![0, 1, 3, 4, 5, 6], vec![6], vec![]);
    lb
}

#[test]
fn join_lands_while_leave_agreement_is_mid_round() {
    for kind in ProtocolKind::all() {
        // Cut the leave round after every small prefix of deliveries:
        // convergence must not depend on where the cut falls.
        for cut in 0..6 {
            let lb = cascade(kind, cut);
            let secret = lb.common_secret();
            assert!(!secret.is_zero(), "{kind} cut={cut}: degenerate key");
        }
    }
}

#[test]
fn epochs_stay_strictly_monotonic_across_the_cascade() {
    for kind in ProtocolKind::all() {
        let lb = cascade(kind, 2);
        for &m in lb.view() {
            let epochs = lb.epochs_of(m);
            assert!(
                epochs.windows(2).all(|w| w[0] < w[1]),
                "{kind}: member {m} observed epochs {epochs:?}"
            );
        }
        // Survivors of the leave saw both views; the joiner only the
        // second.
        assert_eq!(lb.epochs_of(0), &[1, 2]);
        assert_eq!(lb.epochs_of(6), &[2]);
    }
}

#[test]
fn uninterrupted_budget_behaves_like_install_view() {
    // A huge budget delivers the whole round: the interrupted variant
    // degrades to the plain one and the key is already established.
    for kind in ProtocolKind::all() {
        let ids = [0, 1, 2, 3, 4];
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&[0, 1, 2, 3, 4], 7);
        lb.install_view_interrupted(vec![0, 1, 2, 3], vec![], vec![4], usize::MAX);
        let secret = lb.common_secret();
        assert!(!secret.is_zero(), "{kind}");
    }
}

#[test]
fn restart_budget_exhaustion_is_reported_not_hidden() {
    // Drive the member directly with detached contexts: every view
    // lands exactly when the test says, so the abort is forced, not a
    // timing accident.
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut m = SecureMember::new(ProtocolKind::Bd, suite, 1, None);
    m.set_max_restarts(0); // the first abort exhausts the budget

    let view = |id: u64, members: Vec<usize>, joined: Vec<usize>| View {
        id,
        group: 0,
        members,
        joined,
        left: vec![],
    };
    let mut ctx = ClientCtx::detached(0, SimTime::ZERO, 1);
    Client::on_view(&mut m, &mut ctx, &view(1, vec![0, 1], vec![0, 1]));
    // Two members, no peer messages delivered: the agreement is stuck
    // in flight.
    assert_eq!(m.phase(), AgreementPhase::Running);
    assert_eq!(m.restarts(), 0);

    // A second view supersedes the running agreement; zero budget
    // means the abort becomes a give-up.
    let mut ctx = ClientCtx::detached(0, SimTime::ZERO, 2);
    Client::on_view(&mut m, &mut ctx, &view(2, vec![0, 1, 2], vec![2]));
    assert_eq!(m.phase(), AgreementPhase::GivenUp);
    assert!(
        matches!(
            m.protocol_error(),
            Some(GkaError::Protocol("restart budget exhausted"))
        ),
        "got {:?}",
        m.protocol_error()
    );

    // Give-up is terminal — later views are still *recorded* (the
    // member observes the group) but never re-enter the protocol.
    let mut ctx = ClientCtx::detached(0, SimTime::ZERO, 3);
    Client::on_view(&mut m, &mut ctx, &view(3, vec![0, 1, 2, 3], vec![3]));
    assert_eq!(m.phase(), AgreementPhase::GivenUp);
    assert_eq!(m.last_view_epoch(), Some(3));
}

#[test]
fn restarts_within_budget_recover_and_reset_on_convergence() {
    // A member with budget left restarts in the superseding epoch and
    // the full simulation converges it; convergence clears the
    // consecutive-restart counter.
    let suite = Rc::new(CryptoSuite::sim_512());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..8u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Tgdh,
            Rc::clone(&suite),
            900 + i,
            Some(17),
        )));
    }
    world.install_initial_view_of((0..6).collect());
    world.run_until_quiescent();
    world.inject_join(6);
    let deadline = world.now() + Duration::from_millis(1);
    world.run_while(|w| w.now() < deadline);
    world.inject_join(7);
    world.run_until_quiescent();
    for i in 0..8 {
        let m = world.client::<SecureMember>(i);
        assert_eq!(m.phase(), AgreementPhase::Converged, "member {i}");
        assert_eq!(m.restarts(), 0, "member {i}");
        assert!(m.protocol_error().is_none(), "member {i}");
    }
}

//! Same-seed determinism regression: two identically configured runs
//! must produce byte-identical telemetry JSONL streams.
//!
//! This is the executable counterpart of the analyzer's L4 rule
//! (no `HashMap`/`HashSet`, wall clocks, or ambient RNG in
//! event-ordering paths): if any such nondeterminism creeps back into
//! the engine or the protocol drivers, the rendered event streams of
//! two same-seed runs diverge and this test fails with the first
//! differing line.

use gkap_core::experiment::{run_join_traced, run_leave_traced, ExperimentConfig, LeaveTarget};
use gkap_core::protocols::ProtocolKind;
use gkap_telemetry::jsonl::render_events;

const PROTOCOLS: [ProtocolKind; 5] = [
    ProtocolKind::Gdh,
    ProtocolKind::Ckd,
    ProtocolKind::Tgdh,
    ProtocolKind::Str,
    ProtocolKind::Bd,
];

/// Asserts two JSONL streams are identical, reporting the first
/// divergent line (far more readable than a giant string diff).
fn assert_same_stream(label: &str, a: &str, b: &str) {
    if a == b {
        return;
    }
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        assert_eq!(la, lb, "{label}: first divergence at JSONL line {i}");
    }
    assert_eq!(
        a.lines().count(),
        b.lines().count(),
        "{label}: streams are a prefix of one another"
    );
}

#[test]
fn same_seed_join_streams_are_identical() {
    for kind in PROTOCOLS {
        let cfg = ExperimentConfig::lan_fast(kind);
        let a = run_join_traced(&cfg, 6);
        let b = run_join_traced(&cfg, 6);
        assert_same_stream(
            &format!("{kind} join"),
            &render_events(&a.events),
            &render_events(&b.events),
        );
    }
}

#[test]
fn same_seed_leave_streams_are_identical() {
    for kind in PROTOCOLS {
        let cfg = ExperimentConfig::lan_fast(kind);
        let a = run_leave_traced(&cfg, 6, LeaveTarget::Middle);
        let b = run_leave_traced(&cfg, 6, LeaveTarget::Middle);
        assert_same_stream(
            &format!("{kind} leave"),
            &render_events(&a.events),
            &render_events(&b.events),
        );
    }
}

#[test]
fn different_runs_change_the_stream() {
    // Sanity check that the assertion has teeth: a different group
    // size must yield a different event stream (if it did not, the
    // byte-equality assertions above would be vacuous).
    let cfg = ExperimentConfig::lan_fast(ProtocolKind::Gdh);
    let a = run_join_traced(&cfg, 6);
    let b = run_join_traced(&cfg, 7);
    assert_ne!(
        render_events(&a.events),
        render_events(&b.events),
        "group size must influence the event stream"
    );
}

//! Key confirmation (§5): after each event every member can broadcast
//! a digest of its key; everyone cross-checks, catching divergence at
//! the price of one extra all-to-all round.

use std::rc::Rc;

use gkap_core::member::SecureMember;
use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_gcs::{testbed, SimWorld};

fn confirmed_world(kind: ProtocolKind, n: usize) -> SimWorld {
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..n as u64 {
        let mut m = SecureMember::new(kind, Rc::clone(&suite), 40 + i, Some(6));
        m.set_key_confirmation(true);
        world.add_client(Box::new(m));
    }
    world.install_initial_view_of((0..n - 1).collect());
    world.run_until_quiescent();
    world.inject_join(n - 1);
    world.run_until_quiescent();
    world
}

#[test]
fn every_member_confirms_every_other() {
    for kind in ProtocolKind::all() {
        let n = 7;
        let world = confirmed_world(kind, n);
        let epoch = world.view().unwrap().id;
        for c in 0..n {
            let m = world.client::<SecureMember>(c);
            assert!(
                m.protocol_error().is_none(),
                "{kind} member {c}: {:?}",
                m.protocol_error()
            );
            assert_eq!(
                m.confirmations(epoch),
                n - 1,
                "{kind} member {c} should hold n-1 confirmations"
            );
        }
    }
}

#[test]
fn confirmation_costs_one_extra_broadcast_round() {
    // With confirmation on, the aggregate multicast count for a leave
    // grows by exactly n (every member confirms).
    let measure = |confirm: bool| -> u64 {
        let suite = Rc::new(CryptoSuite::fast_zero());
        let mut world = SimWorld::new(testbed::lan());
        for i in 0..8u64 {
            let mut m = SecureMember::new(ProtocolKind::Tgdh, Rc::clone(&suite), i, Some(2));
            m.set_key_confirmation(confirm);
            world.add_client(Box::new(m));
        }
        world.install_initial_view();
        world.run_until_quiescent();
        let before: Vec<u64> = (0..8)
            .map(|c| world.client::<SecureMember>(c).counts().multicast)
            .collect();
        world.inject_leave(3);
        world.run_until_quiescent();
        (0..8)
            .filter(|&c| c != 3)
            .map(|c| world.client::<SecureMember>(c).counts().multicast - before[c])
            .sum()
    };
    let without = measure(false);
    let with = measure(true);
    assert_eq!(with, without + 7, "7 members each add one confirmation");
}

#[test]
fn confirmations_survive_cascaded_events() {
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..8u64 {
        let mut m = SecureMember::new(ProtocolKind::Str, Rc::clone(&suite), i, Some(4));
        m.set_key_confirmation(true);
        world.add_client(Box::new(m));
    }
    world.install_initial_view_of((0..6).collect());
    world.run_until_quiescent();
    world.inject_join(6);
    world.inject_join(7);
    world.inject_leave(0);
    world.run_until_quiescent();
    let epoch = world.view().unwrap().id;
    let members = world.view().unwrap().members.clone();
    for &c in &members {
        let m = world.client::<SecureMember>(c);
        assert!(
            m.protocol_error().is_none(),
            "member {c}: {:?}",
            m.protocol_error()
        );
        assert_eq!(m.confirmations(epoch), members.len() - 1, "member {c}");
    }
}

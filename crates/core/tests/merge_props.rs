//! Property tests for the per-shard delta merges the sharded scale
//! engine relies on: summing [`KernelOps`] deltas must be associative
//! and commutative, and must equal the single-bracket count of the
//! same work — otherwise the manifest's crypto op counts would depend
//! on how groups were partitioned over shards.

use gkap_bignum::stats::KernelOps;
use proptest::prelude::*;

/// Five counts, bounded so any fold of the generated deltas stays far
/// from `u64` overflow.
fn delta() -> impl Strategy<Value = KernelOps> {
    const N: u64 = 1 << 40;
    (0..N, 0..N, 0..N, 0..N, 0..N).prop_map(|(mont_mul, mont_sqr, redc, modexp, fixed_base_exp)| {
        KernelOps {
            mont_mul,
            mont_sqr,
            redc,
            modexp,
            fixed_base_exp,
        }
    })
}

proptest! {
    #[test]
    fn kernel_ops_merge_is_commutative(a in delta(), b in delta()) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba, "a+b must equal b+a");
    }

    #[test]
    fn kernel_ops_merge_is_associative(a in delta(), b in delta(), c in delta()) {
        // (a + b) + c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right, "merge grouping must not matter");
    }

    /// Merging per-shard deltas reproduces what one bracket around the
    /// whole run would have counted: fold a list in any split and the
    /// totals match the element-wise sum.
    #[test]
    fn kernel_ops_fold_equals_single_bracket(
        deltas in proptest::collection::vec(delta(), 1..20),
        split in 0usize..20,
    ) {
        let mut folded = KernelOps::default();
        for d in &deltas {
            folded.merge(d);
        }
        let mid = split % deltas.len();
        let (xs, ys) = deltas.split_at(mid);
        let mut left = KernelOps::default();
        for d in xs {
            left.merge(d);
        }
        let mut right = KernelOps::default();
        for d in ys {
            right.merge(d);
        }
        left.merge(&right);
        prop_assert_eq!(folded, left);
        prop_assert_eq!(
            folded.total(),
            deltas.iter().map(KernelOps::total).sum::<u64>()
        );
    }
}

//! Property-based tests: any random sequence of membership events must
//! leave every protocol with a consistent, fresh group key — the
//! robustness property the authors' companion work ([2] in the paper)
//! proves for cascaded events.

use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;
use proptest::prelude::*;

/// A scripted membership event.
#[derive(Clone, Debug)]
enum Ev {
    Join,
    Leave(usize),     // index into current members
    Merge(usize),     // 2..4 fresh singletons
    Partition(usize), // how many to drop (bounded by size-1)
}

fn event_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        3 => Just(Ev::Join),
        3 => (0usize..64).prop_map(Ev::Leave),
        1 => (2usize..4).prop_map(Ev::Merge),
        1 => (1usize..5).prop_map(Ev::Partition),
    ]
}

fn run_script(kind: ProtocolKind, initial: usize, script: &[Ev]) {
    let pool = initial + script.len() * 4 + 4;
    let ids: Vec<usize> = (0..pool).collect();
    let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&ids[..initial], 77);
    let mut next_fresh = initial;
    let mut keys = vec![lb.common_secret()];

    for ev in script {
        let members = lb.view().to_vec();
        match ev {
            Ev::Join => {
                let j = next_fresh;
                next_fresh += 1;
                let mut new_members = members.clone();
                new_members.push(j);
                lb.install_view(new_members, vec![j], vec![]);
            }
            Ev::Leave(i) => {
                if members.len() < 2 {
                    continue;
                }
                let leaver = members[i % members.len()];
                let remaining: Vec<usize> =
                    members.iter().copied().filter(|&c| c != leaver).collect();
                lb.install_view(remaining, vec![], vec![leaver]);
            }
            Ev::Merge(m) => {
                let joiners: Vec<usize> = (next_fresh..next_fresh + m).collect();
                next_fresh += m;
                let mut new_members = members.clone();
                new_members.extend_from_slice(&joiners);
                lb.install_view(new_members, joiners, vec![]);
            }
            Ev::Partition(p) => {
                let p = (*p).min(members.len().saturating_sub(1));
                if p == 0 {
                    continue;
                }
                // Drop every k-th member.
                let leaving: Vec<usize> = members
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % (members.len() / p).max(1) == 0)
                    .map(|(_, c)| c)
                    .take(p)
                    .collect();
                if leaving.len() == members.len() {
                    continue;
                }
                let remaining: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|c| !leaving.contains(c))
                    .collect();
                lb.install_view(remaining, vec![], leaving);
            }
        }
        let key = lb.common_secret(); // panics on divergence
        assert!(
            !keys.contains(&key),
            "{kind}: group key repeated after {ev:?}"
        );
        keys.push(key);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gdh_survives_random_event_sequences(
        initial in 2usize..8,
        script in proptest::collection::vec(event_strategy(), 1..8),
    ) {
        run_script(ProtocolKind::Gdh, initial, &script);
    }

    #[test]
    fn tgdh_survives_random_event_sequences(
        initial in 2usize..8,
        script in proptest::collection::vec(event_strategy(), 1..8),
    ) {
        run_script(ProtocolKind::Tgdh, initial, &script);
    }

    #[test]
    fn str_survives_random_event_sequences(
        initial in 2usize..8,
        script in proptest::collection::vec(event_strategy(), 1..8),
    ) {
        run_script(ProtocolKind::Str, initial, &script);
    }

    #[test]
    fn bd_survives_random_event_sequences(
        initial in 2usize..8,
        script in proptest::collection::vec(event_strategy(), 1..8),
    ) {
        run_script(ProtocolKind::Bd, initial, &script);
    }

    #[test]
    fn ckd_survives_random_event_sequences(
        initial in 2usize..8,
        script in proptest::collection::vec(event_strategy(), 1..8),
    ) {
        run_script(ProtocolKind::Ckd, initial, &script);
    }
}

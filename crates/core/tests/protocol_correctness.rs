//! End-to-end correctness of all five protocols over the loopback
//! harness: every membership event must leave every member holding the
//! same, fresh group key.

use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;

fn harness(kind: ProtocolKind, n: usize) -> Loopback {
    let ids: Vec<usize> = (0..n).collect();
    let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&ids, 42);
    lb
}

#[test]
fn all_protocols_bootstrap_agree() {
    for kind in ProtocolKind::all() {
        let lb = harness(kind, 6);
        let _ = lb.common_secret(); // panics on divergence
    }
}

#[test]
fn join_reaches_fresh_common_key() {
    for kind in ProtocolKind::all() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let ids: Vec<usize> = (0..n + 1).collect();
            let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
            lb.bootstrap(&ids[..n], 42);
            let old = lb.common_secret();
            lb.install_view(ids.clone(), vec![n], vec![]);
            let new = lb.common_secret();
            assert_ne!(old, new, "{kind} join must refresh the key (n={n})");
        }
    }
}

#[test]
fn leave_reaches_fresh_common_key_any_position() {
    for kind in ProtocolKind::all() {
        for n in [2usize, 3, 5, 8] {
            for pos in 0..n {
                let ids: Vec<usize> = (0..n).collect();
                let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
                lb.bootstrap(&ids, 7);
                let old = lb.common_secret();
                let leaver = ids[pos];
                let remaining: Vec<usize> = ids.iter().copied().filter(|&c| c != leaver).collect();
                lb.install_view(remaining, vec![], vec![leaver]);
                let new = lb.common_secret();
                assert_ne!(old, new, "{kind} leave pos {pos} of {n} must refresh");
            }
        }
    }
}

#[test]
fn partition_reaches_fresh_common_key() {
    for kind in ProtocolKind::all() {
        let n = 9;
        let ids: Vec<usize> = (0..n).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids, 99);
        let old = lb.common_secret();
        // Members 1, 4, 7 drop out at once.
        let leaving = vec![1, 4, 7];
        let remaining: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|c| !leaving.contains(c))
            .collect();
        lb.install_view(remaining, vec![], leaving);
        assert_ne!(old, lb.common_secret(), "{kind} partition must refresh");
    }
}

#[test]
fn merge_of_two_groups_reaches_common_key() {
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..10).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..6], 1); // group A: 0..6
        lb.bootstrap(&ids[6..], 2); // group B: 6..10
        lb.install_view(ids.clone(), ids[6..].to_vec(), vec![]);
        let _ = lb.common_secret();
    }
}

#[test]
fn merge_of_singletons_works() {
    // Three fresh members join simultaneously (each its own component).
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..7).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..4], 5);
        let old = lb.common_secret();
        lb.install_view(ids.clone(), vec![4, 5, 6], vec![]);
        assert_ne!(old, lb.common_secret(), "{kind}");
    }
}

#[test]
fn combined_leave_and_join() {
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..8).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..6], 3);
        let old = lb.common_secret();
        // 2 and 4 leave while 6 and 7 join, in one view change.
        let members = vec![0, 1, 3, 5, 6, 7];
        lb.install_view(members, vec![6, 7], vec![2, 4]);
        assert_ne!(old, lb.common_secret(), "{kind}");
    }
}

#[test]
fn cascade_of_events_stays_consistent() {
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..12).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..4], 11);
        let mut seen = vec![lb.common_secret()];
        // join x4
        for j in 4..8 {
            let mut members = lb.view().to_vec();
            members.push(j);
            lb.install_view(members, vec![j], vec![]);
            seen.push(lb.common_secret());
        }
        // leave x3 (varying positions)
        for l in [5usize, 0, 7] {
            let members: Vec<usize> = lb.view().iter().copied().filter(|&c| c != l).collect();
            lb.install_view(members, vec![], vec![l]);
            seen.push(lb.common_secret());
        }
        // merge of a fresh pair
        let mut members = lb.view().to_vec();
        members.extend([8, 9]);
        lb.install_view(members, vec![8, 9], vec![]);
        seen.push(lb.common_secret());
        // every key distinct from every other
        for i in 0..seen.len() {
            for j in (i + 1)..seen.len() {
                assert_ne!(
                    seen[i], seen[j],
                    "{kind}: epochs {i} and {j} repeated a key"
                );
            }
        }
    }
}

#[test]
fn group_shrinks_to_singleton_and_regrows() {
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..4).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..3], 8);
        // Everyone but member 1 leaves.
        lb.install_view(vec![1], vec![], vec![0, 2]);
        let solo = lb.common_secret();
        // Then member 3 joins the singleton.
        lb.install_view(vec![1, 3], vec![3], vec![]);
        assert_ne!(solo, lb.common_secret(), "{kind}");
    }
}

#[test]
fn message_counts_match_table1_for_leave() {
    // Leave: 1 multicast for GDH/TGDH/STR/CKD; 2(n-1) for BD.
    let n = 8usize;
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..n).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids, 13);
        let before = lb.total_counts();
        let remaining: Vec<usize> = ids.iter().copied().filter(|&c| c != 3).collect();
        lb.install_view(remaining, vec![], vec![3]);
        let diff = lb.total_counts().since(&before);
        match kind {
            ProtocolKind::Bd => {
                assert_eq!(diff.multicast, 2 * (n as u64 - 1), "BD leave multicasts");
            }
            _ => {
                assert_eq!(diff.multicast, 1, "{kind} leave must be one broadcast");
                assert_eq!(diff.unicast, 0, "{kind} leave has no unicasts");
            }
        }
    }
}

#[test]
fn message_counts_match_table1_for_join() {
    let n = 8usize; // size before join
    for kind in ProtocolKind::all() {
        let ids: Vec<usize> = (0..n + 1).collect();
        let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..n], 13);
        let before = lb.total_counts();
        lb.install_view(ids.clone(), vec![n], vec![]);
        let diff = lb.total_counts().since(&before);
        let nn = (n + 1) as u64;
        match kind {
            ProtocolKind::Gdh => {
                assert_eq!(diff.multicast, 2);
                assert_eq!(diff.unicast, 1 + (nn - 1), "chain + factor-outs");
            }
            ProtocolKind::Bd => {
                assert_eq!(diff.multicast, 2 * nn);
            }
            ProtocolKind::Ckd => {
                assert_eq!(diff.multicast, 1);
                assert_eq!(diff.unicast, 2);
            }
            ProtocolKind::Tgdh | ProtocolKind::Str => {
                assert_eq!(diff.multicast, 3, "{kind}: 2 round-1 + 1 round-2");
                assert_eq!(diff.unicast, 0);
            }
        }
    }
}

//! Real initial key agreement (IKA): groups formed by running the
//! actual protocols from scratch — no transparent bootstrap. The
//! experiments in the paper measure join/leave on established groups;
//! IKA is the "group forms" case its §2.1 dismisses as rare but which
//! the protocols must still handle.

use std::rc::Rc;

use gkap_core::member::SecureMember;
use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_gcs::{testbed, SimWorld};

fn form_real(kind: ProtocolKind, n: usize) -> SimWorld {
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..n as u64 {
        // initial_seed: None => the initial view runs the real
        // protocol (an n-way formation).
        world.add_client(Box::new(SecureMember::new(
            kind,
            Rc::clone(&suite),
            70 + i,
            None,
        )));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    world
}

#[test]
fn real_ika_all_protocols_all_sizes() {
    for kind in ProtocolKind::all() {
        for n in [1usize, 2, 3, 5, 8, 13, 20] {
            let world = form_real(kind, n);
            let mut secret = None;
            for c in 0..n {
                let m = world.client::<SecureMember>(c);
                assert!(
                    m.protocol_error().is_none(),
                    "{kind} n={n} member {c}: {:?}",
                    m.protocol_error()
                );
                let s = m
                    .secret(1)
                    .unwrap_or_else(|| panic!("{kind} n={n}: member {c} never keyed"));
                match &secret {
                    None => secret = Some(s.clone()),
                    Some(prev) => assert_eq!(prev, s, "{kind} n={n} member {c} diverges"),
                }
            }
        }
    }
}

#[test]
fn real_ika_then_join_and_leave() {
    // A group formed for real behaves identically afterwards.
    for kind in ProtocolKind::all() {
        let suite = Rc::new(CryptoSuite::fast_zero());
        let mut world = SimWorld::new(testbed::lan());
        for i in 0..7u64 {
            world.add_client(Box::new(SecureMember::new(
                kind,
                Rc::clone(&suite),
                i,
                None,
            )));
        }
        world.install_initial_view_of((0..6).collect());
        world.run_until_quiescent();
        let k1 = world.client::<SecureMember>(0).secret(1).unwrap().clone();

        world.inject_join(6);
        world.run_until_quiescent();
        let k2 = world.client::<SecureMember>(6).secret(2).unwrap().clone();
        assert_ne!(k1, k2, "{kind}");

        world.inject_leave(3);
        world.run_until_quiescent();
        let k3 = world.client::<SecureMember>(0).secret(3).unwrap().clone();
        assert_ne!(k2, k3, "{kind}");
        for c in [0usize, 1, 2, 4, 5, 6] {
            assert_eq!(
                world.client::<SecureMember>(c).secret(3),
                Some(&k3),
                "{kind}"
            );
        }
    }
}

#[test]
fn real_ika_differs_across_runs_with_different_seeds() {
    // Contributory keys depend on every member's fresh randomness.
    let a = form_real(ProtocolKind::Tgdh, 5);
    let suite = Rc::new(CryptoSuite::fast_zero());
    let mut world = SimWorld::new(testbed::lan());
    for i in 0..5u64 {
        world.add_client(Box::new(SecureMember::new(
            ProtocolKind::Tgdh,
            Rc::clone(&suite),
            5000 + i,
            None,
        )));
    }
    world.install_initial_view();
    world.run_until_quiescent();
    assert_ne!(
        a.client::<SecureMember>(0).secret(1),
        world.client::<SecureMember>(0).secret(1)
    );
}

//! The batching window's semantics pin to the engine's historical
//! behaviour: a window of zero must reproduce one-event-per-round
//! exactly — same injections, same views, same telemetry stream.

use gkap_core::batch::{ChurnKind, EventBatcher, MembershipBatch};
use gkap_core::experiment::SuiteKind;
use gkap_core::protocols::ProtocolKind;
use gkap_core::scale::{generate_schedule, run, run_with_batches, ScaleConfig};
use gkap_sim::Duration;
use gkap_telemetry::jsonl::render_events;

fn traced_cfg(protocol: ProtocolKind, groups: usize) -> ScaleConfig {
    let mut cfg = ScaleConfig::lan(protocol, groups);
    cfg.suite = SuiteKind::FastZero;
    cfg.churn = 1.5;
    cfg.telemetry = true;
    cfg
}

#[test]
fn window_zero_equals_one_event_per_round() {
    let mut cfg = traced_cfg(ProtocolKind::Bd, 10);
    cfg.window = Duration::ZERO;

    // Run A: the batcher with a zero window.
    let a = run(&cfg);

    // Run B: the historical behaviour, hand-built — every event is
    // its own membership round, injected at the event's own instant.
    let schedule = generate_schedule(&cfg);
    let manual: Vec<MembershipBatch> = schedule
        .events
        .iter()
        .map(|ev| {
            let (joined, left) = match ev.kind {
                ChurnKind::Join(c) => (vec![c], vec![]),
                ChurnKind::Leave(c) => (vec![], vec![c]),
            };
            MembershipBatch {
                group: ev.group,
                opened_at: ev.at,
                flush_at: ev.at,
                joined,
                left,
                events: 1,
                arrivals: vec![ev.at],
            }
        })
        .collect();
    let b = run_with_batches(&cfg, &schedule, &manual);

    assert!(a.ok && b.ok);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.rekeys, b.rekeys);
    assert_eq!(a.rekey_ms, b.rekey_ms);
    // The decisive check: the full cross-layer telemetry streams are
    // identical, byte for byte, in JSONL form.
    assert_eq!(render_events(&a.events), render_events(&b.events));
    // And with a zero window nothing ever waits in the batcher.
    assert!(a.batch_wait_ms.iter().all(|&ms| ms == 0.0));
}

#[test]
fn batching_window_coalesces_cascades() {
    // A wide window must not produce more agreement rounds than
    // events, and a group hit by several events inside one window
    // runs them as a single round.
    let mut cfg = traced_cfg(ProtocolKind::Tgdh, 6);
    cfg.churn = 3.0;
    cfg.window = cfg.horizon; // everything in one window per group
    let batched = run(&cfg);
    assert!(batched.ok);
    assert!(batched.batches <= 6, "at most one batch per group");

    cfg.window = Duration::ZERO;
    let unbatched = run(&cfg);
    assert!(unbatched.ok);
    assert!(
        batched.batches <= unbatched.batches,
        "batching can only reduce agreement rounds"
    );
    assert_eq!(batched.raw_events, unbatched.raw_events);
}

#[test]
fn same_seed_runs_are_identical() {
    let cfg = traced_cfg(ProtocolKind::Str, 8);
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(render_events(&a.events), render_events(&b.events));
    assert_eq!(a.rekey_ms, b.rekey_ms);
    assert_eq!(a.transport_ms, b.transport_ms);
    assert_eq!(a.agreement_ms, b.agreement_ms);
}

#[test]
fn batcher_arrival_bookkeeping_matches_schedule() {
    let cfg = traced_cfg(ProtocolKind::Gdh, 16);
    let schedule = generate_schedule(&cfg);
    let batches = EventBatcher::new(Duration::from_millis(5)).coalesce(&schedule.events);
    let coalesced: usize = batches.iter().map(|b| b.events).sum();
    assert_eq!(coalesced, schedule.events.len());
    for b in &batches {
        assert_eq!(b.arrivals.len(), b.events);
        assert!(b.arrivals.iter().all(|&at| at <= b.flush_at));
    }
}

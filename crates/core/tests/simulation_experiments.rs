//! End-to-end experiments over the simulated Spread: group formation,
//! join/leave/merge/partition events on the LAN and WAN testbeds, and
//! validation of the paper's qualitative timing claims.

use gkap_core::experiment::{
    run_formation, run_join, run_leave, run_leave_weighted, run_merge, run_partition,
    ExperimentConfig, LeaveTarget, SuiteKind,
};
use gkap_core::protocols::ProtocolKind;

#[test]
fn formation_all_protocols() {
    for kind in ProtocolKind::all() {
        for n in [1usize, 2, 5, 13] {
            let outcome = run_formation(&ExperimentConfig::lan_fast(kind), n);
            assert!(outcome.all_agreed, "{kind} formation n={n}");
        }
    }
}

#[test]
fn join_over_simulated_lan() {
    for kind in ProtocolKind::all() {
        for n in [2usize, 5, 14] {
            let outcome = run_join(&ExperimentConfig::lan_fast(kind), n);
            assert!(outcome.ok, "{kind} join n={n}");
            assert_eq!(outcome.size_after, n);
            assert!(outcome.elapsed_ms > 0.0);
            assert!(outcome.membership_ms <= outcome.elapsed_ms);
        }
    }
}

#[test]
fn leave_over_simulated_lan() {
    for kind in ProtocolKind::all() {
        for n in [3usize, 6, 15] {
            for target in [
                LeaveTarget::Middle,
                LeaveTarget::Oldest,
                LeaveTarget::Newest,
            ] {
                let outcome = run_leave(&ExperimentConfig::lan_fast(kind), n, target);
                assert!(outcome.ok, "{kind} leave n={n} {target:?}");
                assert_eq!(outcome.size_after, n - 1);
            }
        }
    }
}

#[test]
fn weighted_leave_ckd() {
    let outcome = run_leave_weighted(&ExperimentConfig::lan_fast(ProtocolKind::Ckd), 10);
    assert!(outcome.ok);
}

#[test]
fn partition_over_simulated_lan() {
    for kind in ProtocolKind::all() {
        let outcome = run_partition(&ExperimentConfig::lan_fast(kind), 12, 5);
        assert!(outcome.ok, "{kind} partition");
        assert_eq!(outcome.size_after, 7);
    }
}

#[test]
fn merge_over_simulated_lan() {
    for kind in ProtocolKind::all() {
        let outcome = run_merge(&ExperimentConfig::lan_fast(kind), 7, 4);
        assert!(outcome.ok, "{kind} merge");
        assert_eq!(outcome.size_after, 11);
    }
}

#[test]
fn join_and_leave_over_wan() {
    for kind in ProtocolKind::all() {
        let cfg = ExperimentConfig {
            gcs: gkap_gcs::testbed::wan(),
            ..ExperimentConfig::lan_fast(kind)
        };
        let join = run_join(&cfg, 10);
        assert!(join.ok, "{kind} WAN join");
        // WAN events cost hundreds of ms even with free crypto
        // (membership + agreed rounds).
        assert!(
            join.elapsed_ms > 300.0,
            "{kind} WAN join suspiciously fast: {:.0} ms",
            join.elapsed_ms
        );
        let leave = run_leave(&cfg, 10, LeaveTarget::Middle);
        assert!(leave.ok, "{kind} WAN leave");
    }
}

#[test]
fn lan_join_timing_orderings_512() {
    // The paper's headline qualitative results for Figure 11 (left):
    // measure at a size where the orderings are unambiguous.
    let t = |kind: ProtocolKind, n: usize| {
        let outcome = run_join(&ExperimentConfig::lan(kind, SuiteKind::Sim512), n);
        assert!(outcome.ok, "{kind} join n={n}");
        outcome.elapsed_ms
    };
    // At n = 40: BD has deteriorated past everyone; GDH/CKD linear and
    // clearly above TGDH/STR.
    let n = 40;
    let bd = t(ProtocolKind::Bd, n);
    let gdh = t(ProtocolKind::Gdh, n);
    let ckd = t(ProtocolKind::Ckd, n);
    let tgdh = t(ProtocolKind::Tgdh, n);
    let str_ = t(ProtocolKind::Str, n);
    assert!(
        bd > tgdh,
        "BD ({bd:.1}) must exceed TGDH ({tgdh:.1}) at n={n}"
    );
    assert!(
        bd > str_,
        "BD ({bd:.1}) must exceed STR ({str_:.1}) at n={n}"
    );
    assert!(gdh > tgdh, "GDH ({gdh:.1}) must exceed TGDH ({tgdh:.1})");
    assert!(ckd > tgdh, "CKD ({ckd:.1}) must exceed TGDH ({tgdh:.1})");
    assert!(
        str_ < gdh,
        "STR ({str_:.1}) must beat GDH ({gdh:.1}) on join"
    );

    // At small sizes BD is among the cheapest (few verifications).
    let bd_small = t(ProtocolKind::Bd, 4);
    let gdh_small = t(ProtocolKind::Gdh, 4);
    assert!(
        bd_small < gdh_small,
        "BD ({bd_small:.1}) should beat GDH ({gdh_small:.1}) at n=4"
    );
}

#[test]
fn lan_leave_tgdh_wins_512() {
    // Figure 12: TGDH leave is sub-linear and the cheapest at size 40.
    let t = |kind: ProtocolKind| {
        let outcome = run_leave_weighted(&ExperimentConfig::lan(kind, SuiteKind::Sim512), 40);
        assert!(outcome.ok, "{kind} leave");
        outcome.elapsed_ms
    };
    let tgdh = t(ProtocolKind::Tgdh);
    for other in [
        ProtocolKind::Gdh,
        ProtocolKind::Str,
        ProtocolKind::Bd,
        ProtocolKind::Ckd,
    ] {
        let v = t(other);
        assert!(
            tgdh < v,
            "TGDH leave ({tgdh:.1}) must beat {other} ({v:.1}) at n=40"
        );
    }
}

#[test]
fn wan_join_gdh_worst() {
    // Figure 14 (left): GDH is far worse than everything else on the
    // WAN because of its round count and Agreed factor-out unicasts.
    let t = |kind: ProtocolKind| {
        let outcome = run_join(&ExperimentConfig::wan(kind, SuiteKind::Sim512), 20);
        assert!(outcome.ok, "{kind} WAN join");
        outcome.elapsed_ms
    };
    let gdh = t(ProtocolKind::Gdh);
    for other in [ProtocolKind::Tgdh, ProtocolKind::Str, ProtocolKind::Ckd] {
        let v = t(other);
        assert!(
            gdh > 1.5 * v,
            "GDH ({gdh:.0}) must dwarf {other} ({v:.0}) on WAN join"
        );
    }
}

#[test]
fn wan_leave_bd_worst() {
    // Figure 14 (right): BD pays two all-to-all rounds on leave.
    let t = |kind: ProtocolKind| {
        let outcome = run_leave(
            &ExperimentConfig::wan(kind, SuiteKind::Sim512),
            20,
            LeaveTarget::Middle,
        );
        assert!(outcome.ok, "{kind} WAN leave");
        outcome.elapsed_ms
    };
    let bd = t(ProtocolKind::Bd);
    for other in [ProtocolKind::Gdh, ProtocolKind::Tgdh, ProtocolKind::Ckd] {
        let v = t(other);
        assert!(
            bd > v,
            "BD ({bd:.0}) must exceed {other} ({v:.0}) on WAN leave"
        );
    }
}

#[test]
fn dh1024_slower_than_dh512() {
    for kind in ProtocolKind::all() {
        let t512 = run_join(&ExperimentConfig::lan(kind, SuiteKind::Sim512), 20);
        let t1024 = run_join(&ExperimentConfig::lan(kind, SuiteKind::Sim1024), 20);
        assert!(t512.ok && t1024.ok);
        assert!(
            t1024.elapsed_ms > t512.elapsed_ms,
            "{kind}: 1024-bit ({:.1}) must cost more than 512-bit ({:.1})",
            t1024.elapsed_ms,
            t512.elapsed_ms
        );
    }
}

#[test]
fn determinism_same_seed_same_results() {
    let cfg = ExperimentConfig::lan(ProtocolKind::Tgdh, SuiteKind::Sim512);
    let a = run_join(&cfg, 15);
    let b = run_join(&cfg, 15);
    assert_eq!(a.elapsed_ms, b.elapsed_ms);
    assert_eq!(a.counts, b.counts);
}

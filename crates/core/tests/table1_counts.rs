//! Validation of Table 1: the live operation counters of the
//! implementations must match the closed-form aggregate costs (for
//! GDH, BD, CKD — shape-independent) and respect the paper's bounds
//! for the tree protocols (TGDH, STR).

use gkap_core::cost::OpCounts;
use gkap_core::costs_table::{expected_aggregate, GroupEvent};
use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;

/// Runs one event on a bootstrapped group and returns the aggregate
/// count delta.
fn event_counts(kind: ProtocolKind, n: usize, event: GroupEvent) -> OpCounts {
    let total = n + 16;
    let ids: Vec<usize> = (0..total).collect();
    let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&ids[..n], 5);
    let before = lb.total_counts();
    match event {
        GroupEvent::Join => {
            let mut members = ids[..n].to_vec();
            members.push(n);
            lb.install_view(members, vec![n], vec![]);
        }
        GroupEvent::Leave => {
            let leaver = n / 2;
            let members: Vec<usize> = ids[..n].iter().copied().filter(|&c| c != leaver).collect();
            lb.install_view(members, vec![], vec![leaver]);
        }
        GroupEvent::Merge(m) => {
            // m fresh singletons (the shape-independent protocols treat
            // singleton and component merges identically).
            let joiners: Vec<usize> = (n..n + m).collect();
            let mut members = ids[..n].to_vec();
            members.extend_from_slice(&joiners);
            lb.install_view(members, joiners, vec![]);
        }
        GroupEvent::Partition(p) => {
            let leaving: Vec<usize> = (0..p).map(|i| 1 + i * 2).collect();
            let members: Vec<usize> = ids[..n]
                .iter()
                .copied()
                .filter(|c| !leaving.contains(c))
                .collect();
            lb.install_view(members, vec![], leaving);
        }
    }
    lb.total_counts().since(&before)
}

#[test]
fn gdh_aggregate_counts_exact() {
    for n in [2usize, 3, 5, 10, 20] {
        for event in [GroupEvent::Join, GroupEvent::Leave, GroupEvent::Merge(4)] {
            if matches!(event, GroupEvent::Leave) && n < 3 {
                continue;
            }
            let got = event_counts(ProtocolKind::Gdh, n, event);
            let want = expected_aggregate(ProtocolKind::Gdh, event, n).expect("closed form");
            assert_eq!(got, want, "GDH {} n={n}", event.name());
        }
    }
    let got = event_counts(ProtocolKind::Gdh, 11, GroupEvent::Partition(4));
    let want = expected_aggregate(ProtocolKind::Gdh, GroupEvent::Partition(4), 11).unwrap();
    assert_eq!(got, want, "GDH partition");
}

#[test]
fn bd_aggregate_counts_exact() {
    for n in [3usize, 5, 10, 20] {
        for event in [
            GroupEvent::Join,
            GroupEvent::Leave,
            GroupEvent::Merge(3),
            GroupEvent::Partition(2),
        ] {
            if event.size_after(n) < 2 {
                continue; // degenerate single-member result
            }
            let got = event_counts(ProtocolKind::Bd, n, event);
            let want = expected_aggregate(ProtocolKind::Bd, event, n).expect("closed form");
            assert_eq!(got, want, "BD {} n={n}", event.name());
        }
    }
}

#[test]
fn ckd_aggregate_counts_exact() {
    for n in [2usize, 5, 10, 20] {
        for event in [GroupEvent::Join, GroupEvent::Merge(4)] {
            let got = event_counts(ProtocolKind::Ckd, n, event);
            let want = expected_aggregate(ProtocolKind::Ckd, event, n).expect("closed form");
            assert_eq!(got, want, "CKD {} n={n}", event.name());
        }
    }
    // Leave with a non-controller leaver (the closed form's case).
    for n in [3usize, 10, 20] {
        let got = event_counts(ProtocolKind::Ckd, n, GroupEvent::Leave);
        let want = expected_aggregate(ProtocolKind::Ckd, GroupEvent::Leave, n).unwrap();
        assert_eq!(got, want, "CKD leave n={n}");
    }
}

#[test]
fn tgdh_costs_bounded_logarithmically() {
    // TGDH join: messages exactly 3, aggregate exponentiations O(n·h)
    // in total but the *per-member* exps stay O(h) — check the sponsor
    // bound and the message counts.
    for n in [4usize, 8, 16, 32] {
        let got = event_counts(ProtocolKind::Tgdh, n, GroupEvent::Join);
        assert_eq!(got.multicast, 3, "TGDH join messages (n={n})");
        assert_eq!(got.unicast, 0);
        let h = ((n + 1) as f64).log2().ceil() as u64 + 1;
        // Aggregate: every member recomputes at most its changed path
        // (≤ 2h for sponsors, ≤ h otherwise).
        let bound = 2 * h * (n as u64 + 1) + 4;
        assert!(
            got.exp <= bound,
            "TGDH join exps {} exceed bound {bound} (n={n})",
            got.exp
        );
        // Leave: exactly one broadcast.
        let got = event_counts(ProtocolKind::Tgdh, n, GroupEvent::Leave);
        assert_eq!(got.multicast, 1, "TGDH leave messages (n={n})");
    }
}

#[test]
fn tgdh_leave_sponsor_cost_logarithmic() {
    // The headline claim: TGDH leave costs O(h) at the critical-path
    // member (the sponsor), versus the GDH controller's O(n). The
    // *aggregate* across members is Θ(n) for both (every member must
    // re-derive the root key) — TGDH wins on the serial path, which is
    // what the latency figures show.
    for n in [16usize, 32, 48] {
        let ids: Vec<usize> = (0..n).collect();
        let mut lb = Loopback::new(ProtocolKind::Tgdh, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids, 5);
        let before: Vec<_> = (0..n).map(|c| lb.counts_of(c)).collect();
        let leaver = n / 2;
        let members: Vec<usize> = ids.iter().copied().filter(|&c| c != leaver).collect();
        lb.install_view(members.clone(), vec![], vec![leaver]);
        let max_member_exps = members
            .iter()
            .map(|&c| lb.counts_of(c).since(&before[c]).exp)
            .max()
            .unwrap();
        let h = (n as f64).log2().ceil() as u64;
        assert!(
            max_member_exps <= 2 * h + 3,
            "TGDH leave critical path {max_member_exps} exps exceeds ~2h = {} (n={n})",
            2 * h
        );
        // GDH's controller, in contrast, pays ~n.
        let mut lb = Loopback::new(ProtocolKind::Gdh, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids, 5);
        let before: Vec<_> = (0..n).map(|c| lb.counts_of(c)).collect();
        lb.install_view(members.clone(), vec![], vec![leaver]);
        let gdh_max = members
            .iter()
            .map(|&c| lb.counts_of(c).since(&before[c]).exp)
            .max()
            .unwrap();
        assert!(
            gdh_max as usize >= n - 2,
            "GDH controller should pay ~n exps, got {gdh_max} (n={n})"
        );
    }
}

#[test]
fn str_costs_shape() {
    for n in [4usize, 8, 16, 32] {
        // Join: exactly 3 messages; constant-ish aggregate exps at the
        // sponsors plus O(1) per member.
        let got = event_counts(ProtocolKind::Str, n, GroupEvent::Join);
        assert_eq!(got.multicast, 3, "STR join messages (n={n})");
        assert!(
            got.exp <= 4 * (n as u64) + 10,
            "STR join exps {} too high (n={n})",
            got.exp
        );
        // Leave: one broadcast; aggregate exps O(n^2) worst (members
        // above the sponsor each redo their tail) but bounded.
        let got = event_counts(ProtocolKind::Str, n, GroupEvent::Leave);
        assert_eq!(got.multicast, 1, "STR leave messages (n={n})");
    }
}

#[test]
fn str_join_member_cost_constant() {
    // A non-sponsor member's join cost must not grow with n (STR's
    // selling point for join).
    let mut costs = Vec::new();
    for n in [8usize, 16, 32] {
        let total = n + 16;
        let ids: Vec<usize> = (0..total).collect();
        let mut lb = Loopback::new(ProtocolKind::Str, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..n], 5);
        let before = lb.counts_of(1); // member 1: near the bottom, not a sponsor
        let mut members = ids[..n].to_vec();
        members.push(n);
        lb.install_view(members, vec![n], vec![]);
        let diff = lb.counts_of(1).since(&before);
        costs.push(diff.exp);
    }
    assert!(
        costs.iter().all(|&c| c <= costs[0] + 1),
        "STR per-member join exps must stay constant: {costs:?}"
    );
}

#[test]
fn bd_hidden_cost_grows_quadratically() {
    // §5: BD's "hidden" small-exponent cost — n-2 small exps per
    // member, n(n-2) aggregate.
    let a = event_counts(ProtocolKind::Bd, 10, GroupEvent::Join);
    let b = event_counts(ProtocolKind::Bd, 20, GroupEvent::Join);
    assert_eq!(a.small_exp, 11 * 9);
    assert_eq!(b.small_exp, 21 * 19);
    assert!(b.small_exp > 3 * a.small_exp, "super-linear growth");
}

#[test]
fn signature_and_verification_parity() {
    // Every sign is verified by every receiver: for pure-multicast
    // protocols, verify == sign * (n-1).
    for kind in [ProtocolKind::Bd, ProtocolKind::Tgdh, ProtocolKind::Str] {
        let n = 9;
        let got = event_counts(kind, n, GroupEvent::Leave);
        let nn = (n - 1) as u64; // group size after leave
        assert_eq!(
            got.verify,
            got.sign * (nn - 1),
            "{kind}: multicast verification parity"
        );
    }
}

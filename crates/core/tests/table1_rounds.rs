//! Round/message structure of the multi-round operations in Table 1:
//! TGDH's partition protocol (up to h rounds of sponsor broadcasts),
//! GDH's merge (m chain unicasts), and CKD's controller-leave case.

use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;

fn partition_counts(kind: ProtocolKind, n: usize, leaving: &[usize]) -> gkap_core::cost::OpCounts {
    let ids: Vec<usize> = (0..n).collect();
    let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&ids, 5);
    let before = lb.total_counts();
    let remaining: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|c| !leaving.contains(c))
        .collect();
    lb.install_view(remaining, vec![], leaving.to_vec());
    lb.total_counts().since(&before)
}

#[test]
fn tgdh_partition_is_multi_round_but_bounded_by_height() {
    // Partitions with scattered leavers need several sponsor
    // broadcasts; Table 1 bounds the rounds by the tree height h.
    for n in [16usize, 32] {
        let h = (n as f64).log2().ceil() as u64 + 1;
        // Scattered leavers (every 5th member) force multiple wounds.
        let leaving: Vec<usize> = (0..n).filter(|i| i % 5 == 1).collect();
        let d = partition_counts(ProtocolKind::Tgdh, n, &leaving);
        assert!(
            d.multicast >= 1,
            "TGDH partition needs at least the refresher broadcast"
        );
        assert!(
            d.multicast <= 2 * h,
            "TGDH partition used {} broadcasts; Table 1 bounds rounds by h = {h} (n={n})",
            d.multicast
        );
    }
}

#[test]
fn tgdh_scattered_partition_needs_more_broadcasts_than_single_leave() {
    let n = 32;
    let single = partition_counts(ProtocolKind::Tgdh, n, &[n / 2]);
    let leaving: Vec<usize> = (0..n).filter(|i| i % 4 == 1).collect();
    let scattered = partition_counts(ProtocolKind::Tgdh, n, &leaving);
    assert_eq!(single.multicast, 1, "single leave is one broadcast");
    assert!(
        scattered.multicast >= single.multicast,
        "scattered partition ({}) vs single leave ({})",
        scattered.multicast,
        single.multicast
    );
}

#[test]
fn str_partition_stays_single_round() {
    // STR's partition is one broadcast regardless of the leaver
    // pattern (Table 1: leave/partition = 1 round, 1 message).
    for n in [12usize, 24] {
        let leaving: Vec<usize> = (0..n).filter(|i| i % 4 == 2).collect();
        let d = partition_counts(ProtocolKind::Str, n, &leaving);
        assert_eq!(d.multicast, 1, "STR partition broadcasts (n={n})");
        assert_eq!(d.unicast, 0);
    }
}

#[test]
fn gdh_merge_message_structure() {
    // Merge of m members into n: m chain unicasts… wait — 1 controller
    // unicast + (m-1) chain + (n+m-1) factor-outs, 2 broadcasts
    // (Table 1: n + 2m + 1 messages total).
    for (n, m) in [(6usize, 2usize), (8, 4), (10, 5)] {
        let total = n + m;
        let ids: Vec<usize> = (0..total).collect();
        let mut lb = Loopback::new(ProtocolKind::Gdh, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..n], 5);
        let before = lb.total_counts();
        let joiners: Vec<usize> = (n..total).collect();
        lb.install_view(ids.clone(), joiners, vec![]);
        let d = lb.total_counts().since(&before);
        assert_eq!(d.multicast, 2, "GDH merge broadcasts (n={n}, m={m})");
        assert_eq!(
            d.unicast,
            (m + total - 1) as u64,
            "GDH merge unicasts (n={n}, m={m})"
        );
        assert_eq!(d.messages(), (total + m + 1) as u64, "Table 1: n+2m+1");
    }
}

#[test]
fn ckd_controller_leave_costs_reinvitation() {
    // When the controller leaves, the new controller re-invites
    // everyone: 1 broadcast invite + (n-2) responses + 1 key dist.
    let n = 10usize;
    let ids: Vec<usize> = (0..n).collect();
    let mut lb = Loopback::new(ProtocolKind::Ckd, CryptoSuite::fast_zero(), &ids);
    lb.bootstrap(&ids, 5);
    let before = lb.total_counts();
    let remaining: Vec<usize> = ids[1..].to_vec(); // member 0 = controller leaves
    lb.install_view(remaining, vec![], vec![0]);
    let d = lb.total_counts().since(&before);
    let nn = (n - 1) as u64;
    assert_eq!(d.multicast, 2, "invite broadcast + key distribution");
    assert_eq!(d.unicast, nn - 1, "every member responds");
    // Exps: controller 1 (pub) + (nn-1) pairwise; members 1 (response)
    // + 1 (pairwise) each.
    assert_eq!(d.exp, 1 + (nn - 1) + 2 * (nn - 1));
    // Versus the cheap non-controller leave:
    let mut lb2 = Loopback::new(ProtocolKind::Ckd, CryptoSuite::fast_zero(), &ids);
    lb2.bootstrap(&ids, 5);
    let before2 = lb2.total_counts();
    let remaining2: Vec<usize> = ids.iter().copied().filter(|&c| c != 5).collect();
    lb2.install_view(remaining2, vec![], vec![5]);
    let cheap = lb2.total_counts().since(&before2);
    assert_eq!(cheap.multicast, 1, "plain leave is one broadcast");
    assert!(d.exp > cheap.exp, "controller leave must cost more");
    assert!(d.messages() > cheap.messages());
}

#[test]
fn bd_structure_is_event_independent() {
    // "The protocol for all membership changes is identical" (§4.5):
    // identical resulting sizes give identical counts, whatever the
    // event.
    let join = {
        let ids: Vec<usize> = (0..12).collect();
        let mut lb = Loopback::new(ProtocolKind::Bd, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids[..11], 5);
        let before = lb.total_counts();
        lb.install_view(ids.clone(), vec![11], vec![]);
        lb.total_counts().since(&before)
    };
    let leave = {
        let ids: Vec<usize> = (0..13).collect();
        let mut lb = Loopback::new(ProtocolKind::Bd, CryptoSuite::fast_zero(), &ids);
        lb.bootstrap(&ids, 5);
        let before = lb.total_counts();
        let remaining: Vec<usize> = ids.iter().copied().filter(|&c| c != 6).collect();
        lb.install_view(remaining, vec![], vec![6]);
        lb.total_counts().since(&before)
    };
    assert_eq!(join, leave, "BD join into 12 == BD leave to 12");
}

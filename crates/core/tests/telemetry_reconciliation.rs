//! Telemetry ↔ cost-model reconciliation: the `CryptoOp` and
//! `MessageSend` events captured by the telemetry layer must tally to
//! exactly the `OpCounts` the cost model charges — per run against the
//! live counters, and against the closed-form aggregate costs of
//! Table 1 (`costs_table::expected_aggregate`) where those are exact
//! (GDH, BD, CKD; the tree protocols are shape-dependent).

use gkap_core::cost::OpCounts;
use gkap_core::costs_table::{expected_aggregate, GroupEvent};
use gkap_core::experiment::{
    run_join, run_join_traced, run_leave, run_leave_traced, ExperimentConfig, LeaveTarget,
    SuiteKind, TraceRun,
};
use gkap_core::protocols::ProtocolKind;
use gkap_core::suite::CryptoSuite;
use gkap_core::testkit::Loopback;
use gkap_telemetry::{Actor, CryptoOpKind, Event, EventKind, SendClass, Telemetry};

/// Tallies a run's crypto and send events into an [`OpCounts`],
/// considering only events at/after the injection marker and only the
/// given client actors (`None` = all clients).
fn tally(events: &[Event], only: Option<&[usize]>) -> OpCounts {
    let inject = events
        .iter()
        .find(|e| {
            matches!(
                e.kind,
                EventKind::MembershipEvent {
                    action: "inject",
                    ..
                }
            )
        })
        .map(|e| e.at)
        .expect("inject marker");
    let mut c = OpCounts::default();
    for ev in events {
        if ev.at < inject {
            continue;
        }
        let Actor::Client(id) = ev.actor else {
            continue;
        };
        if let Some(ids) = only {
            if !ids.contains(&id) {
                continue;
            }
        }
        match ev.kind {
            EventKind::CryptoOp { op, .. } => match op {
                CryptoOpKind::Exp => c.exp += 1,
                CryptoOpKind::SmallExp => c.small_exp += 1,
                CryptoOpKind::Inverse => c.inverse += 1,
                CryptoOpKind::Sign => c.sign += 1,
                CryptoOpKind::Verify => c.verify += 1,
                CryptoOpKind::Symmetric => c.symmetric += 1,
                CryptoOpKind::ModMul | CryptoOpKind::RecvOverhead => {}
            },
            EventKind::MessageSend { class } => match class {
                SendClass::Multicast => c.multicast += 1,
                SendClass::Unicast => c.unicast += 1,
            },
            _ => {}
        }
    }
    c
}

fn assert_counts_match(kind: ProtocolKind, label: &str, run: &TraceRun, members: Option<&[usize]>) {
    let tallied = tally(&run.events, members);
    assert_eq!(
        tallied, run.outcome.counts,
        "{kind} {label}: telemetry tally vs live OpCounts"
    );
}

/// Full-stack runs: the telemetry event tally must equal the live
/// `OpCounts` delta measured by the harness, for every protocol, on
/// both a join and a leave.
#[test]
fn full_stack_tally_matches_live_counts() {
    let n = 8;
    for kind in ProtocolKind::all() {
        let cfg = ExperimentConfig::lan(kind, SuiteKind::Sim512);
        let join = run_join_traced(&cfg, n);
        assert!(join.outcome.ok, "{kind} join");
        assert_counts_match(kind, "join", &join, None);

        let leave = run_leave_traced(&cfg, n, LeaveTarget::Middle);
        assert!(leave.outcome.ok, "{kind} leave");
        // The leaver (view position n/2) is outside the measured set;
        // exclude any events it might emit.
        let remaining: Vec<usize> = (0..n).filter(|&c| c != n / 2).collect();
        assert_counts_match(kind, "leave", &leave, Some(&remaining));
    }
}

/// Telemetry must never perturb the measurement: a traced run reports
/// bit-identical elapsed times to an untraced one.
#[test]
fn tracing_does_not_perturb_results() {
    let n = 10;
    for kind in ProtocolKind::all() {
        let cfg = ExperimentConfig::lan(kind, SuiteKind::Sim512);
        let plain = run_join(&cfg, n);
        let traced = run_join_traced(&cfg, n);
        assert_eq!(
            plain.elapsed_ms, traced.outcome.elapsed_ms,
            "{kind} join elapsed"
        );
        assert_eq!(
            plain.membership_ms, traced.outcome.membership_ms,
            "{kind} join membership"
        );
        assert_eq!(plain.counts, traced.outcome.counts, "{kind} join counts");
        let plain = run_leave(&cfg, n, LeaveTarget::Middle);
        let traced = run_leave_traced(&cfg, n, LeaveTarget::Middle);
        assert_eq!(
            plain.elapsed_ms, traced.outcome.elapsed_ms,
            "{kind} leave elapsed"
        );
    }
}

fn counters_as_opcounts(t: &Telemetry) -> OpCounts {
    OpCounts {
        exp: t.counter("crypto/exp"),
        small_exp: t.counter("crypto/small_exp"),
        inverse: t.counter("crypto/inverse"),
        sign: t.counter("crypto/sign"),
        verify: t.counter("crypto/verify"),
        symmetric: t.counter("crypto/symmetric"),
        multicast: t.counter("send/multicast"),
        unicast: t.counter("send/unicast"),
    }
}

/// Loopback runs (shape-independent message delivery): the telemetry
/// counters must match the closed-form Table 1 aggregates exactly for
/// GDH, BD and CKD; for the tree protocols (no closed form) they must
/// still match the live counters.
#[test]
fn counters_match_table1_closed_forms() {
    let n = 9;
    let total = n + 2;
    let ids: Vec<usize> = (0..total).collect();
    for kind in ProtocolKind::all() {
        for event in [GroupEvent::Join, GroupEvent::Leave] {
            let mut lb = Loopback::new(kind, CryptoSuite::fast_zero(), &ids);
            lb.bootstrap(&ids[..n], 5);
            // Enable after bootstrap so the counters cover the event only.
            let telemetry = lb.enable_telemetry();
            let before = lb.total_counts();
            match event {
                GroupEvent::Join => {
                    let mut members = ids[..n].to_vec();
                    members.push(n);
                    lb.install_view(members, vec![n], vec![]);
                }
                _ => {
                    let leaver = n / 2;
                    let members: Vec<usize> =
                        ids[..n].iter().copied().filter(|&c| c != leaver).collect();
                    lb.install_view(members, vec![], vec![leaver]);
                }
            }
            let live = lb.total_counts().since(&before);
            let counters = counters_as_opcounts(&telemetry);
            assert_eq!(counters, live, "{kind} {}: counters vs live", event.name());
            if let Some(want) = expected_aggregate(kind, event, n) {
                assert_eq!(
                    counters,
                    want,
                    "{kind} {}: counters vs Table 1",
                    event.name()
                );
            }
        }
    }
}

/// The multi-group scale spans (PR 5) obey the same exact-sum
/// discipline as the per-event traces: for every completed rekey,
/// the transport share (injection → last view delivery) plus the
/// agreement share (last view delivery → last key) equals the full
/// rekey span — compared in integer nanoseconds, because the ms
/// vectors are f64 renderings and `(a+b)/1e6` need not equal
/// `a/1e6 + b/1e6` bitwise. The telemetry "transport"/"agreement"
/// span events must carry exactly the same durations, and batching
/// waits never exceed the configured window.
#[test]
fn scale_spans_reconcile_exactly_in_nanos() {
    use gkap_core::scale::{run, ScaleConfig};

    // ms vectors are nanos/1e6; the horizon bounds nanos well under
    // 2^53, so round-tripping through f64 ms recovers nanos exactly.
    let ns = |ms: f64| (ms * 1e6).round() as u64;

    for kind in [ProtocolKind::Gdh, ProtocolKind::Tgdh] {
        let mut cfg = ScaleConfig::lan(kind, 8);
        cfg.churn = 1.0;
        cfg.telemetry = true;
        let r = run(&cfg);
        assert!(r.ok, "{kind}: all groups end keyed");
        assert!(r.rekeys > 0, "{kind}: churn produced rekeys");
        assert_eq!(r.rekey_ms.len(), r.rekeys);
        assert_eq!(r.transport_ms.len(), r.rekeys);
        assert_eq!(r.agreement_ms.len(), r.rekeys);

        // Per-rekey exact sum: the three vectors are pushed in
        // lockstep, so positional comparison is the invariant.
        for i in 0..r.rekeys {
            assert_eq!(
                ns(r.transport_ms[i]) + ns(r.agreement_ms[i]),
                ns(r.rekey_ms[i]),
                "{kind} rekey {i}: transport + agreement != rekey span"
            );
        }

        // The trace spans carry the same durations: compare as sorted
        // multisets (the event log is time-ordered, the vectors are
        // group-ordered).
        let span_durs = |action: &str| -> Vec<u64> {
            let mut durs: Vec<u64> = r
                .events
                .iter()
                .filter(|e| {
                    matches!(e.kind, EventKind::MembershipEvent { action: a, .. } if a == action)
                })
                .map(|e| e.dur.as_nanos())
                .collect();
            durs.sort_unstable();
            durs
        };
        let sorted_ns = |ms: &[f64]| -> Vec<u64> {
            let mut v: Vec<u64> = ms.iter().map(|&m| ns(m)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            span_durs("transport"),
            sorted_ns(&r.transport_ms),
            "{kind}: transport span events mirror the vector"
        );
        assert_eq!(
            span_durs("agreement"),
            sorted_ns(&r.agreement_ms),
            "{kind}: agreement span events mirror the vector"
        );

        // Batching: one wait sample per raw event, every wait bounded
        // by the window, and the worst vector wait is the worst
        // "batch_wait" span (that event records each batch's full
        // open → flush interval, which its earliest arrival waited).
        assert_eq!(r.batch_wait_ms.len(), r.raw_events);
        let window_ns = cfg.window.as_nanos();
        for &w in &r.batch_wait_ms {
            assert!(
                ns(w) <= window_ns,
                "{kind}: batch wait {w} ms exceeds the window"
            );
        }
        let batch_events = span_durs("batch_wait");
        assert_eq!(batch_events.len(), r.batches);
        assert_eq!(
            batch_events.last().copied(),
            sorted_ns(&r.batch_wait_ms).last().copied(),
            "{kind}: worst batching wait reconciles"
        );
    }
}

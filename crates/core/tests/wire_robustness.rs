//! Wire-format robustness: decoders must never panic on arbitrary
//! bytes (active outsiders can inject anything; the paper's threat
//! model, §3.2), and every well-formed message must round-trip.

use bytes::Bytes;
use gkap_bignum::Ubig;
use gkap_core::codec::{Dec, Enc};
use gkap_core::envelope::Envelope;
use gkap_core::protocols::ProtocolMsg;
use gkap_core::suite::CryptoSuite;
use gkap_core::tree::KeyTree;
use proptest::prelude::*;

fn arb_ubig() -> impl Strategy<Value = Ubig> {
    proptest::collection::vec(any::<u8>(), 0..40).prop_map(|b| Ubig::from_be_bytes(&b))
}

fn arb_tree() -> impl Strategy<Value = KeyTree> {
    (proptest::collection::vec((any::<u32>(), arb_ubig()), 1..10)).prop_map(|leaves| {
        let mut tree = KeyTree::new();
        let mut seen = std::collections::HashSet::new();
        for (m, bk) in leaves {
            let m = m as usize % 64;
            if !seen.insert(m) {
                continue;
            }
            let leaf = KeyTree::singleton(m, None, Some(bk));
            if tree.is_empty() {
                tree = leaf;
            } else {
                tree.merge(&leaf);
            }
        }
        tree
    })
}

fn arb_msg() -> impl Strategy<Value = ProtocolMsg> {
    prop_oneof![
        arb_ubig().prop_map(|token| ProtocolMsg::GdhChainToken { token }),
        arb_ubig().prop_map(|token| ProtocolMsg::GdhBroadcastToken { token }),
        arb_ubig().prop_map(|value| ProtocolMsg::GdhFactorOut { value }),
        proptest::collection::vec((any::<u16>(), arb_ubig()), 0..8).prop_map(|entries| {
            ProtocolMsg::GdhPartialKeys {
                entries: entries.into_iter().map(|(m, k)| (m as usize, k)).collect(),
            }
        }),
        (arb_ubig(), proptest::collection::vec(any::<u16>(), 0..8)).prop_map(|(p, inv)| {
            ProtocolMsg::CkdInvite {
                controller_pub: p,
                invited: inv.into_iter().map(|m| m as usize).collect(),
            }
        }),
        arb_ubig().prop_map(|member_pub| ProtocolMsg::CkdResponse { member_pub }),
        (
            arb_ubig(),
            proptest::collection::vec(
                (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..32)),
                0..6
            )
        )
            .prop_map(|(p, blobs)| ProtocolMsg::CkdKeyDist {
                controller_pub: p,
                blobs: blobs.into_iter().map(|(m, b)| (m as usize, b)).collect(),
            }),
        arb_ubig().prop_map(|z| ProtocolMsg::BdRound1 { z }),
        arb_ubig().prop_map(|x| ProtocolMsg::BdRound2 { x }),
        arb_tree().prop_map(|tree| ProtocolMsg::TgdhTree { tree }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protocol_msg_roundtrip(msg in arb_msg()) {
        let wire = msg.encode();
        let back = ProtocolMsg::decode(&wire).expect("well-formed");
        prop_assert_eq!(back.encode(), wire);
    }

    #[test]
    fn protocol_msg_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = ProtocolMsg::decode(&bytes); // Err is fine; panic is not
    }

    #[test]
    fn envelope_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Envelope::decode(&bytes);
    }

    #[test]
    fn truncations_of_valid_messages_error_cleanly(msg in arb_msg(), cut in 0usize..200) {
        let wire = msg.encode();
        if cut < wire.len() {
            // Either a clean error, or (rarely) a shorter valid prefix
            // is impossible because decode() demands full consumption.
            prop_assert!(ProtocolMsg::decode(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn envelope_roundtrip_with_arbitrary_bodies(
        sender in any::<u16>(),
        epoch in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let suite = CryptoSuite::sim_512();
        let env = Envelope::seal(&suite, sender as usize, epoch, Bytes::from(body));
        let wire = env.encode();
        let back = Envelope::decode(&wire).expect("well-formed");
        prop_assert_eq!(&back, &env);
        back.verify(&suite).expect("signature verifies");
    }

    #[test]
    fn envelope_bitflips_always_detected(
        body in proptest::collection::vec(any::<u8>(), 1..100),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let suite = CryptoSuite::sim_512();
        let env = Envelope::seal(&suite, 3, 9, Bytes::from(body));
        let mut wire = env.encode().to_vec();
        let idx = flip_byte % wire.len();
        wire[idx] ^= 1 << flip_bit;
        match Envelope::decode(&wire) {
            Err(_) => {} // framing broke: fine
            Ok(tampered) => {
                // If it still parses, the signature must catch it —
                // unless the flip landed in the signature's encoding of
                // itself without changing (impossible: any flip changes
                // sig or signed region).
                prop_assert!(tampered.verify(&suite).is_err());
            }
        }
    }

    #[test]
    fn codec_dec_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut d = Dec::new(&bytes);
        let _ = d.u8("a");
        let _ = d.u32("b");
        let _ = d.bytes("c");
        let _ = d.ubig("d");
        let _ = d.u64("e");
    }

    #[test]
    fn tree_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut d = Dec::new(&bytes);
        let _ = KeyTree::decode(&mut d);
    }

    #[test]
    fn enc_dec_interleaved(u8s in proptest::collection::vec(any::<u8>(), 0..10),
                           nums in proptest::collection::vec(any::<u64>(), 0..10)) {
        let mut e = Enc::new();
        for &b in &u8s {
            e.u8(b);
        }
        for &n in &nums {
            e.u64(n);
        }
        let wire = e.finish();
        let mut d = Dec::new(&wire);
        for &b in &u8s {
            prop_assert_eq!(d.u8("x").unwrap(), b);
        }
        for &n in &nums {
            prop_assert_eq!(d.u64("y").unwrap(), n);
        }
        d.finish().unwrap();
    }
}

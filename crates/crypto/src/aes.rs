//! AES-128 (FIPS 197) and CTR mode.
//!
//! Used by the secure group session layer (`gkap-core`'s `SecureGroup`)
//! to encrypt application data under the established group key, playing
//! the role Blowfish/ciphers played in the original Secure Spread.
//!
//! Only encryption of the block cipher is implemented — CTR mode needs
//! nothing else, which keeps the attack surface (and code) small.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// An AES-128 key schedule (encryption direction only).
///
/// ```
/// use gkap_crypto::aes::Aes128;
/// let key = [0u8; 16];
/// let aes = Aes128::new(&key);
/// let block = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(block.len(), 16);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 { round_keys: <redacted> }")
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, input: &[u8; 16]) -> [u8; 16] {
        let mut s = *input;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte (row r, col c) lives at index 4c + r.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let [a0, a1, a2, a3] = [col[0], col[1], col[2], col[3]];
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

/// AES-128 in counter (CTR) mode.
///
/// Encryption and decryption are the same operation. The 16-byte
/// initial counter block is `nonce (12 bytes) || big-endian u32 counter`.
///
/// ```
/// use gkap_crypto::aes::ctr_xor;
/// let key = [7u8; 16];
/// let nonce = [9u8; 12];
/// let msg = b"attack at dawn".to_vec();
/// let ct = ctr_xor(&key, &nonce, 0, msg.clone());
/// assert_ne!(ct, msg);
/// assert_eq!(ctr_xor(&key, &nonce, 0, ct), msg);
/// ```
pub fn ctr_xor(
    key: &[u8; 16],
    nonce: &[u8; 12],
    initial_counter: u32,
    mut data: Vec<u8>,
) -> Vec<u8> {
    let aes = Aes128::new(key);
    let mut counter_block = [0u8; 16];
    counter_block[..12].copy_from_slice(nonce);
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(16) {
        counter_block[12..].copy_from_slice(&counter.to_be_bytes());
        let ks = aes.encrypt_block(&counter_block);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        counter = counter.wrapping_add(1);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha::hex;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(
            hex(&aes.encrypt_block(&pt)),
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        );
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = unhex("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(
            hex(&aes.encrypt_block(&pt)),
            "3925841d02dc09fbdc118597196a0b32"
        );
    }

    #[test]
    fn sp800_38a_ctr_first_block() {
        // NIST SP 800-38A, F.5.1 CTR-AES128.Encrypt, block #1.
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let counter0: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let pt = unhex("6bc1bee22e409f96e93d7e117393172a");
        // Reuse the raw block cipher to follow the NIST counter layout.
        let aes = Aes128::new(&key);
        let ks = aes.encrypt_block(&counter0);
        let ct: Vec<u8> = pt.iter().zip(ks.iter()).map(|(p, k)| p ^ k).collect();
        assert_eq!(hex(&ct), "874d6191b620e3261bef6864990db6ce");
    }

    #[test]
    fn ctr_roundtrip_various_lengths() {
        let key = [0x42u8; 16];
        let nonce = [0x24u8; 12];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = ctr_xor(&key, &nonce, 5, msg.clone());
            assert_eq!(ctr_xor(&key, &nonce, 5, ct.clone()), msg, "len {len}");
            if len > 0 {
                assert_ne!(ct, msg, "len {len}");
            }
        }
    }

    #[test]
    fn ctr_nonce_and_counter_separate_streams() {
        let key = [1u8; 16];
        let msg = vec![0u8; 32];
        let a = ctr_xor(&key, &[0u8; 12], 0, msg.clone());
        let b = ctr_xor(&key, &[1u8; 12], 0, msg.clone());
        let c = ctr_xor(&key, &[0u8; 12], 1, msg.clone());
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Counter+1 shifts the keystream by one block.
        assert_eq!(a[16..32], c[0..16]);
    }

    #[test]
    fn debug_redacts_keys() {
        let aes = Aes128::new(&[3u8; 16]);
        assert!(format!("{aes:?}").contains("redacted"));
    }
}

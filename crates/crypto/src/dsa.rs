//! DSA signatures over the workspace's safe-prime groups.
//!
//! The paper signs with RSA (e = 3) precisely because verification is
//! cheap and every protocol message is verified by *all* receivers;
//! §6.1.1 remarks that "expensive signature verification (e.g., as in
//! DSA) noticeably degrades performance". This module provides that
//! alternative so the trade-off can be measured (see the `ablate-sig`
//! reproduction target).
//!
//! The safe-prime groups `(p, q = (p-1)/2, g)` of [`crate::dh`] are
//! valid DSA domains: `g` generates the order-`q` subgroup.

use gkap_bignum::{RandomSource, Ubig};

use crate::dh::DhGroup;
use crate::hmac::ct_eq;
use crate::secret::Secret;
use crate::sha::{Digest, Sha256};
use crate::CryptoError;

/// A DSA key pair over a [`DhGroup`].
pub struct DsaKeyPair {
    group: DhGroup,
    /// Secret exponent `x ∈ [1, q)`, zeroized on drop.
    x: Secret<Ubig>,
    /// Public value `y = g^x mod p`.
    y: Ubig,
}

impl std::fmt::Debug for DsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsaKeyPair")
            .field("group", &self.group.name())
            .field("x", &"<redacted>")
            .finish()
    }
}

/// A DSA signature `(r, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsaSignature {
    /// `(g^k mod p) mod q`.
    pub r: Ubig,
    /// `k^{-1} (H(m) + x r) mod q`.
    pub s: Ubig,
}

impl DsaSignature {
    /// Serializes as two length-prefixed big-endian integers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let rb = self.r.to_be_bytes();
        let sb = self.s.to_be_bytes();
        let mut out = Vec::with_capacity(rb.len() + sb.len() + 8);
        out.extend_from_slice(&(rb.len() as u32).to_be_bytes());
        out.extend_from_slice(&rb);
        out.extend_from_slice(&(sb.len() as u32).to_be_bytes());
        out.extend_from_slice(&sb);
        out
    }

    /// Parses the serialization of [`DsaSignature::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] on malformed input.
    pub fn from_bytes(wire: &[u8]) -> Result<Self, CryptoError> {
        let take = |wire: &[u8]| -> Option<(Ubig, usize)> {
            if wire.len() < 4 {
                return None;
            }
            let len = u32::from_be_bytes(wire[..4].try_into().ok()?) as usize;
            if wire.len() < 4 + len {
                return None;
            }
            Some((Ubig::from_be_bytes(&wire[4..4 + len]), 4 + len))
        };
        let (r, used) = take(wire).ok_or(CryptoError::BadSignature)?;
        let (s, used2) = take(&wire[used..]).ok_or(CryptoError::BadSignature)?;
        if used + used2 != wire.len() {
            return Err(CryptoError::BadSignature);
        }
        Ok(DsaSignature { r, s })
    }
}

/// `H(m)` reduced into `[0, q)`.
fn hash_to_q(message: &[u8], q: &Ubig) -> Ubig {
    Ubig::from_be_bytes(&Sha256::digest(message)).rem(q)
}

impl DsaKeyPair {
    /// Generates a key pair over `group`.
    pub fn generate<R: RandomSource + ?Sized>(group: DhGroup, rng: &mut R) -> Self {
        let x = group.random_exponent(rng);
        let y = group.exp_g(&x);
        DsaKeyPair {
            group,
            x: Secret::new(x),
            y,
        }
    }

    /// The public value `y`.
    pub fn public(&self) -> &Ubig {
        &self.y
    }

    /// The domain parameters.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// Signs `message`. Costs one full exponentiation (`g^k`).
    pub fn sign<R: RandomSource + ?Sized>(&self, message: &[u8], rng: &mut R) -> DsaSignature {
        let q = self.group.order();
        let h = hash_to_q(message, q);
        loop {
            let k = self.group.random_exponent(rng);
            let r = self.group.exp_g(&k).rem(q);
            if r.is_zero() {
                continue;
            }
            let k_inv = k.mod_inverse(q).expect("prime order");
            let s = k_inv.modmul(&h.modadd(&self.x.expose().modmul(&r, q), q), q);
            if s.is_zero() {
                continue;
            }
            return DsaSignature { r, s };
        }
    }
}

/// Verifies a DSA signature against a public value `y` in `group`.
/// Costs **two** full exponentiations (`g^{u1} · y^{u2}`) — the
/// expensive-verification regime the paper contrasts with RSA e = 3.
///
/// # Errors
///
/// Returns [`CryptoError::BadSignature`] if verification fails.
pub fn verify(
    group: &DhGroup,
    y: &Ubig,
    message: &[u8],
    sig: &DsaSignature,
) -> Result<(), CryptoError> {
    let q = group.order();
    if sig.r.is_zero() || &sig.r >= q || sig.s.is_zero() || &sig.s >= q {
        return Err(CryptoError::BadSignature);
    }
    let w = sig.s.mod_inverse(q).ok_or(CryptoError::BadSignature)?;
    let h = hash_to_q(message, q);
    let u1 = h.modmul(&w, q);
    let u2 = sig.r.modmul(&w, q);
    let p = group.modulus();
    let v = group.exp_g(&u1).modmul(&group.exp(y, &u2), p).rem(q);
    // Compare as fixed-width big-endian bytes in constant time; the
    // limb-level `PartialEq` short-circuits on the first differing limb.
    let width = q.bit_len().div_ceil(8);
    if ct_eq(
        &v.to_be_bytes_padded(width),
        &sig.r.to_be_bytes_padded(width),
    ) {
        Ok(())
    } else {
        Err(CryptoError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkap_bignum::SplitMix64;

    fn keypair(seed: u64) -> DsaKeyPair {
        DsaKeyPair::generate(DhGroup::test_256(), &mut SplitMix64::new(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(1);
        let mut rng = SplitMix64::new(2);
        let sig = kp.sign(b"protocol message", &mut rng);
        verify(kp.group(), kp.public(), b"protocol message", &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message_and_key() {
        let kp = keypair(3);
        let other = keypair(4);
        let mut rng = SplitMix64::new(5);
        let sig = kp.sign(b"m1", &mut rng);
        assert!(verify(kp.group(), kp.public(), b"m2", &sig).is_err());
        assert!(verify(kp.group(), other.public(), b"m1", &sig).is_err());
    }

    #[test]
    fn verify_rejects_mangled_signature() {
        let kp = keypair(6);
        let mut rng = SplitMix64::new(7);
        let mut sig = kp.sign(b"m", &mut rng);
        sig.r = sig.r.modadd(&Ubig::one(), kp.group().order());
        assert!(verify(kp.group(), kp.public(), b"m", &sig).is_err());
        // Degenerate values rejected outright.
        let zero = DsaSignature {
            r: Ubig::zero(),
            s: Ubig::one(),
        };
        assert!(verify(kp.group(), kp.public(), b"m", &zero).is_err());
        let oversize = DsaSignature {
            r: kp.group().order().clone(),
            s: Ubig::one(),
        };
        assert!(verify(kp.group(), kp.public(), b"m", &oversize).is_err());
    }

    #[test]
    fn signatures_are_randomized() {
        let kp = keypair(8);
        let mut rng = SplitMix64::new(9);
        let a = kp.sign(b"m", &mut rng);
        let b = kp.sign(b"m", &mut rng);
        assert_ne!(a, b, "fresh k per signature");
        verify(kp.group(), kp.public(), b"m", &a).unwrap();
        verify(kp.group(), kp.public(), b"m", &b).unwrap();
    }

    #[test]
    fn wire_roundtrip() {
        let kp = keypair(10);
        let mut rng = SplitMix64::new(11);
        let sig = kp.sign(b"m", &mut rng);
        let wire = sig.to_bytes();
        let back = DsaSignature::from_bytes(&wire).unwrap();
        assert_eq!(back, sig);
        assert!(DsaSignature::from_bytes(&wire[..wire.len() - 1]).is_err());
        assert!(DsaSignature::from_bytes(&[1, 2]).is_err());
        let mut trailing = wire;
        trailing.push(0);
        assert!(DsaSignature::from_bytes(&trailing).is_err());
    }

    #[test]
    fn works_on_512_bit_group() {
        let kp = DsaKeyPair::generate(DhGroup::modp_512(), &mut SplitMix64::new(12));
        let mut rng = SplitMix64::new(13);
        let sig = kp.sign(b"x", &mut rng);
        verify(kp.group(), kp.public(), b"x", &sig).unwrap();
    }
}

//! HMAC (RFC 2104), generic over the [`Digest`] in use.

use crate::sha::{Digest, Sha1, Sha256};

/// Computes `HMAC(key, data)` for any [`Digest`].
///
/// ```
/// use gkap_crypto::hmac::hmac;
/// use gkap_crypto::sha::{hex, Sha256};
/// let mac = hmac::<Sha256>(&[0x0b; 20], b"Hi There");
/// assert_eq!(hex(&mac),
///     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
/// ```
pub fn hmac<D: Digest>(key: &[u8], data: &[u8]) -> Vec<u8> {
    let mut k = if key.len() > D::BLOCK_LEN {
        D::digest(key)
    } else {
        key.to_vec()
    };
    k.resize(D::BLOCK_LEN, 0);

    let mut inner = D::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_hash = inner.finalize();

    let mut outer = D::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize()
}

/// HMAC-SHA-256 convenience wrapper.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Vec<u8> {
    hmac::<Sha256>(key, data)
}

/// HMAC-SHA-1 convenience wrapper.
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> Vec<u8> {
    hmac::<Sha1>(key, data)
}

/// Constant-time byte comparison for MAC / tag verification.
///
/// Returns `true` iff `a == b`. The running time depends only on
/// `max(a.len(), b.len())`, never on where the first mismatch sits: a
/// length difference is folded into the accumulator instead of taken
/// as an early return, and every byte position is visited with
/// `get`-based loads so there is no data-dependent branch or index.
///
/// # Timing contract: lengths are public
///
/// The *lengths* of both inputs are treated as public — the iteration
/// count is `max(a.len(), b.len())`, so the running time reveals the
/// longer length and nothing else. That is the right contract for tag
/// verification, where tag sizes are fixed by the digest and known to
/// any observer; only the *contents* must not influence timing. In
/// particular an unequal-length compare still walks every position of
/// the longer input (asserted by a unit test) rather than returning
/// early on the length mismatch.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    ct_eq_visited(a, b, |_| {})
}

/// The comparison loop itself, parameterized over a per-iteration
/// visitor so tests can count iterations; `visit` is a no-op closure
/// in production and compiles away.
#[inline]
fn ct_eq_visited(a: &[u8], b: &[u8], mut visit: impl FnMut(usize)) -> bool {
    let mut acc = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        visit(i);
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        acc |= usize::from(x ^ y);
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha::hex;

    #[test]
    fn rfc4231_case1_sha256() {
        let mac = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2_sha256() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc2202_case1_sha1() {
        let mac = hmac_sha1(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&mac), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn long_key_is_hashed_first() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_lengths_still_walk_the_longer_input() {
        // The length mismatch must not short-circuit the loop: every
        // compare runs exactly max(a.len(), b.len()) iterations, so
        // timing depends on the (public) lengths alone and never on
        // where the contents diverge.
        for (a, b) in [
            (&b"abcdefgh"[..], &b"ab"[..]),
            (&b"ab"[..], &b"abcdefgh"[..]),
            (&b""[..], &b"abcdefgh"[..]),
            (&b"abcdefgh"[..], &b"abcdefgh"[..]),
        ] {
            let mut steps = 0usize;
            let eq = ct_eq_visited(a, b, |_| steps += 1);
            assert_eq!(steps, a.len().max(b.len()), "{a:?} vs {b:?}");
            assert_eq!(eq, a == b);
        }
    }

    #[test]
    fn mac_differs_per_key_and_message() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}

//! Key derivation: turning Diffie–Hellman group secrets into symmetric
//! keys.
//!
//! Every protocol in the paper ends with all members holding the same
//! group secret (an element of the DH group). The session layer derives
//! fixed-length symmetric keys from it with a simple counter-mode KDF
//! over SHA-256 (the 2002 system used a similar hash-then-split
//! construction).

use gkap_bignum::Ubig;

use crate::hmac::ct_eq;
use crate::secret::Secret;
use crate::sha::{Digest, Sha256};

/// Derives `len` bytes of key material from a group secret and a
/// domain-separation label.
///
/// ```
/// use gkap_crypto::kdf::derive;
/// use gkap_bignum::Ubig;
/// let secret = Ubig::from(123456u64);
/// let enc = derive(&secret, b"enc", 16);
/// let mac = derive(&secret, b"mac", 32);
/// assert_eq!(enc.len(), 16);
/// assert_ne!(&enc[..16], &mac[..16]);
/// ```
pub fn derive(group_secret: &Ubig, label: &[u8], len: usize) -> Vec<u8> {
    let secret_bytes = group_secret.to_be_bytes();
    let mut out = Vec::with_capacity(len);
    let mut counter: u32 = 0;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(&counter.to_be_bytes());
        h.update(&(label.len() as u32).to_be_bytes());
        h.update(label);
        h.update(&secret_bytes);
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

/// The symmetric keys a secure group session needs, derived from one
/// group secret.
///
/// The encryption and MAC keys live in [`Secret`] so they are zeroized
/// on drop; equality compares them in constant time (epoch checks run
/// on attacker-timable paths).
#[derive(Clone)]
pub struct SessionKeys {
    /// AES-128 encryption key.
    pub enc_key: Secret<[u8; 16]>,
    /// HMAC-SHA-256 authentication key.
    pub mac_key: Secret<[u8; 32]>,
    /// Short key identifier for debugging/epoch checks (not secret).
    pub key_id: [u8; 8],
}

impl std::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SessionKeys {{ key_id: {:02x?}, .. }}", self.key_id)
    }
}

impl PartialEq for SessionKeys {
    fn eq(&self, other: &Self) -> bool {
        let enc = ct_eq(self.enc_key.expose(), other.enc_key.expose());
        let mac = ct_eq(self.mac_key.expose(), other.mac_key.expose());
        let kid = ct_eq(&self.key_id, &other.key_id);
        enc & mac & kid
    }
}

impl Eq for SessionKeys {}

impl SessionKeys {
    /// Derives the full key set from a group secret.
    pub fn from_group_secret(secret: &Ubig) -> Self {
        let enc = derive(secret, b"secure-spread:enc", 16);
        let mac = derive(secret, b"secure-spread:mac", 32);
        let kid = derive(secret, b"secure-spread:kid", 8);
        SessionKeys {
            enc_key: Secret::new(enc.try_into().expect("16 bytes")),
            mac_key: Secret::new(mac.try_into().expect("32 bytes")),
            key_id: kid.try_into().expect("8 bytes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_label_separated() {
        let s = Ubig::from(0xdeadbeefu64);
        assert_eq!(derive(&s, b"a", 32), derive(&s, b"a", 32));
        assert_ne!(derive(&s, b"a", 32), derive(&s, b"b", 32));
        assert_ne!(derive(&s, b"a", 32), derive(&Ubig::from(1u64), b"a", 32));
    }

    #[test]
    fn arbitrary_lengths() {
        let s = Ubig::from(7u64);
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(derive(&s, b"x", len).len(), len);
        }
        // Prefix property: longer output extends shorter one.
        assert_eq!(derive(&s, b"x", 16), derive(&s, b"x", 48)[..16]);
    }

    #[test]
    fn session_keys_distinct() {
        let keys = SessionKeys::from_group_secret(&Ubig::from(99u64));
        assert_ne!(&keys.enc_key.expose()[..], &keys.mac_key.expose()[..16]);
        let other = SessionKeys::from_group_secret(&Ubig::from(100u64));
        assert_ne!(keys.key_id, other.key_id);
        assert_eq!(keys, SessionKeys::from_group_secret(&Ubig::from(99u64)));
    }

    #[test]
    fn debug_shows_only_key_id() {
        let keys = SessionKeys::from_group_secret(&Ubig::from(1u64));
        let s = format!("{keys:?}");
        assert!(s.contains("key_id"));
        assert!(!s.contains(&format!("{:02x?}", keys.enc_key.expose())));
    }
}

//! Cryptographic primitives for the Secure Spread reproduction.
//!
//! Stands in for the OpenSSL layer beneath the original Cliques toolkit.
//! Everything is implemented from scratch on top of [`gkap_bignum`]:
//!
//! * [`sha`] — SHA-1 and SHA-256 (FIPS 180).
//! * [`hmac`] — HMAC (RFC 2104) over either hash.
//! * [`aes`] — AES-128 (FIPS 197) with CTR mode for the data
//!   confidentiality layer of the secure group session.
//! * [`dh`] — Diffie–Hellman over published MODP groups (768/1024/2048
//!   bits, RFC 2409/3526) plus fixed 512-bit and 256-bit safe-prime
//!   groups, matching the paper's use of 512- and 1024-bit parameters.
//! * [`rsa`] — RSA PKCS#1 v1.5 signatures with CRT speedup. The paper
//!   signs every protocol message with 1024-bit RSA and public exponent
//!   **3** to make verification cheap; both `e = 3` and `e = 65537` are
//!   supported.
//! * [`dsa`] — DSA over the same groups, the expensive-verification
//!   alternative the paper contrasts with RSA e = 3 (§6.1.1).
//! * [`kdf`] — a SHA-256 based key derivation function turning DH group
//!   secrets into fixed-length symmetric keys.
//!
//! # Security caveat
//!
//! This crate exists to reproduce the *performance study* of a 2002
//! paper. It uses deterministic entropy ([`gkap_bignum::SplitMix64`])
//! in simulations, 2002-era parameter sizes, and has had no side-channel
//! hardening. Do not use it to protect real data.
//!
//! # Example
//!
//! ```
//! use gkap_crypto::dh::DhGroup;
//! use gkap_bignum::SplitMix64;
//!
//! let group = DhGroup::test_256();
//! let mut rng = SplitMix64::new(1);
//! let alice = group.generate_keypair(&mut rng);
//! let bob = group.generate_keypair(&mut rng);
//! let k1 = group.shared_secret(&alice, bob.public());
//! let k2 = group.shared_secret(&bob, alice.public());
//! assert_eq!(k1, k2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod dh;
pub mod dsa;
pub mod hmac;
pub mod kdf;
pub mod rsa;
pub mod secret;
pub mod sha;

pub use secret::{Secret, Zeroize};

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed verification.
    BadSignature,
    /// Ciphertext or MAC was malformed or failed authentication.
    BadCiphertext,
    /// A supplied public value was outside the valid range of the group.
    InvalidPublicValue,
    /// Key generation could not satisfy the requested parameters.
    KeyGeneration(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::BadCiphertext => {
                write!(f, "ciphertext malformed or failed authentication")
            }
            CryptoError::InvalidPublicValue => {
                write!(f, "public value outside the valid group range")
            }
            CryptoError::KeyGeneration(what) => write!(f, "key generation failed: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

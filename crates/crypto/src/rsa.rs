//! RSA PKCS#1 v1.5 signatures with CRT speedup.
//!
//! The paper signs **every** protocol message with 1024-bit RSA and
//! verifies it at every receiver, choosing public exponent `e = 3` so
//! that the n-fold verifications stay cheap (§6.1.1, citing Boneh \[39\]
//! for the safety of `e = 3` in the signature setting). Both `e = 3`
//! and `e = 65537` are supported; signing uses the Chinese Remainder
//! Theorem exactly as the paper notes OpenSSL does.

use gkap_bignum::{prime, Montgomery, RandomSource, Ubig};

use crate::hmac::ct_eq;
use crate::secret::Secret;
use crate::sha::{Digest, Sha256};
use crate::CryptoError;

/// DER prefix of `DigestInfo` for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
///
/// Caches the Montgomery context for `n` so the per-message `verify`
/// calls (one per receiver per signed protocol message) skip the two
/// long divisions a fresh context costs.
#[derive(Clone, Debug)]
pub struct RsaPublicKey {
    n: Ubig,
    e: Ubig,
    mont: Montgomery,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The context is derived from `n`; `(n, e)` is the identity.
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

/// An RSA private key with CRT parameters.
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    p: Secret<Ubig>,
    q: Secret<Ubig>,
    d: Secret<Ubig>,
    dp: Secret<Ubig>,
    dq: Secret<Ubig>,
    q_inv: Secret<Ubig>,
    mont_p: Montgomery,
    mont_q: Montgomery,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsaPrivateKey")
            .field("modulus_bits", &self.public.n.bit_len())
            .field("e", &self.public.e)
            .field("private", &"<redacted>")
            .finish()
    }
}

impl RsaPublicKey {
    /// Modulus size in bytes (= signature length).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Public exponent.
    pub fn exponent(&self) -> &Ubig {
        &self.e
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] if the signature does not
    /// verify.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        if signature.len() != self.modulus_len() {
            return Err(CryptoError::BadSignature);
        }
        let s = Ubig::from_be_bytes(signature);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let em = self
            .mont
            .modexp(&s, &self.e)
            .to_be_bytes_padded(self.modulus_len());
        let expected = pkcs1_v15_encode(message, self.modulus_len());
        // Compare the full encoded block in constant time: a
        // position-dependent early exit here would leak how much of a
        // forged block matched.
        if ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

impl RsaPrivateKey {
    /// Generates a fresh key of `bits` bits with public exponent `e`
    /// (use 3 or 65537).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128` or `e` is not an odd value ≥ 3.
    pub fn generate<R: RandomSource + ?Sized>(bits: usize, e: u64, rng: &mut R) -> Self {
        assert!(bits >= 128, "RSA modulus must be at least 128 bits");
        assert!(e >= 3 && e % 2 == 1, "public exponent must be odd and >= 3");
        let e = Ubig::from(e);
        let one = Ubig::one();
        loop {
            let p = prime::random_prime(bits / 2, rng);
            let q = prime::random_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let p1 = &p - &one;
            let q1 = &q - &one;
            let phi = &p1 * &q1;
            let d = match e.mod_inverse(&phi) {
                Some(d) => d,
                None => continue, // gcd(e, phi) != 1; retry primes
            };
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let q_inv = q.mod_inverse(&p).expect("p, q distinct primes");
            let mont = Montgomery::new(&n).expect("n odd: product of odd primes");
            let mont_p = Montgomery::new(&p).expect("p is an odd prime");
            let mont_q = Montgomery::new(&q).expect("q is an odd prime");
            return RsaPrivateKey {
                public: RsaPublicKey { n, e, mont },
                p: Secret::new(p),
                q: Secret::new(q),
                d: Secret::new(d),
                dp: Secret::new(dp),
                dq: Secret::new(dq),
                q_inv: Secret::new(q_inv),
                mont_p,
                mont_q,
            };
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs `message` (PKCS#1 v1.5 over SHA-256) using the CRT.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = Ubig::from_be_bytes(&pkcs1_v15_encode(message, k));
        // CRT: m1 = em^dp mod p, m2 = em^dq mod q,
        //      h = q_inv (m1 - m2) mod p, s = m2 + h q.
        let (p, q) = (self.p.expose(), self.q.expose());
        let m1 = self.mont_p.modexp(&em, self.dp.expose());
        let m2 = self.mont_q.modexp(&em, self.dq.expose());
        let diff = m1.modsub(&m2.rem(p), p);
        let h = self.q_inv.expose().modmul(&diff, p);
        let s = &m2 + &(&h * q);
        debug_assert_eq!(
            s,
            self.public.mont.modexp(&em, self.d.expose()),
            "CRT consistency"
        );
        s.to_be_bytes_padded(k)
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 FF..FF 0x00 DigestInfo`.
fn pkcs1_v15_encode(message: &[u8], k: usize) -> Vec<u8> {
    let digest = Sha256::digest(message);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    assert!(
        k >= t_len + 11,
        "modulus too small for PKCS#1 v1.5 + SHA-256"
    );
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(&digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkap_bignum::SplitMix64;

    fn small_key(seed: u64, e: u64) -> RsaPrivateKey {
        RsaPrivateKey::generate(512, e, &mut SplitMix64::new(seed))
    }

    #[test]
    fn sign_verify_roundtrip_e3() {
        let key = small_key(1, 3);
        let sig = key.sign(b"group key agreement");
        assert_eq!(sig.len(), key.public_key().modulus_len());
        key.public_key()
            .verify(b"group key agreement", &sig)
            .unwrap();
    }

    #[test]
    fn sign_verify_roundtrip_e65537() {
        let key = small_key(2, 65537);
        let sig = key.sign(b"hello");
        key.public_key().verify(b"hello", &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = small_key(3, 3);
        let sig = key.sign(b"message A");
        assert_eq!(
            key.public_key().verify(b"message B", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_bitflips() {
        let key = small_key(4, 3);
        let mut sig = key.sign(b"payload");
        sig[10] ^= 1;
        assert_eq!(
            key.public_key().verify(b"payload", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_length_and_oversize() {
        let key = small_key(5, 3);
        let sig = key.sign(b"m");
        assert!(key.public_key().verify(b"m", &sig[1..]).is_err());
        // Signature numerically >= n.
        let huge = vec![0xff; key.public_key().modulus_len()];
        assert!(key.public_key().verify(b"m", &huge).is_err());
    }

    #[test]
    fn verify_rejects_other_key() {
        let k1 = small_key(6, 3);
        let k2 = small_key(7, 3);
        let sig = k1.sign(b"x");
        assert!(k2.public_key().verify(b"x", &sig).is_err());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small_key(8, 3);
        let b = small_key(8, 3);
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn debug_redacts_private_parts() {
        let key = small_key(9, 3);
        let s = format!("{key:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains(&key.d.expose().to_hex()));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_exponent_rejected() {
        RsaPrivateKey::generate(256, 4, &mut SplitMix64::new(0));
    }
}

//! `Secret<T>`: a zeroize-on-drop wrapper for key material.
//!
//! Every long-lived secret in the workspace — DH private exponents,
//! RSA CRT private components, DSA private keys, derived session keys
//! and protocol group secrets — lives inside this wrapper. It buys
//! three properties:
//!
//! * **erasure on drop** — the inner value is overwritten with zeros
//!   before its memory is released ([`Zeroize`]),
//! * **no accidental formatting** — `Debug` always prints a redaction
//!   marker, and there is deliberately no `Display`, `Serialize` or
//!   derived `PartialEq`, and
//! * **analyzability** — access goes through the single choke point
//!   [`Secret::expose`], which the `gkap-analyze` L2 rules taint and
//!   trace into formatting / serialization sinks.
//!
//! The workspace forbids `unsafe`, so erasure is best-effort: plain
//! stores pinned behind [`std::hint::black_box`] rather than volatile
//! writes, and values moved or reallocated before wrapping may have
//! left copies behind. That is the strongest guarantee available under
//! `#![forbid(unsafe_code)]`, and it still removes the common failure
//! mode (keys lingering in freed allocations for the process lifetime).

use std::fmt;

use gkap_bignum::Ubig;

/// Types that can overwrite their contents with zeros in place.
pub trait Zeroize {
    /// Overwrites the value with zeros. Must not allocate.
    fn zeroize(&mut self);
}

impl Zeroize for Ubig {
    fn zeroize(&mut self) {
        Ubig::zeroize(self);
    }
}

impl<const N: usize> Zeroize for [u8; N] {
    fn zeroize(&mut self) {
        for b in self.iter_mut() {
            *b = 0;
        }
        std::hint::black_box(&self[..]);
    }
}

impl Zeroize for Vec<u8> {
    fn zeroize(&mut self) {
        for b in self.iter_mut() {
            *b = 0;
        }
        std::hint::black_box(self.as_slice());
        self.clear();
    }
}

impl<T: Zeroize> Zeroize for Option<T> {
    fn zeroize(&mut self) {
        if let Some(v) = self.as_mut() {
            v.zeroize();
        }
    }
}

/// Zeroize-on-drop container. See the module docs for the contract.
pub struct Secret<T: Zeroize>(T);

impl<T: Zeroize> Secret<T> {
    /// Wraps `value`. From here on the only read access is
    /// [`Secret::expose`].
    pub fn new(value: T) -> Self {
        Secret(value)
    }

    /// Borrows the inner value. Call sites are the taint sources the
    /// static analyzer traces (rule `L2-FLOW`).
    pub fn expose(&self) -> &T {
        &self.0
    }

    /// Mutably borrows the inner value (key refresh in place).
    pub fn expose_mut(&mut self) -> &mut T {
        &mut self.0
    }

    /// Erases the inner value now rather than at drop time.
    pub fn zeroize_now(&mut self) {
        self.0.zeroize();
    }
}

impl<T: Zeroize> Drop for Secret<T> {
    fn drop(&mut self) {
        self.0.zeroize();
    }
}

impl<T: Zeroize + Clone> Clone for Secret<T> {
    fn clone(&self) -> Self {
        Secret(self.0.clone())
    }
}

impl<T: Zeroize> fmt::Debug for Secret<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Secret(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A canary whose storage is shared, so the test can observe the
    /// zeroize that `Drop` performs after the `Secret` is gone.
    struct Canary(Rc<RefCell<Vec<u8>>>);

    impl Zeroize for Canary {
        fn zeroize(&mut self) {
            for b in self.0.borrow_mut().iter_mut() {
                *b = 0;
            }
        }
    }

    #[test]
    fn drop_zeroizes() {
        let shared = Rc::new(RefCell::new(vec![0xAB; 32]));
        let secret = Secret::new(Canary(Rc::clone(&shared)));
        assert!(shared.borrow().iter().all(|&b| b == 0xAB));
        drop(secret);
        assert!(
            shared.borrow().iter().all(|&b| b == 0),
            "buffer must be cleared when the Secret is dropped"
        );
    }

    #[test]
    fn zeroize_now_clears_in_place() {
        let mut s = Secret::new([0x5Au8; 16]);
        s.zeroize_now();
        assert_eq!(s.expose(), &[0u8; 16]);
    }

    #[test]
    fn ubig_zeroize_clears_limbs() {
        let mut v = Ubig::from_be_bytes(&[0xFF; 24]);
        assert!(!v.is_zero());
        v.zeroize();
        assert!(v.is_zero());
        assert!(v.limbs().is_empty());
    }

    #[test]
    fn debug_is_redacted() {
        let s = Secret::new([7u8; 4]);
        let shown = format!("{s:?}");
        assert_eq!(shown, "Secret(<redacted>)");
        assert!(!shown.contains('7'));
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Secret::new(vec![1u8, 2, 3]);
        let b = a.clone();
        a.zeroize_now();
        assert_eq!(b.expose(), &[1, 2, 3]);
        assert!(a.expose().is_empty());
    }
}

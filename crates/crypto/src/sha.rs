//! SHA-1 and SHA-256 (FIPS 180-4), plus a small [`Digest`] abstraction
//! so HMAC and the signature layer can be generic over the hash.

/// A streaming cryptographic hash function.
///
/// ```
/// use gkap_crypto::sha::{Digest, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
pub trait Digest: Default + Clone {
    /// Digest length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block length in bytes (64 for both SHA-1 and SHA-256).
    const BLOCK_LEN: usize;

    /// Creates a fresh hasher.
    fn new() -> Self {
        Self::default()
    }

    /// Absorbs `data`.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }
}

impl Sha256 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Digest for Sha256 {
    const OUTPUT_LEN: usize = 32;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64 bytes");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            // Reaching here with a leftover means the buffer was flushed
            // above (or was empty), so this write starts a fresh buffer.
            debug_assert!(self.buf_len == 0 || self.buf_len == 64);
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length must not be counted in total_len; write the block directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        self.state.iter().flat_map(|s| s.to_be_bytes()).collect()
    }
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

/// SHA-1 hasher.
///
/// Kept for period fidelity (the 2002 toolchain used SHA-1); new code in
/// this workspace uses [`Sha256`].
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("64 bytes");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            // Reaching here with a leftover means the buffer was flushed
            // above (or was empty), so this write starts a fresh buffer.
            debug_assert!(self.buf_len == 0 || self.buf_len == 64);
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        self.state.iter().flat_map(|s| s.to_be_bytes()).collect()
    }
}

/// Hex-encodes a byte slice (test/diagnostic helper).
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_fips_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 200] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split {split}");
        }
    }

    #[test]
    fn sha256_boundary_lengths() {
        // Messages straddling the padding boundary (55/56/64 bytes).
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![0xa5u8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn sha1_fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha1_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=200u8).collect();
        let mut h = Sha1::new();
        h.update(&data[..77]);
        h.update(&data[77..]);
        assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn digests_differ_on_different_input() {
        assert_ne!(Sha256::digest(b"x"), Sha256::digest(b"y"));
        assert_ne!(Sha1::digest(b"x"), Sha1::digest(b"y"));
    }
}

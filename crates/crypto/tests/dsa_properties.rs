//! Property-based tests for the DSA implementation.

use gkap_bignum::{RandomSource, SplitMix64, Ubig};
use gkap_crypto::dh::DhGroup;
use gkap_crypto::dsa::{verify, DsaKeyPair, DsaSignature};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sign_verify_roundtrip_random_messages(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut rng = SplitMix64::new(seed);
        let kp = DsaKeyPair::generate(DhGroup::test_256(), &mut rng);
        let sig = kp.sign(&msg, &mut rng);
        prop_assert!(verify(kp.group(), kp.public(), &msg, &sig).is_ok());
        // Wire roundtrip preserves validity.
        let back = DsaSignature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert!(verify(kp.group(), kp.public(), &msg, &back).is_ok());
    }

    #[test]
    fn any_message_perturbation_fails(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 1..100),
        flip in any::<usize>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let kp = DsaKeyPair::generate(DhGroup::test_256(), &mut rng);
        let sig = kp.sign(&msg, &mut rng);
        let mut tampered = msg.clone();
        tampered[flip % msg.len()] ^= 0x01;
        prop_assert!(verify(kp.group(), kp.public(), &tampered, &sig).is_err());
    }

    #[test]
    fn signature_from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let _ = DsaSignature::from_bytes(&bytes);
    }

    #[test]
    fn random_rs_pairs_do_not_verify(
        seed in any::<u64>(),
        r in any::<u64>(),
        s_ in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let kp = DsaKeyPair::generate(DhGroup::test_256(), &mut rng);
        let forged = DsaSignature { r: Ubig::from(r | 1), s: Ubig::from(s_ | 1) };
        prop_assert!(verify(kp.group(), kp.public(), b"target message", &forged).is_err());
    }

    #[test]
    fn keys_are_domain_consistent(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let kp = DsaKeyPair::generate(DhGroup::test_256(), &mut rng);
        // y = g^x is in the subgroup: y^q == 1.
        let y_q = kp.group().exp(kp.public(), kp.group().order());
        prop_assert!(y_q.is_one());
        // Fresh exponent stays below q.
        let e = kp.group().random_exponent(&mut rng);
        prop_assert!(&e < kp.group().order());
        let _ = rng.next_u64();
    }
}

//! Property-based tests for the cryptographic substrate.

use gkap_bignum::{SplitMix64, Ubig};
use gkap_crypto::aes::ctr_xor;
use gkap_crypto::dh::DhGroup;
use gkap_crypto::hmac::{ct_eq, hmac_sha1, hmac_sha256};
use gkap_crypto::kdf::derive;
use gkap_crypto::rsa::RsaPrivateKey;
use gkap_crypto::sha::{Digest, Sha1, Sha256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..512),
                                  splits in proptest::collection::vec(0usize..512, 0..5)) {
        let mut h = Sha1::new();
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s.min(data.len())).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        for w in cuts.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn hmac_keys_and_messages_separate(k1 in proptest::collection::vec(any::<u8>(), 1..100),
                                       m1 in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut k2 = k1.clone();
        k2[0] ^= 1;
        let mut m2 = m1.clone();
        m2.push(0);
        prop_assert_ne!(hmac_sha256(&k1, &m1), hmac_sha256(&k2, &m1));
        prop_assert_ne!(hmac_sha256(&k1, &m1), hmac_sha256(&k1, &m2));
        prop_assert_ne!(hmac_sha1(&k1, &m1), hmac_sha1(&k2, &m1));
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                            b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn ctr_is_an_involution(key in any::<[u8; 16]>(), nonce in any::<[u8; 12]>(),
                            ctr in any::<u32>(),
                            msg in proptest::collection::vec(any::<u8>(), 0..300)) {
        let ct = ctr_xor(&key, &nonce, ctr, msg.clone());
        prop_assert_eq!(ctr_xor(&key, &nonce, ctr, ct), msg);
    }

    #[test]
    fn kdf_deterministic_prefix(secret in any::<u64>(), l1 in 0usize..64, l2 in 0usize..64) {
        let s = Ubig::from(secret);
        let (short, long) = (l1.min(l2), l1.max(l2));
        let a = derive(&s, b"label", short);
        let b = derive(&s, b"label", long);
        prop_assert_eq!(&a[..], &b[..short]);
    }

    #[test]
    fn group_dh_three_party_associativity(seed in any::<u64>()) {
        // (g^a)^bc == (g^b)^ac == (g^c)^ab — the algebraic heart of GDH.
        let group = DhGroup::test_256();
        let mut rng = SplitMix64::new(seed);
        let a = group.random_exponent(&mut rng);
        let b = group.random_exponent(&mut rng);
        let c = group.random_exponent(&mut rng);
        let gab = group.exp(&group.exp_g(&a), &b);
        let gbc = group.exp(&group.exp_g(&b), &c);
        let gac = group.exp(&group.exp_g(&a), &c);
        let k1 = group.exp(&gab, &c);
        let k2 = group.exp(&gbc, &a);
        let k3 = group.exp(&gac, &b);
        prop_assert_eq!(&k1, &k2);
        prop_assert_eq!(&k1, &k3);
    }
}

#[test]
fn rsa_sign_verify_across_key_sizes() {
    let mut rng = SplitMix64::new(1234);
    for (bits, e) in [(512usize, 3u64), (768, 3), (512, 65537)] {
        let key = RsaPrivateKey::generate(bits, e, &mut rng);
        assert_eq!(key.public_key().bits(), bits);
        let msg = format!("msg for {bits}/{e}");
        let sig = key.sign(msg.as_bytes());
        key.public_key().verify(msg.as_bytes(), &sig).unwrap();
        assert!(key.public_key().verify(b"other", &sig).is_err());
    }
}

#[test]
fn rsa_1024_e3_matches_paper_configuration() {
    // The paper's exact signing configuration: 1024-bit modulus, e = 3.
    let mut rng = SplitMix64::new(77);
    let key = RsaPrivateKey::generate(1024, 3, &mut rng);
    assert_eq!(key.public_key().bits(), 1024);
    assert_eq!(key.public_key().exponent(), &Ubig::from(3u64));
    let sig = key.sign(b"protocol message");
    assert_eq!(sig.len(), 128);
    key.public_key().verify(b"protocol message", &sig).unwrap();
}

#[test]
fn dh_512_and_1024_full_exchange() {
    // The paper's two parameter sizes, exercised end to end.
    for group in [DhGroup::modp_512(), DhGroup::modp_1024()] {
        let mut rng = SplitMix64::new(5);
        let a = group.generate_keypair(&mut rng);
        let b = group.generate_keypair(&mut rng);
        group.validate_public(a.public()).unwrap();
        let k1 = group.shared_secret(&a, b.public());
        let k2 = group.shared_secret(&b, a.public());
        assert_eq!(k1, k2, "{}", group.name());
        // Derived session keys agree as well.
        use gkap_crypto::kdf::SessionKeys;
        assert_eq!(
            SessionKeys::from_group_secret(&k1),
            SessionKeys::from_group_secret(&k2)
        );
    }
}

//! The client abstraction: what a group-member process looks like to
//! the group communication system.

use bytes::Bytes;
use gkap_sim::{Duration, SimTime};

use crate::message::{Delivery, Dest, Service, View};
use crate::ClientId;

/// A group member process (in the reproduction: a key agreement
/// protocol engine).
///
/// Handlers run in virtual time. Any CPU the handler consumes must be
/// charged through [`ClientCtx::charge_cpu`]; sends are collected and
/// take effect when the charged CPU completes on the member's machine.
pub trait Client: std::any::Any {
    /// A new view was installed (membership change completed).
    fn on_view(&mut self, ctx: &mut ClientCtx<'_>, view: &View);

    /// A message addressed to this client was delivered.
    fn on_message(&mut self, ctx: &mut ClientCtx<'_>, msg: &Delivery);

    /// Called after each handler's charged CPU has been scheduled on
    /// the member's machine, with the true completion instant (which
    /// includes core contention). Default: ignored.
    fn on_cpu_complete(&mut self, end: SimTime) {
        let _ = end;
    }
}

/// Handler context: lets a client read the clock, charge CPU and send
/// messages.
#[derive(Debug)]
pub struct ClientCtx<'a> {
    pub(crate) id: ClientId,
    pub(crate) now: SimTime,
    pub(crate) view_id: u64,
    pub(crate) charged: Duration,
    pub(crate) outgoing: Vec<Outgoing>,
    pub(crate) speed: f64,
    _lifetime: std::marker::PhantomData<&'a ()>,
}

#[derive(Debug)]
pub(crate) struct Outgoing {
    pub service: Service,
    pub dest: Dest,
    pub payload: Bytes,
    /// The view the sender was in when it sent (view-synchrony tag).
    pub view_id: u64,
}

impl ClientCtx<'_> {
    pub(crate) fn new(id: ClientId, now: SimTime, view_id: u64, speed: f64) -> Self {
        ClientCtx {
            id,
            now,
            view_id,
            charged: Duration::ZERO,
            outgoing: Vec::new(),
            speed,
            _lifetime: std::marker::PhantomData,
        }
    }

    /// A detached context for driving a [`Client`] outside the
    /// simulator — unit tests of client state machines that need
    /// precise control over view delivery. Messages sent through it
    /// are collected but go nowhere.
    pub fn detached(id: ClientId, now: SimTime, view_id: u64) -> Self {
        ClientCtx::new(id, now, view_id, 1.0)
    }

    /// This client's identifier.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Current virtual time (start of this handler invocation).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Identifier of the view this handler runs in.
    pub fn view_id(&self) -> u64 {
        self.view_id
    }

    /// Charges `cost` of CPU time (at the paper's baseline machine
    /// speed) to this member. The machine's speed factor and core
    /// contention are applied by the engine.
    pub fn charge_cpu(&mut self, cost: Duration) {
        let scaled = Duration::from_millis_f64(cost.as_millis_f64() / self.speed);
        self.charged += scaled;
    }

    /// Total CPU charged so far in this handler.
    pub fn charged(&self) -> Duration {
        self.charged
    }

    /// Sends a totally-ordered multicast to the whole view.
    pub fn multicast_agreed(&mut self, payload: impl Into<Bytes>) {
        self.outgoing.push(Outgoing {
            service: Service::Agreed,
            dest: Dest::All,
            payload: payload.into(),
            view_id: self.view_id,
        });
    }

    /// Sends a totally-ordered message addressed to one member. Costs
    /// as much as a broadcast (it traverses the token ring) — see
    /// §6.2.2 of the paper.
    pub fn unicast_agreed(&mut self, to: ClientId, payload: impl Into<Bytes>) {
        self.outgoing.push(Outgoing {
            service: Service::Agreed,
            dest: Dest::One(to),
            payload: payload.into(),
            view_id: self.view_id,
        });
    }

    /// Sends a cheap FIFO point-to-point message that bypasses the
    /// token ring (CKD's pairwise channels).
    pub fn unicast_fifo(&mut self, to: ClientId, payload: impl Into<Bytes>) {
        self.outgoing.push(Outgoing {
            service: Service::Fifo,
            dest: Dest::One(to),
            payload: payload.into(),
            view_id: self.view_id,
        });
    }

    /// Sends a FIFO multicast (unordered relative to Agreed traffic).
    pub fn multicast_fifo(&mut self, payload: impl Into<Bytes>) {
        self.outgoing.push(Outgoing {
            service: Service::Fifo,
            dest: Dest::All,
            payload: payload.into(),
            view_id: self.view_id,
        });
    }

    /// Sends a causally-ordered multicast: receivers deliver it only
    /// after everything the sender had seen when it sent (vector-clock
    /// causality), without the token ring's total-order cost.
    pub fn multicast_causal(&mut self, payload: impl Into<Bytes>) {
        self.outgoing.push(Outgoing {
            service: Service::Causal,
            dest: Dest::All,
            payload: payload.into(),
            view_id: self.view_id,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_scales_with_machine_speed() {
        let mut ctx = ClientCtx::new(0, SimTime::ZERO, 1, 2.0);
        ctx.charge_cpu(Duration::from_millis(10));
        assert_eq!(ctx.charged(), Duration::from_millis(5));
        let mut slow = ClientCtx::new(0, SimTime::ZERO, 1, 0.5);
        slow.charge_cpu(Duration::from_millis(10));
        assert_eq!(slow.charged(), Duration::from_millis(20));
    }

    #[test]
    fn sends_accumulate_in_order() {
        let mut ctx = ClientCtx::new(7, SimTime::ZERO, 2, 1.0);
        ctx.multicast_agreed(vec![1]);
        ctx.unicast_fifo(3, vec![2]);
        ctx.unicast_agreed(4, vec![3]);
        ctx.multicast_fifo(vec![4]);
        assert_eq!(ctx.outgoing.len(), 4);
        assert_eq!(ctx.outgoing[0].service, Service::Agreed);
        assert_eq!(ctx.outgoing[0].dest, Dest::All);
        assert_eq!(ctx.outgoing[1].service, Service::Fifo);
        assert_eq!(ctx.outgoing[1].dest, Dest::One(3));
        assert_eq!(ctx.outgoing[2].dest, Dest::One(4));
        assert_eq!(ctx.id(), 7);
        assert_eq!(ctx.view_id(), 2);
    }
}

//! Group-communication configuration: topology plus protocol constants.

use gkap_sim::Duration;

use crate::topology::Topology;

/// Full configuration of a simulated group communication system.
///
/// The defaults (via [`crate::testbed::lan`] / [`crate::testbed::wan`])
/// are calibrated so that the micro-benchmarks of §6.1.1 and §6.2.1 of
/// the paper come out of the simulation, rather than being charged
/// directly; see DESIGN.md §5.
#[derive(Clone, Debug)]
pub struct GcsConfig {
    /// Physical testbed.
    pub topology: Topology,
    /// Daemon processing time per token visit (independent of traffic).
    pub token_processing: Duration,
    /// Daemon processing time per message sent or received.
    pub per_message_processing: Duration,
    /// Wire time per kilobyte of payload on any hop.
    pub per_kb: Duration,
    /// One-way latency between a client and its local daemon.
    pub client_daemon_delay: Duration,
    /// Maximum Agreed messages a daemon may send per token visit
    /// (Spread-style flow control).
    pub flow_control_max_msgs: usize,
    /// Token rotations a membership change needs before the new view
    /// can be installed (gather + agree + install).
    pub membership_rounds: u32,
    /// Additional per-member view-installation processing at each
    /// daemon.
    pub membership_per_member: Duration,
    /// Probability that any single daemon-to-daemon copy of an Agreed
    /// message is lost in transit (0.0 = reliable links, the paper's
    /// testbeds). Lost copies are recovered by token-driven
    /// retransmission from the originating daemon.
    pub loss_rate: f64,
    /// Seed for the deterministic loss process.
    pub loss_seed: u64,
    /// Maximum missing sequence numbers a daemon may request per token
    /// visit during gap recovery (Spread caps the per-visit
    /// retransmission batch so one lossy link cannot monopolise the
    /// token). Larger gaps recover over multiple token rotations;
    /// `WorldStats::retransmission_rounds` counts them.
    pub recovery_batch: usize,
    /// How long the surviving daemons take to detect a crashed daemon
    /// and reform the ring (Totem's token-loss timeout). Until
    /// detection the token may be lost at the dead daemon; at
    /// detection the ring is reformed, the token regenerated, and the
    /// crashed daemon's clients leave via a view change.
    pub crash_detection_timeout: Duration,
    /// Parity shards appended to every token visit's fan-out
    /// generation (the messages one daemon sequences in one visit form
    /// one erasure-coding generation; see [`crate::fec`]). A receiver
    /// missing up to this many data messages of a generation
    /// reconstructs them locally instead of waiting for token-driven
    /// retransmission. `0` disables FEC entirely: the engine is then
    /// byte-identical to one built without the FEC layer.
    pub fec_parity: usize,
    /// Upper bound for the adaptive parity budget (only consulted when
    /// [`GcsConfig::fec_adaptive`] is set).
    pub fec_parity_max: usize,
    /// When `true`, an EWMA loss estimator over the gaps daemons
    /// observe at token visits drives the per-generation parity budget
    /// between [`GcsConfig::fec_parity`] (floor) and
    /// [`GcsConfig::fec_parity_max`] (ceiling).
    pub fec_adaptive: bool,
    /// EWMA smoothing factor for the adaptive loss estimator, in
    /// `(0, 1]` (larger = more reactive).
    pub loss_ewma_alpha: f64,
    /// Base delay of the per-daemon exponential retransmission
    /// backoff. `Duration::ZERO` (the default) keeps the legacy
    /// policy: a daemon with a gap requests retransmission on every
    /// token visit. A nonzero base makes successive no-progress
    /// request rounds back off exponentially (with deterministic
    /// jitter from the seeded retransmission RNG), giving an enabled
    /// FEC layer time to repair before the ring is asked to re-send.
    pub retrans_backoff: Duration,
    /// Cap on the exponentially growing backoff delay.
    pub retrans_backoff_max: Duration,
    /// Consecutive no-progress retransmission rounds after which the
    /// requesting daemon gives up on the unreachable origin and
    /// escalates to a ring reformation (the crash-detection machinery
    /// excludes the origin and recovers its messages from the
    /// surviving buffers). `0` (the default) never escalates.
    pub retrans_give_up: u32,
}

impl GcsConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if flow control is zero or membership rounds is zero.
    pub fn validate(&self) {
        assert!(
            self.flow_control_max_msgs > 0,
            "flow control must allow at least one message per visit"
        );
        assert!(
            self.membership_rounds > 0,
            "membership needs at least one round"
        );
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss rate must be in [0, 1)"
        );
        assert!(
            self.recovery_batch > 0,
            "recovery batch must allow at least one retransmission per visit"
        );
        let parity_ceiling = self.fec_parity.max(if self.fec_adaptive {
            self.fec_parity_max
        } else {
            0
        });
        assert!(
            self.flow_control_max_msgs + parity_ceiling <= crate::fec::MAX_SHARDS,
            "a fan-out generation (flow control + parity) must fit the erasure code's field"
        );
        if self.fec_adaptive {
            assert!(
                self.fec_parity_max >= self.fec_parity,
                "adaptive parity ceiling must be at least the floor"
            );
            assert!(
                (0.0..=1.0).contains(&self.loss_ewma_alpha) && self.loss_ewma_alpha > 0.0,
                "EWMA smoothing factor must be in (0, 1]"
            );
        }
        if self.retrans_backoff > gkap_sim::Duration::ZERO {
            assert!(
                self.retrans_backoff_max >= self.retrans_backoff,
                "backoff cap must be at least the base delay"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testbed;

    #[test]
    fn presets_validate() {
        testbed::lan().validate();
        testbed::wan().validate();
    }

    #[test]
    #[should_panic(expected = "flow control")]
    fn zero_flow_control_rejected() {
        let mut cfg = testbed::lan();
        cfg.flow_control_max_msgs = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn full_loss_rejected() {
        let mut cfg = testbed::lan();
        cfg.loss_rate = 1.0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "erasure code")]
    fn oversized_parity_rejected() {
        let mut cfg = testbed::lan();
        cfg.fec_parity = 250; // 20 (flow control) + 250 > 256 points
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn adaptive_ceiling_below_floor_rejected() {
        let mut cfg = testbed::lan();
        cfg.fec_adaptive = true;
        cfg.fec_parity = 3;
        cfg.fec_parity_max = 1;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "backoff cap")]
    fn backoff_cap_below_base_rejected() {
        let mut cfg = testbed::lan();
        cfg.retrans_backoff = gkap_sim::Duration::from_millis(10);
        cfg.retrans_backoff_max = gkap_sim::Duration::from_millis(1);
        cfg.validate();
    }
}

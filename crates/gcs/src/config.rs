//! Group-communication configuration: topology plus protocol constants.

use gkap_sim::Duration;

use crate::topology::Topology;

/// Full configuration of a simulated group communication system.
///
/// The defaults (via [`crate::testbed::lan`] / [`crate::testbed::wan`])
/// are calibrated so that the micro-benchmarks of §6.1.1 and §6.2.1 of
/// the paper come out of the simulation, rather than being charged
/// directly; see DESIGN.md §5.
#[derive(Clone, Debug)]
pub struct GcsConfig {
    /// Physical testbed.
    pub topology: Topology,
    /// Daemon processing time per token visit (independent of traffic).
    pub token_processing: Duration,
    /// Daemon processing time per message sent or received.
    pub per_message_processing: Duration,
    /// Wire time per kilobyte of payload on any hop.
    pub per_kb: Duration,
    /// One-way latency between a client and its local daemon.
    pub client_daemon_delay: Duration,
    /// Maximum Agreed messages a daemon may send per token visit
    /// (Spread-style flow control).
    pub flow_control_max_msgs: usize,
    /// Token rotations a membership change needs before the new view
    /// can be installed (gather + agree + install).
    pub membership_rounds: u32,
    /// Additional per-member view-installation processing at each
    /// daemon.
    pub membership_per_member: Duration,
    /// Probability that any single daemon-to-daemon copy of an Agreed
    /// message is lost in transit (0.0 = reliable links, the paper's
    /// testbeds). Lost copies are recovered by token-driven
    /// retransmission from the originating daemon.
    pub loss_rate: f64,
    /// Seed for the deterministic loss process.
    pub loss_seed: u64,
    /// Maximum missing sequence numbers a daemon may request per token
    /// visit during gap recovery (Spread caps the per-visit
    /// retransmission batch so one lossy link cannot monopolise the
    /// token). Larger gaps recover over multiple token rotations;
    /// `WorldStats::retransmission_rounds` counts them.
    pub recovery_batch: usize,
    /// How long the surviving daemons take to detect a crashed daemon
    /// and reform the ring (Totem's token-loss timeout). Until
    /// detection the token may be lost at the dead daemon; at
    /// detection the ring is reformed, the token regenerated, and the
    /// crashed daemon's clients leave via a view change.
    pub crash_detection_timeout: Duration,
}

impl GcsConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if flow control is zero or membership rounds is zero.
    pub fn validate(&self) {
        assert!(
            self.flow_control_max_msgs > 0,
            "flow control must allow at least one message per visit"
        );
        assert!(
            self.membership_rounds > 0,
            "membership needs at least one round"
        );
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss rate must be in [0, 1)"
        );
        assert!(
            self.recovery_batch > 0,
            "recovery batch must allow at least one retransmission per visit"
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::testbed;

    #[test]
    fn presets_validate() {
        testbed::lan().validate();
        testbed::wan().validate();
    }

    #[test]
    #[should_panic(expected = "flow control")]
    fn zero_flow_control_rejected() {
        let mut cfg = testbed::lan();
        cfg.flow_control_max_msgs = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn full_loss_rejected() {
        let mut cfg = testbed::lan();
        cfg.loss_rate = 1.0;
        cfg.validate();
    }
}
